//! VIP-analytic vs VIP-simulation caching on a bandwidth-throttled
//! network (a miniature of the paper's Figure 9): on slow links, higher
//! replication factors are needed, and the analytic policy's better tail
//! ranking starts to matter.
//!
//! Run with: `cargo run --release --example slow_network`

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use salientpp::comm::NetworkModel;
use salientpp::prelude::*;

fn main() {
    let ds = mag240_mini(0.05, 8);
    let k = 4usize;
    let fanouts = Fanouts::new(vec![15, 10]);
    let h = 64usize;

    // Throttle the 25 Gbps link down to 2 Gbps with a token-bucket
    // filter, as the paper does with Linux tc/TBF.
    let slow = CostModel::default().with_network(NetworkModel::aws_25gbps().with_tbf_gbps(2.0));

    println!(
        "dataset {} ({} features) on {k} machines, 2 Gbps network",
        ds.name,
        ds.features.dim()
    );
    println!(
        "{:<8} {:>14} {:>14}",
        "alpha", "VIP-analytic", "VIP-simulation"
    );
    for alpha in [0.0, 0.08, 0.16, 0.32, 0.64] {
        let mut times = Vec::new();
        for policy in [CachePolicy::VipAnalytic, CachePolicy::Simulation] {
            let setup = DistributedSetup::build(
                &ds,
                SetupConfig {
                    num_machines: k,
                    fanouts: fanouts.clone(),
                    batch_size: 32,
                    policy: if alpha == 0.0 {
                        CachePolicy::None
                    } else {
                        policy
                    },
                    alpha,
                    beta: 0.1,
                    vip_reorder: true,
                    seed: 4,
                    ..SetupConfig::default()
                },
            );
            let t = EpochSim::new(&setup, slow, SystemSpec::pipelined(h)).simulate_epoch(0);
            times.push(t.makespan);
        }
        println!(
            "{:<8} {:>12.1} ms {:>12.1} ms",
            alpha,
            times[0] * 1e3,
            times[1] * 1e3
        );
    }
    println!("\n(as alpha grows the analytic ranking should stay at or below the empirical one)");
}
