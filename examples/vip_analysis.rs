//! A close look at the paper's core object: Proposition 1's vertex
//! inclusion probabilities. Computes hop-wise and combined VIP values on
//! a small citation graph, shows their decay with hop distance and their
//! concentration on hubs, then builds a cache from the ranking and
//! verifies its hit rate against real sampling.
//!
//! Run with: `cargo run --release --example vip_analysis`

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use rand::SeedableRng;
use salientpp::prelude::*;

fn main() {
    let ds = papers_mini(0.1, 7);
    let n = ds.num_vertices();
    let fanouts = Fanouts::new(vec![15, 10, 5]);
    let batch = 8usize;
    let train = &ds.split.train;

    // Hop-wise VIP vectors: p[h](u) per Proposition 1.
    let model = VipModel::new(fanouts.clone(), batch);
    let p0 = model.initial_probabilities(n, train);
    let hops = model.hop_scores(&ds.graph, &p0);
    let p = VipModel::combine(&hops);

    println!("{} ({} vertices, {} training)\n", ds.name, n, train.len());
    println!("hop-wise VIP mass (sum of p[h] over all vertices):");
    for (h, hv) in hops.iter().enumerate() {
        let mass: f64 = hv.iter().sum();
        let touched = hv.iter().filter(|&&x| x > 1e-9).count();
        println!(
            "  hop {}: mass {:8.1}, vertices with p>0: {:6}, max p {:.4}",
            h + 1,
            mass,
            touched,
            hv.iter().cloned().fold(0.0, f64::max)
        );
    }

    // Concentration: share of total VIP mass in the top-ranked vertices.
    let mut ranked: Vec<usize> = (0..n).collect();
    ranked.sort_by(|&a, &b| p[b].partial_cmp(&p[a]).unwrap());
    let total: f64 = p.iter().sum();
    println!("\nVIP mass concentration:");
    for frac in [0.001, 0.01, 0.05, 0.2] {
        let take = ((n as f64 * frac) as usize).max(1);
        let mass: f64 = ranked[..take].iter().map(|&v| p[v]).sum();
        println!(
            "  top {:5.1}% of vertices hold {:4.1}% of expected accesses",
            frac * 100.0,
            100.0 * mass / total
        );
    }

    // The top-VIP vertices are hubs: compare degree of top-20 vs median.
    let med = {
        let mut d: Vec<usize> = (0..n as u32).map(|v| ds.graph.degree(v)).collect();
        d.sort_unstable();
        d[n / 2]
    };
    let top_deg: f64 = ranked[..20]
        .iter()
        .map(|&v| ds.graph.degree(v as u32) as f64)
        .sum::<f64>()
        / 20.0;
    println!("\nmean degree of top-20 VIP vertices: {top_deg:.0} (graph median {med})");

    // Build a cache from the ranking and measure its hit rate on real
    // sampled neighborhoods.
    let cache_size = n / 20; // 5% of the graph
    let cache = StaticCache::from_members(
        &ranked[..cache_size]
            .iter()
            .map(|&v| v as VertexId)
            .collect::<Vec<_>>(),
    );
    let sampler = NodeWiseSampler::new(&ds.graph, fanouts);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let (mut hits, mut accesses) = (0u64, 0u64);
    for b in MinibatchIter::new(train, batch, 5, 0) {
        let mfg = sampler.sample(&b, &mut rng);
        for &v in &mfg.nodes {
            accesses += 1;
            if cache.contains(v) {
                hits += 1;
            }
        }
    }
    println!(
        "\ncaching the top 5% by VIP captures {:.1}% of one epoch's {} accesses",
        100.0 * hits as f64 / accesses as f64,
        accesses
    );
}
