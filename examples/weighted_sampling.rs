//! Beyond uniform GraphSAGE sampling: the paper's Proposition 1 applies
//! to *any* node-wise transition probabilities. This example biases the
//! sampler toward high-degree neighbors, feeds the matching transition
//! matrix to the generalized VIP model, and shows that the resulting
//! cache ranking outperforms the uniform-model ranking under the biased
//! workload.
//!
//! Run with: `cargo run --release --example weighted_sampling`

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use salientpp::core::vip_general::{GeneralVipModel, UniformTransitions, WeightedTransitions};
use salientpp::prelude::*;
use spp_sampler::weighted::{EdgeWeights, WeightedNodeWiseSampler};

fn main() {
    let ds = papers_mini(0.2, 11);
    let n = ds.num_vertices();
    let fanouts = Fanouts::new(vec![10, 5]);
    let batch = 8usize;
    let k = 4usize;

    // Degree-biased sampling: neighbors are drawn proportionally to
    // sqrt(degree) — a common importance-sampling heuristic.
    let score: Vec<f32> = (0..n as u32)
        .map(|v| (ds.graph.degree(v).max(1) as f32).sqrt())
        .collect();
    let weights = EdgeWeights::from_target_scores(&ds.graph, &score);

    // Partition and split the training stream.
    let cfg = SetupConfig {
        num_machines: k,
        fanouts: fanouts.clone(),
        batch_size: batch,
        ..SetupConfig::default()
    };
    let (part, train) = DistributedSetup::partition(&ds, &cfg);

    // Measure real access counts under the *biased* sampler.
    let sampler = WeightedNodeWiseSampler::new(&ds.graph, &weights, fanouts.clone());
    let mut counts = vec![vec![0u64; n]; k];
    for (m, t) in train.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(17 ^ m as u64);
        for e in 0..2u64 {
            for b in MinibatchIter::new(t, batch, 17 ^ m as u64, e) {
                let mfg = sampler.sample(&b, &mut rng);
                for &v in &mfg.nodes {
                    counts[m][v as usize] += 1;
                }
            }
        }
    }

    // Rank remote vertices by (a) the uniform VIP model and (b) the
    // generalized model with the true weighted transitions.
    let general = GeneralVipModel::new(fanouts.num_hops());
    let base = VipModel::new(fanouts.clone(), batch);
    let volume = |rankings: &[Vec<VertexId>], alpha: f64| -> f64 {
        let builder = CacheBuilder::new(alpha, n, k);
        (0..k)
            .map(|m| {
                let cache = builder.build(&rankings[m]);
                counts[m]
                    .iter()
                    .enumerate()
                    .filter(|&(v, _)| {
                        part.part_of(v as VertexId) != m as u32 && !cache.contains(v as VertexId)
                    })
                    .map(|(_, &c)| c as f64)
                    .sum::<f64>()
                    / 2.0
            })
            .sum()
    };
    let rank_with = |scores_of: &dyn Fn(usize) -> Vec<f64>| -> Vec<Vec<VertexId>> {
        (0..k)
            .map(|m| {
                let s = scores_of(m);
                let mut remote: Vec<VertexId> = (0..n as u32)
                    .filter(|&v| part.part_of(v) != m as u32 && s[v as usize] > 0.0)
                    .collect();
                remote.sort_by(|&a, &b| {
                    s[b as usize]
                        .partial_cmp(&s[a as usize])
                        .unwrap()
                        .then(a.cmp(&b))
                });
                remote
            })
            .collect()
    };

    let uniform_ranks = rank_with(&|m| {
        let p0 = base.initial_probabilities(n, &train[m]);
        general.scores(&ds.graph, &UniformTransitions::new(fanouts.clone()), &p0)
    });
    let weighted_ranks = rank_with(&|m| {
        let p0 = base.initial_probabilities(n, &train[m]);
        general.scores(
            &ds.graph,
            &WeightedTransitions::new(&weights, fanouts.clone()),
            &p0,
        )
    });

    println!(
        "degree-biased sampling on {} ({} vertices, {k} machines)\n",
        ds.name, n
    );
    println!(
        "{:<26} {:>12} {:>12}",
        "cache ranking model", "a=0.10", "a=0.30"
    );
    for (name, ranks) in [
        ("uniform-model VIP", &uniform_ranks),
        ("weighted-model VIP", &weighted_ranks),
    ] {
        println!(
            "{:<26} {:>12.0} {:>12.0}",
            name,
            volume(ranks, 0.10),
            volume(ranks, 0.30)
        );
    }
    println!("\n(remote vertices/epoch under the biased sampler; lower is better —");
    println!(" modeling the actual transition probabilities should win)");
}
