//! Quickstart: train a GraphSAGE model on a synthetic dataset, then build
//! a distributed deployment with VIP caching and inspect what it does.
//!
//! Run with: `cargo run --release --example quickstart`

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use salientpp::prelude::*;
use spp_gnn::TrainConfig;

fn main() {
    // 1. A products-like synthetic dataset (scaled way down so this runs
    //    in seconds).
    let ds = products_mini(0.1, 42);
    println!(
        "dataset {}: {} vertices, {} edges, {} features, {} classes",
        ds.name,
        ds.graph.num_vertices(),
        ds.graph.num_edges() / 2,
        ds.features.dim(),
        ds.num_classes
    );

    // 2. Single-machine training with node-wise sampling (the SALIENT
    //    baseline configuration, scaled).
    let cfg = TrainConfig {
        hidden_dim: 32,
        fanouts: Fanouts::new(vec![10, 5]),
        eval_fanouts: Fanouts::new(vec![15, 10]),
        batch_size: 64,
        lr: 0.005,
        epochs: 4,
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(&ds, cfg);
    let report = trainer.train();
    for e in &report.epochs {
        println!(
            "epoch {}: loss {:.4} ({} batches)",
            e.epoch, e.loss, e.batches
        );
    }
    println!(
        "val accuracy {:.3}, test accuracy {:.3}",
        report.val_accuracy, report.test_accuracy
    );

    // 3. A 4-machine distributed deployment: METIS-style partitioning,
    //    VIP analysis, two-level reordering, and remote-feature caching.
    let setup = DistributedSetup::build(
        &ds,
        SetupConfig {
            num_machines: 4,
            fanouts: Fanouts::new(vec![10, 5]),
            batch_size: 64,
            policy: CachePolicy::VipAnalytic,
            alpha: 0.16,
            beta: 0.5,
            vip_reorder: true,
            seed: 1,
            ..SetupConfig::default()
        },
    );
    println!(
        "\n4-machine deployment: memory = {:.2}x unreplicated features (1 + alpha = {:.2})",
        setup.memory_multiple(),
        1.0 + setup.config.alpha
    );
    for (k, store) in setup.stores.iter().enumerate() {
        println!(
            "machine {k}: {} local vertices ({} on GPU), {} cached remote",
            setup.layout.part_range(k as u32).len(),
            store.gpu_rows(),
            store.cache().len()
        );
    }

    // 4. What does caching buy? Count the remote fetches of one epoch.
    let (_, train_of_part) = DistributedSetup::partition(&ds, &setup.config);
    let counts = AccessCounts::measure(
        &ds.graph,
        &train_of_part,
        &Fanouts::new(vec![10, 5]),
        64,
        1,
        7,
    );
    let part = &setup.partitioning;
    let no_cache = counts.no_cache_volume(part);
    let cached: Vec<StaticCache> = (0..4)
        .map(|k| {
            // Rebuild the same VIP caches in original-id space for counting.
            let members: Vec<VertexId> = setup.stores[k]
                .cache()
                .members()
                .iter()
                .map(|&v| setup.layout.perm().to_old(v))
                .collect();
            StaticCache::from_members(&members)
        })
        .collect();
    let with_cache = counts.total_volume(part, &cached);
    println!(
        "\nper-epoch remote fetches: {:.0} without cache, {:.0} with VIP cache ({:.1}x less)",
        no_cache,
        with_cache,
        no_cache / with_cache.max(1.0)
    );
}
