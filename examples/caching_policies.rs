//! Compare the paper's caching policies on remote communication volume
//! (a miniature of Figure 2): degree, 1-hop halo, weighted reverse
//! PageRank, #paths, simulation, analytic VIP, and the oracle.
//!
//! Run with: `cargo run --release --example caching_policies`

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use salientpp::prelude::*;
use spp_core::policies::PolicyContext;

fn main() {
    let ds = papers_mini(0.1, 3);
    let k = 4usize;
    let fanouts = Fanouts::new(vec![15, 10, 5]);
    let batch_size = 32usize;

    // Partition with train/val/edge balancing, like the paper.
    let cfg = SetupConfig {
        num_machines: k,
        fanouts: fanouts.clone(),
        batch_size,
        ..SetupConfig::default()
    };
    let (partitioning, train_of_part) = DistributedSetup::partition(&ds, &cfg);
    println!(
        "dataset {}: {} vertices; {}-way partition, edge cut {:.1}%",
        ds.name,
        ds.num_vertices(),
        k,
        100.0 * spp_partition::metrics::edge_cut_fraction(&ds.graph, &partitioning)
    );

    // One measurement pass prices every policy & alpha.
    let counts = AccessCounts::measure(&ds.graph, &train_of_part, &fanouts, batch_size, 2, 9);
    let no_cache = counts.no_cache_volume(&partitioning);
    println!("no caching: {no_cache:.0} remote vertices/epoch\n");

    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "policy", "a=0.05", "a=0.20", "a=0.50"
    );
    for policy in [
        CachePolicy::Degree,
        CachePolicy::OneHopHalo,
        CachePolicy::WeightedReversePagerank,
        CachePolicy::NumPaths,
        CachePolicy::Simulation,
        CachePolicy::VipAnalytic,
        CachePolicy::Oracle,
    ] {
        let rankings: Vec<Vec<VertexId>> = (0..k as u32)
            .map(|p| {
                if policy == CachePolicy::Oracle {
                    counts.oracle_ranking(&partitioning, p as usize)
                } else {
                    PolicyContext {
                        graph: &ds.graph,
                        partitioning: &partitioning,
                        part: p,
                        local_train: &train_of_part[p as usize],
                        fanouts: fanouts.clone(),
                        batch_size,
                        seed: 17,
                        oracle_counts: &[],
                    }
                    .rank(policy)
                }
            })
            .collect();
        let mut row = format!("{:<8}", policy.label());
        for alpha in [0.05, 0.20, 0.50] {
            let builder = CacheBuilder::new(alpha, ds.num_vertices(), k);
            let caches: Vec<StaticCache> = rankings.iter().map(|r| builder.build(r)).collect();
            let vol = counts.total_volume(&partitioning, &caches);
            row.push_str(&format!(" {:>9.0}", vol));
        }
        println!("{row}");
    }
    println!("\n(lower is better; oracle is the lower bound, VIP should be within a few % of it)");
}
