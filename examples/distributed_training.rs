//! End-to-end distributed GNN training on simulated machines (threads),
//! with real feature exchange through the partitioned stores and caches,
//! plus a timing simulation of the same epoch under the paper's system
//! ladder (SALIENT → partitioned → pipelined → SALIENT++).
//!
//! Run with: `cargo run --release --example distributed_training`

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use salientpp::prelude::*;

fn main() {
    let ds = SyntheticSpec::new("demo", 4_000, 16.0, 32, 8)
        .split_fractions(0.3, 0.05, 0.1)
        .feature_signal(1.5)
        .homophily(0.85)
        .seed(5)
        .build();
    let fanouts = Fanouts::new(vec![10, 5]);
    let k = 4usize;

    let cached = DistributedSetup::build(
        &ds,
        SetupConfig {
            num_machines: k,
            fanouts: fanouts.clone(),
            batch_size: 64,
            policy: CachePolicy::VipAnalytic,
            alpha: 0.32,
            beta: 0.5,
            vip_reorder: true,
            seed: 6,
            ..SetupConfig::default()
        },
    );

    // Correctness mode: threads + all-to-all move real features.
    println!("== distributed training on {k} machine-threads ==");
    let trainer = DistributedTrainer::new(
        &cached,
        DistTrainConfig {
            hidden_dim: 32,
            lr: 0.005,
            epochs: 5,
            ..DistTrainConfig::default()
        },
    );
    let verified = trainer.verify_gather(3);
    println!("gather verification: {verified} vertices checked, all exact");
    let (report, _) = trainer.train();
    for (e, loss) in report.epoch_losses.iter().enumerate() {
        println!("epoch {e}: mean loss {loss:.4}");
    }
    println!(
        "val accuracy {:.3}, test accuracy {:.3}, remote fetches {}",
        report.val_accuracy, report.test_accuracy, report.remote_fetches
    );

    // Timing mode: the paper's system ladder on the same deployment.
    println!("\n== per-epoch time (discrete-event simulation, Table 1 shape) ==");
    let bare = DistributedSetup::build(
        &ds,
        SetupConfig {
            num_machines: k,
            fanouts,
            batch_size: 64,
            policy: CachePolicy::None,
            alpha: 0.0,
            beta: 0.5,
            vip_reorder: true,
            seed: 6,
            ..SetupConfig::default()
        },
    );
    let cost = CostModel::mini_calibrated();
    let h = 32usize;
    let rows = [
        (
            "SALIENT (full replication)",
            EpochSim::new(&bare, cost, SystemSpec::salient(h)),
        ),
        (
            "+ partitioned features",
            EpochSim::new(&bare, cost, SystemSpec::partitioned(h)),
        ),
        (
            "+ pipelined communication",
            EpochSim::new(&bare, cost, SystemSpec::pipelined(h)),
        ),
        (
            "+ VIP feature caching",
            EpochSim::new(&cached, cost, SystemSpec::pipelined(h)),
        ),
    ];
    for (label, sim) in rows {
        let t = sim.simulate_epoch(0);
        println!("{label:<28} {:>9.2} ms/epoch", t.makespan * 1e3);
    }
}
