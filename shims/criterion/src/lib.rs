//! Offline stand-in for the subset of `criterion` 0.5 used by the
//! workspace benches.
//!
//! No statistical machinery: each benchmark runs one warmup iteration,
//! then `sample_size` timed iterations (default 10), and prints
//! min/mean/max wall-clock per iteration. The point is that
//! `cargo bench` compiles and produces usable relative numbers offline,
//! not criterion-grade confidence intervals.

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

use std::time::{Duration, Instant};

/// Opaque value barrier; prevents the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing harness handed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Mean/min/max per-iteration time of the last `iter` call.
    last: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..self.samples {
            let t0 = Instant::now(); // spp-lint: allow(l6-raw-instant): criterion-compatible bench timing; measures wall time by design, like spp-bench
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        let mean = total / self.samples as u32;
        self.last = Some((mean, min, max));
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last: None,
    };
    f(&mut b);
    match b.last {
        Some((mean, min, max)) => {
            println!("bench {name:<48} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}");
        }
        None => println!("bench {name:<48} (no iter() call)"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into(), 10, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.into(),
            samples: 10,
        }
    }
}

/// Group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name.into());
        run_one(&full, self.samples, &mut f);
        self
    }

    /// Ends the group (drop would do; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a group function running each listed bench with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_timing() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.finish();
        // warmup + 3 samples
        assert_eq!(ran, 4);
    }
}
