//! Offline, generation-only stand-in for the subset of `proptest` this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a minimal property-testing harness with the same surface
//! grammar: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! range/`Just`/tuple/`prop::collection::vec` strategies, and the
//! `prop_map`/`prop_flat_map` combinators.
//!
//! Deliberate differences from upstream:
//! - **No shrinking.** A failing case reports its case index and seed;
//!   cases are fully deterministic (fixed base seed per case index), so
//!   a failure reproduces on every run.
//! - **Default case count is 64** (upstream: 256) to keep offline CI
//!   fast; tests override it with `ProptestConfig::with_cases` anyway.

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds from it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Discards generated values failing the predicate by retrying
        /// (up to an internal cap, then panics).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            // Upstream proptest also aborts the test case here; a filter
            // that rejects every generated value is a test-author bug.
            #[allow(clippy::panic)]
            {
                panic!("prop_filter exhausted retries: {}", self.whence); // spp-lint: allow(l1-no-panic): emulates upstream proptest, which aborts the test case here
            }
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f32, f64);

    macro_rules! range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_inclusive_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+ );)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    arb_prim!(u8, u16, u32, u64, usize, bool, f32, f64);

    /// Strategy generating any value of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length specifications accepted by [`vec`]: an exact `usize` or a
    /// `Range<usize>`.
    pub trait IntoSizeRange {
        /// Picks a concrete length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            if self.is_empty() {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `L`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length comes from `len`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration and per-case RNG.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Runner configuration (only `cases` is honored).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic per-case RNG handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for case number `case`; fixed base seed keeps every run
        /// of the suite identical.
        pub fn for_case(case: u64) -> Self {
            Self(StdRng::seed_from_u64(
                0x5bb2_04d5 ^ case.wrapping_mul(0x9E37_79B9),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Failure raised by `prop_assert!`-style macros.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias so `prop::collection::vec` resolves as upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr;
        $($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..cfg.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        // spp-lint: allow(l1-no-panic): emulates upstream proptest's test-case abort
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name), __case, cfg.cases, e
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ::core::default::Default::default();
            $($rest)*
        );
    };
}

/// Asserts inside a `proptest!` body; failure aborts only this case's
/// closure via `return Err(..)` so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn flat_map_dependency_holds(
            (n, v) in (1usize..8).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0..n as u32, n))
            })
        ) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| (x as usize) < n));
        }

        #[test]
        fn map_applies(s in (0u32..5).prop_map(|x| x * 2)) {
            prop_assert!(s % 2 == 0 && s < 10);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..10)
            .map(|c| s.generate(&mut crate::test_runner::TestRng::for_case(c)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| s.generate(&mut crate::test_runner::TestRng::for_case(c)))
            .collect();
        assert_eq!(a, b);
    }
}
