//! Offline stand-in for the `parking_lot` lock API used by the
//! workspace, backed by `std::sync`. Poisoning is swallowed (parking_lot
//! locks do not poison), so `lock()` returns the guard directly.

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

use std::sync::PoisonError;

/// Mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's non-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
