//! Offline stand-in for the `crossbeam::thread::scope` API, implemented
//! on `std::thread::scope` (stable since Rust 1.63).
//!
//! Differences from upstream, none observable by this workspace:
//! - a panic in an unjoined child re-panics at scope exit (std semantics)
//!   instead of surfacing through the scope's `Result`; call sites here
//!   always join and `.expect()` the result either way;
//! - spawn closures receive a placeholder [`thread::SpawnScope`] token
//!   instead of the real scope (no call site spawns nested threads).

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Token passed to spawn closures; upstream passes the scope itself
    /// so children can spawn siblings, which this workspace never does.
    pub struct SpawnScope(());

    /// Handle to a scoped thread, joinable before scope exit.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread, returning its result or the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    /// Wrapper over [`std::thread::Scope`] exposing crossbeam's spawn
    /// signature (closure takes a scope argument).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; joined automatically at scope exit.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&SpawnScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.inner.spawn(move || f(&SpawnScope(()))))
        }
    }

    /// Runs `f` with a scope in which borrowed threads can be spawned;
    /// all children are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("child panicked"))
                .sum()
        })
        .expect("scope failed");
        assert_eq!(total, 100);
    }

    #[test]
    fn borrows_from_enclosing_frame() {
        let mut out = vec![0usize; 4];
        crate::thread::scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i + 1);
            }
        })
        .expect("scope failed");
        assert_eq!(out, vec![1, 2, 3, 4]);
    }
}
