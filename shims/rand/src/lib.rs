//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation instead: [`StdRng`] is
//! a SplitMix64 generator (not ChaCha12 like upstream), which is more
//! than adequate for synthetic-graph generation, neighbor sampling, and
//! weight initialization in this reproduction, and keeps every stream
//! reproducible from a `u64` seed on every platform.
//!
//! Only the API surface actually exercised by the workspace is provided:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

/// A source of random `u64`s. Object-safe core trait, mirroring
/// `rand_core::RngCore` in spirit.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`]
/// (the shim's analogue of sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

mod sealed_range {
    /// Range types accepted by [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        fn sample_single<R: crate::RngCore + ?Sized>(self, rng: &mut R) -> T;
    }
}
pub use sealed_range::SampleRange;

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return <$t as Standard>::sample_standard(rng);
                }
                lo + (reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}
int_range_impl!(u8, u16, u32, u64, usize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
float_range_impl!(f32, f64);

macro_rules! signed_range_impl {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}
signed_range_impl!(i32 => u32, i64 => u64, isize => usize);

/// Maps a random `u64` into `[0, span)` via 128-bit multiply (Lemire's
/// unbiased-enough fast reduction; the tiny modulo bias of the plain
/// `%` alternative would also have been fine for simulation use).
#[inline]
fn reduce(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic workspace RNG: SplitMix64.
    ///
    /// Not the ChaCha12 generator of upstream `rand`; streams are *not*
    /// bit-compatible with upstream, but are deterministic for a given
    /// seed, which is all the workspace relies on.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that small consecutive seeds give unrelated streams.
            let mut s = Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            };
            s.next_u64();
            s
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0u32..=5);
            assert!(y <= 5);
            let z = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut r = StdRng::seed_from_u64(11);
        let mut hits = [0usize; 8];
        for _ in 0..8000 {
            hits[r.gen_range(0usize..8)] += 1;
        }
        assert!(hits.iter().all(|&h| h > 500), "skewed: {hits:?}");
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw<R: super::RngCore>(rng: &mut R) -> u64 {
            use super::Rng;
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(3);
        let _ = draw(&mut r);
    }
}
