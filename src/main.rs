//! `salientpp` — end-to-end command-line driver.
//!
//! Mirrors the paper artifact's experiment workflow as a single tool:
//! generate (or load) a dataset, partition it, run VIP analysis, train
//! distributed, or simulate per-epoch timing for any system variant.
//!
//! ```text
//! salientpp generate --dataset papers --scale 0.5 --out papers.sppd
//! salientpp partition --input papers.sppd -k 8
//! salientpp analyze  --input papers.sppd -k 8 --alpha 0.32
//! salientpp train    --input papers.sppd -k 4 --epochs 5
//! salientpp simulate --input papers.sppd -k 8 --alpha 0.32 --system salient++
//! ```

use salientpp::prelude::*;
use spp_runtime::SystemSpec;
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: salientpp <command> [flags]\n\
         commands:\n\
           generate  --dataset <products|papers|mag240> [--scale f] [--seed n] --out <file>\n\
           stats     --input <file>\n\
           partition --input <file> [-k n] [--seed n]\n\
           analyze   --input <file> [-k n] [--alpha f] [--fanouts a,b,c] [--batch n]\n\
           train     --input <file> [-k n] [--epochs n] [--hidden n] [--lr f]\n\
           simulate  --input <file> [-k n] [--alpha f] [--system salient|partitioned|pipelined|salient++|distdgl]\n\
         run `salientpp <command> --help` is not needed: all flags shown above."
    );
    std::process::exit(2);
}

struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a.trim_start_matches('-').to_string();
            if !a.starts_with('-') {
                eprintln!("unexpected argument {a}");
                usage();
            }
            let val = it.next().cloned().unwrap_or_else(|| {
                eprintln!("flag {a} needs a value");
                usage();
            });
            map.insert(key, val);
        }
        Flags(map)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("flag --{key} has an invalid value: {v}");
                std::process::exit(2);
            }),
            None => default,
        }
    }

    fn required(&self, key: &str) -> &str {
        self.get(key).unwrap_or_else(|| {
            eprintln!("missing required flag --{key}");
            usage();
        })
    }
}

fn load_dataset(flags: &Flags) -> Dataset {
    let path = flags.required("input");
    match Dataset::load(path) {
        Ok(ds) => ds,
        Err(e) => {
            eprintln!("cannot load {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_quant(flags: &Flags, key: &str) -> spp_graph::QuantScheme {
    match flags.get(key) {
        Some(s) => spp_graph::QuantScheme::parse(s).unwrap_or_else(|| {
            eprintln!("flag --{key} must be f32, f16, or i8 (got {s})");
            std::process::exit(2);
        }),
        None => spp_graph::QuantScheme::F32,
    }
}

fn parse_fanouts(flags: &Flags, default: &[usize]) -> Fanouts {
    match flags.get("fanouts") {
        Some(s) => Fanouts::new(
            s.split(',')
                .map(|x| {
                    x.trim().parse().unwrap_or_else(|_| {
                        eprintln!("bad fanout entry {x}");
                        std::process::exit(2);
                    })
                })
                .collect(),
        ),
        None => Fanouts::new(default.to_vec()),
    }
}

fn cmd_generate(flags: &Flags) {
    let scale: f64 = flags.num("scale", 1.0);
    let seed: u64 = flags.num("seed", 0);
    let which = flags.required("dataset");
    let ds = match which {
        "products" => products_mini(scale, seed),
        "papers" => papers_mini(scale, seed),
        "mag240" => mag240_mini(scale, seed),
        other => {
            eprintln!("unknown dataset {other} (products|papers|mag240)");
            std::process::exit(2);
        }
    };
    let out = flags.required("out");
    if let Err(e) = ds.save(out) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {out}: {} — {} vertices, {} edges, {} features, {} classes, \
         {}/{}/{} train/val/test",
        ds.name,
        ds.num_vertices(),
        ds.graph.num_edges() / 2,
        ds.features.dim(),
        ds.num_classes,
        ds.split.train.len(),
        ds.split.val.len(),
        ds.split.test.len()
    );
}

fn cmd_stats(flags: &Flags) {
    let ds = load_dataset(flags);
    println!("{}:", ds.name);
    println!(
        "  {}",
        salientpp::graph::stats::GraphStats::compute(&ds.graph)
    );
    println!(
        "  features: {} x {} ({:.1} MB); classes: {}; splits: {}/{}/{}",
        ds.features.num_rows(),
        ds.features.dim(),
        ds.feature_bytes() as f64 / 1e6,
        ds.num_classes,
        ds.split.train.len(),
        ds.split.val.len(),
        ds.split.test.len()
    );
}

fn cmd_partition(flags: &Flags) {
    let ds = load_dataset(flags);
    let k: usize = flags.num("k", 8);
    let seed: u64 = flags.num("seed", 0);
    let w = VertexWeights::from_dataset(&ds);
    let t0 = salientpp::telemetry::clock_ns();
    let part = MultilevelPartitioner::new(k)
        .seed(seed)
        .partition(&ds.graph, &w);
    let dt = std::time::Duration::from_nanos(salientpp::telemetry::clock_ns().saturating_sub(t0));
    let imb = spp_partition::metrics::imbalance(&part, &w);
    println!(
        "{k}-way multilevel partition in {dt:.2?}: edge cut {:.2}%, sizes {:?}",
        100.0 * spp_partition::metrics::edge_cut_fraction(&ds.graph, &part),
        part.sizes()
    );
    println!(
        "imbalance (vertices/train/val/edges): {:.3} / {:.3} / {:.3} / {:.3}",
        imb[0], imb[1], imb[2], imb[3]
    );
}

fn cmd_analyze(flags: &Flags) {
    let ds = load_dataset(flags);
    let k: usize = flags.num("k", 8);
    let alpha: f64 = flags.num("alpha", 0.32);
    let batch: usize = flags.num("batch", 8);
    let fanouts = parse_fanouts(flags, &[15, 10, 5]);
    let setup = DistributedSetup::build(
        &ds,
        SetupConfig {
            num_machines: k,
            fanouts: fanouts.clone(),
            batch_size: batch,
            policy: CachePolicy::VipAnalytic,
            alpha,
            beta: 0.5,
            cache_scheme: parse_quant(flags, "quant"),
            vip_reorder: true,
            seed: flags.num("seed", 0),
        },
    );
    println!(
        "{} on {k} machines, fanouts {fanouts}, alpha {alpha}:",
        ds.name
    );
    println!(
        "  memory = {:.2}x unreplicated features (full replication would be {k}.00x)",
        setup.memory_multiple()
    );
    for (m, store) in setup.stores.iter().enumerate() {
        println!(
            "  machine {m}: {} local ({} on GPU), {} cached remote, {} train vertices",
            setup.layout.part_range(m as u32).len(),
            store.gpu_rows(),
            store.cache().len(),
            setup.local_train[m].len()
        );
    }
}

fn cmd_train(flags: &Flags) {
    let ds = load_dataset(flags);
    let k: usize = flags.num("k", 4);
    let epochs: usize = flags.num("epochs", 5);
    let hidden: usize = flags.num("hidden", 32);
    let lr: f32 = flags.num("lr", 0.005);
    let fanouts = parse_fanouts(flags, &[10, 5]);
    let setup = DistributedSetup::build(
        &ds,
        SetupConfig {
            num_machines: k,
            fanouts,
            batch_size: flags.num("batch", 64),
            policy: CachePolicy::VipAnalytic,
            alpha: flags.num("alpha", 0.32),
            beta: 0.5,
            cache_scheme: parse_quant(flags, "quant"),
            vip_reorder: true,
            seed: flags.num("seed", 0),
        },
    );
    let trainer = DistributedTrainer::new(
        &setup,
        spp_runtime::DistTrainConfig {
            hidden_dim: hidden,
            lr,
            epochs,
            seed: flags.num("seed", 0),
            ..spp_runtime::DistTrainConfig::default()
        },
    );
    println!("training on {k} machine-threads …");
    let (report, _) = trainer.train();
    for (e, loss) in report.epoch_losses.iter().enumerate() {
        println!("  epoch {e}: mean loss {loss:.4}");
    }
    println!(
        "val accuracy {:.3}, test accuracy {:.3}, remote fetches {}",
        report.val_accuracy, report.test_accuracy, report.remote_fetches
    );
}

fn cmd_simulate(flags: &Flags) {
    let ds = load_dataset(flags);
    let k: usize = flags.num("k", 8);
    let alpha: f64 = flags.num("alpha", 0.32);
    let hidden: usize = flags.num("hidden", 256);
    let system = flags.get("system").unwrap_or("salient++");
    let fanouts = parse_fanouts(flags, &[15, 10, 5]);
    let (spec, use_cache) = match system {
        "salient" => (SystemSpec::salient(hidden), false),
        "partitioned" => (SystemSpec::partitioned(hidden), false),
        "pipelined" => (SystemSpec::pipelined(hidden), false),
        "salient++" => (SystemSpec::pipelined(hidden), true),
        "distdgl" => (SystemSpec::distdgl(hidden), false),
        other => {
            eprintln!("unknown system {other}");
            std::process::exit(2);
        }
    };
    let setup = DistributedSetup::build(
        &ds,
        SetupConfig {
            num_machines: k,
            fanouts,
            batch_size: flags.num("batch", 8),
            policy: if use_cache {
                CachePolicy::VipAnalytic
            } else {
                CachePolicy::None
            },
            alpha: if use_cache { alpha } else { 0.0 },
            beta: flags.num("beta", 0.5),
            cache_scheme: parse_quant(flags, "quant"),
            vip_reorder: true,
            seed: flags.num("seed", 0),
        },
    );
    let sim = EpochSim::new(&setup, CostModel::mini_calibrated(), spec);
    let t = sim.simulate_epoch(0);
    println!(
        "{system} on {k} machines: simulated per-epoch {:.2} ms over {} rounds \
         (startup {:.2} ms)",
        t.makespan * 1e3,
        t.rounds,
        t.startup * 1e3
    );
    let b = t.breakdown;
    println!(
        "per-machine busy (ms): sample {:.2}, slice {:.2}, serve {:.2}, comm {:.2}, \
         h2d {:.2}, train {:.2}, allreduce {:.2}",
        b.sample / k as f64 * 1e3,
        b.slice / k as f64 * 1e3,
        b.serve / k as f64 * 1e3,
        b.comm / k as f64 * 1e3,
        b.h2d / k as f64 * 1e3,
        b.train / k as f64 * 1e3,
        b.allreduce / k as f64 * 1e3
    );
}

fn main() -> ExitCode {
    // SPP_TRACE=1 turns on the telemetry recorder for the whole run;
    // traces land in results/trace_<command>.{json,jsonl}.
    let traced = salientpp::telemetry::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let flags = Flags::parse(&args[1..]);
    match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "stats" => cmd_stats(&flags),
        "partition" => cmd_partition(&flags),
        "analyze" => cmd_analyze(&flags),
        "train" => cmd_train(&flags),
        "simulate" => cmd_simulate(&flags),
        _ => usage(),
    }
    if traced {
        print!("{}", salientpp::telemetry::summary());
        match salientpp::telemetry::write_trace_files(std::path::Path::new("results"), cmd) {
            Ok(paths) => {
                for p in paths {
                    println!("trace written: {}", p.display());
                }
            }
            Err(e) => eprintln!("cannot write trace files: {e}"),
        }
    }
    ExitCode::SUCCESS
}
