//! # SALIENT++ in Rust
//!
//! A from-scratch reproduction of *"Communication-Efficient Graph Neural
//! Networks with Probabilistic Neighborhood Expansion Analysis and
//! Caching"* (Kaler, Iliopoulos, Murzynowski, Schardl, Leiserson, Chen —
//! MLSys 2023), including every substrate the paper depends on: graphs
//! and synthetic datasets, a multilevel graph partitioner, a node-wise
//! neighborhood sampler, a tensor/autograd engine with GNN models, the
//! VIP (vertex inclusion probability) analysis and caching policies that
//! are the paper's core contribution, and both a correctness-grade
//! distributed runtime and a discrete-event timing simulator for the
//! paper's performance experiments.
//!
//! This crate is a facade that re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `spp-graph` | CSR graphs, generators, datasets |
//! | [`partition`] | `spp-partition` | multilevel edge-cut partitioning |
//! | [`sampler`] | `spp-sampler` | node-wise sampling, MFGs |
//! | [`tensor`] | `spp-tensor` | matrices, autograd, optimizers |
//! | [`gnn`] | `spp-gnn` | GraphSAGE/GIN/GAT + training |
//! | [`core`] | `spp-core` | VIP analysis, caching, reordering |
//! | [`comm`] | `spp-comm` | DES engine, network models, all-to-all |
//! | [`telemetry`] | `spp-telemetry` | metrics, spans, trace exporters |
//! | [`runtime`] | `spp-runtime` | distributed setup/engine/simulation |
//! | [`serve`] | `spp-serve` | online inference serving: micro-batching, two-tier cache |
//! | [`store`] | `spp-store` | out-of-core paged feature store, streaming CSR builder |
//!
//! # Quickstart
//!
//! ```
//! use salientpp::prelude::*;
//!
//! // A small synthetic dataset and a 2-machine deployment with
//! // VIP-analytic caching at replication factor 0.2.
//! let ds = SyntheticSpec::new("demo", 400, 8.0, 8, 4)
//!     .split_fractions(0.3, 0.1, 0.1)
//!     .seed(1)
//!     .build();
//! let setup = DistributedSetup::build(
//!     &ds,
//!     SetupConfig {
//!         num_machines: 2,
//!         fanouts: Fanouts::new(vec![5, 5]),
//!         alpha: 0.2,
//!         ..SetupConfig::default()
//!     },
//! );
//! assert_eq!(setup.stores.len(), 2);
//! ```

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

pub use spp_comm as comm;
pub use spp_core as core;
pub use spp_gnn as gnn;
pub use spp_graph as graph;
pub use spp_partition as partition;
pub use spp_runtime as runtime;
pub use spp_sampler as sampler;
pub use spp_serve as serve;
pub use spp_store as store;
pub use spp_telemetry as telemetry;
pub use spp_tensor as tensor;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use spp_core::policies::CachePolicy;
    pub use spp_core::{
        CacheBuilder, PartitionedFeatureStore, ReorderedLayout, StaticCache, VipModel,
    };
    pub use spp_gnn::{Arch, GnnModel, TrainConfig, Trainer};
    pub use spp_graph::dataset::{mag240_mini, papers_mini, products_mini, SyntheticSpec};
    pub use spp_graph::generate::GeneratorConfig;
    pub use spp_graph::{CsrGraph, Dataset, FeatureMatrix, GraphBuilder, Permutation, VertexId};
    pub use spp_partition::multilevel::MultilevelPartitioner;
    pub use spp_partition::{Partitioning, VertexWeights};
    pub use spp_runtime::{
        AccessCounts, CostModel, DistTrainConfig, DistributedSetup, DistributedTrainer, EpochSim,
        SetupConfig, SystemSpec,
    };
    pub use spp_sampler::{Fanouts, Mfg, MinibatchIter, NodeWiseSampler};
    pub use spp_serve::{InferenceServer, ServeConfig, ServeReport};
    pub use spp_store::{FeatureStore, InRamStore, MmapStore, StoreBuilder, StreamingCsrBuilder};
    pub use spp_tensor::{Adam, Matrix, Optimizer, Tape};
}
