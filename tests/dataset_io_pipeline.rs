//! Integration test: the artifact workflow — generate → save → load →
//! partition → analyze → train — must produce identical results to the
//! in-memory path (the paper's artifact distributes preprocessed datasets
//! this way).

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use salientpp::prelude::*;
use spp_runtime::DistTrainConfig;

#[test]
fn saved_dataset_trains_identically() {
    let ds = SyntheticSpec::new("io-int", 900, 10.0, 12, 4)
        .split_fractions(0.3, 0.1, 0.2)
        .feature_signal(1.5)
        .homophily(0.9)
        .seed(21)
        .build();
    let path = std::env::temp_dir().join(format!("spp-io-pipeline-{}.sppd", std::process::id()));
    ds.save(&path).expect("save");
    let loaded = Dataset::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    let cfg = SetupConfig {
        num_machines: 2,
        fanouts: Fanouts::new(vec![5, 5]),
        batch_size: 32,
        policy: CachePolicy::VipAnalytic,
        alpha: 0.3,
        beta: 0.5,
        vip_reorder: true,
        seed: 3,
        ..SetupConfig::default()
    };
    let tcfg = DistTrainConfig {
        hidden_dim: 16,
        lr: 0.01,
        epochs: 3,
        ..DistTrainConfig::default()
    };

    let s1 = DistributedSetup::build(&ds, cfg.clone());
    let s2 = DistributedSetup::build(&loaded, cfg);
    // Identical partitioning and caches (the loaded dataset is bit-equal).
    assert_eq!(s1.partitioning, s2.partitioning);
    for (a, b) in s1.stores.iter().zip(&s2.stores) {
        assert_eq!(a.cache().members(), b.cache().members());
    }

    let (r1, _) = DistributedTrainer::new(&s1, tcfg.clone()).train();
    let (r2, _) = DistributedTrainer::new(&s2, tcfg).train();
    assert_eq!(r1.epoch_losses, r2.epoch_losses, "loss trajectories differ");
    assert_eq!(r1.test_accuracy, r2.test_accuracy);
    assert_eq!(r1.remote_fetches, r2.remote_fetches);
}
