//! Integration tests for the timing simulation's qualitative shapes —
//! the claims behind Table 1 and Figures 4–8 must hold for any seed.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use salientpp::prelude::*;

fn dataset(seed: u64) -> Dataset {
    SyntheticSpec::new("shape", 12_000, 16.0, 32, 16)
        .split_fractions(0.03, 0.003, 0.005)
        .homophily(0.93)
        .degree_tail(1.2)
        .seed(seed)
        .build()
}

fn setup(ds: &Dataset, k: usize, alpha: f64, beta: f64) -> DistributedSetup {
    DistributedSetup::build(
        ds,
        SetupConfig {
            num_machines: k,
            fanouts: Fanouts::new(vec![10, 5]),
            batch_size: 8,
            policy: if alpha > 0.0 {
                CachePolicy::VipAnalytic
            } else {
                CachePolicy::None
            },
            alpha,
            beta,
            vip_reorder: true,
            seed: 3,
            ..SetupConfig::default()
        },
    )
}

#[test]
fn table1_ladder_holds_across_seeds() {
    let cost = CostModel::mini_calibrated();
    for seed in [1u64, 9] {
        let ds = dataset(seed);
        let bare = setup(&ds, 4, 0.0, 0.0);
        let cached = setup(&ds, 4, 0.4, 0.0);
        let full = EpochSim::new(&bare, cost, SystemSpec::salient(64)).simulate_epoch(0);
        let part = EpochSim::new(&bare, cost, SystemSpec::partitioned(64)).simulate_epoch(0);
        let pipe = EpochSim::new(&bare, cost, SystemSpec::pipelined(64)).simulate_epoch(0);
        let spp = EpochSim::new(&cached, cost, SystemSpec::pipelined(64)).simulate_epoch(0);
        assert!(
            part.makespan > 1.5 * full.makespan,
            "partitioning must hurt"
        );
        assert!(pipe.makespan < part.makespan, "pipelining must help");
        assert!(spp.makespan < pipe.makespan, "caching must help further");
        assert!(
            spp.makespan < 1.5 * full.makespan,
            "SALIENT++ must approach full replication: {} vs {}",
            spp.makespan,
            full.makespan
        );
    }
}

#[test]
fn epoch_time_decreases_with_alpha() {
    let ds = dataset(2);
    let cost = CostModel::mini_calibrated();
    let mut prev = f64::INFINITY;
    for alpha in [0.0, 0.2, 0.6] {
        let s = setup(&ds, 4, alpha, 0.0);
        let t = EpochSim::new(&s, cost, SystemSpec::pipelined(64)).mean_epoch_time(2);
        assert!(t <= prev * 1.02, "alpha={alpha}: {t} vs prev {prev}");
        prev = t;
    }
}

#[test]
fn distdgl_baseline_is_much_slower() {
    let ds = dataset(4);
    let cost = CostModel::mini_calibrated();
    let bare = setup(&ds, 4, 0.0, 0.1);
    let cached = setup(&ds, 4, 0.4, 0.1);
    let spp = EpochSim::new(&cached, cost, SystemSpec::pipelined(64)).simulate_epoch(0);
    let dgl = EpochSim::new(&bare, cost, SystemSpec::distdgl(64)).simulate_epoch(0);
    assert!(
        dgl.makespan > 4.0 * spp.makespan,
        "DistDGL-like {} vs SALIENT++ {}",
        dgl.makespan,
        spp.makespan
    );
}

#[test]
fn slow_network_amplifies_caching_benefit() {
    let ds = dataset(5);
    let fast = CostModel::mini_calibrated();
    let slow = CostModel::mini_calibrated()
        .with_network(salientpp::comm::NetworkModel::new(2.5e9 / 8.0, 50e-6).with_tbf_gbps(0.5));
    let bare = setup(&ds, 4, 0.0, 0.1);
    let cached = setup(&ds, 4, 0.4, 0.1);
    let gain_fast = EpochSim::new(&bare, fast, SystemSpec::pipelined(64))
        .simulate_epoch(0)
        .makespan
        / EpochSim::new(&cached, fast, SystemSpec::pipelined(64))
            .simulate_epoch(0)
            .makespan;
    let gain_slow = EpochSim::new(&bare, slow, SystemSpec::pipelined(64))
        .simulate_epoch(0)
        .makespan
        / EpochSim::new(&cached, slow, SystemSpec::pipelined(64))
            .simulate_epoch(0)
            .makespan;
    assert!(
        gain_slow > gain_fast,
        "caching should matter more on slow networks: {gain_slow:.2} vs {gain_fast:.2}"
    );
}

#[test]
fn memory_multiple_tracks_alpha() {
    let ds = dataset(6);
    for alpha in [0.0, 0.25, 0.5] {
        let s = setup(&ds, 4, alpha, 0.0);
        let m = s.memory_multiple();
        assert!(
            m <= 1.0 + alpha + 1e-9 && m >= 1.0,
            "alpha={alpha}: memory multiple {m}"
        );
    }
}

#[test]
fn gpu_prefix_reduces_h2d_busy_time() {
    // Wide features so transfer bytes dominate the per-transfer fixed
    // cost; remote/cached rows still ride through host memory, so the
    // GPU prefix can only remove the local-CPU share.
    let ds = SyntheticSpec::new("shape-wide", 12_000, 16.0, 256, 16)
        .split_fractions(0.03, 0.003, 0.005)
        .homophily(0.93)
        .degree_tail(1.2)
        .seed(7)
        .build();
    let cost = CostModel::mini_calibrated();
    let lo = setup(&ds, 4, 0.2, 0.0);
    let hi = setup(&ds, 4, 0.2, 0.9);
    let h_lo = EpochSim::new(&lo, cost, SystemSpec::pipelined(64))
        .simulate_epoch(0)
        .breakdown
        .h2d;
    let h_hi = EpochSim::new(&hi, cost, SystemSpec::pipelined(64))
        .simulate_epoch(0)
        .breakdown
        .h2d;
    assert!(
        h_hi < h_lo * 0.8,
        "90% GPU residency must cut H2D: {h_lo} -> {h_hi}"
    );
}
