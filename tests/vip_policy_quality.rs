//! Integration tests for the headline Figure 2 claims: the analytic VIP
//! caching policy reduces measured communication volume, tracks the
//! oracle closely, and beats structure-only heuristics.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use salientpp::prelude::*;
use spp_core::policies::PolicyContext;
use spp_core::StaticCache;

struct Fixture {
    ds: Dataset,
    partitioning: Partitioning,
    train: Vec<Vec<VertexId>>,
    counts: AccessCounts,
    fanouts: Fanouts,
}

fn fixture() -> Fixture {
    let ds = SyntheticSpec::new("fig2-int", 20_000, 20.0, 16, 16)
        .split_fractions(0.011, 0.001, 0.002)
        .homophily(0.93)
        .degree_tail(1.2)
        .seed(5)
        .build();
    let fanouts = Fanouts::new(vec![10, 10]);
    let cfg = SetupConfig {
        num_machines: 4,
        fanouts: fanouts.clone(),
        batch_size: 8,
        ..SetupConfig::default()
    };
    let (partitioning, train) = DistributedSetup::partition(&ds, &cfg);
    let counts = AccessCounts::measure(&ds.graph, &train, &fanouts, 8, 2, 3);
    Fixture {
        ds,
        partitioning,
        train,
        counts,
        fanouts,
    }
}

fn volume_of(f: &Fixture, policy: CachePolicy, alpha: f64) -> f64 {
    let builder = CacheBuilder::new(alpha, f.ds.num_vertices(), 4);
    let caches: Vec<StaticCache> = (0..4u32)
        .map(|p| {
            let ranking = if policy == CachePolicy::Oracle {
                f.counts.oracle_ranking(&f.partitioning, p as usize)
            } else {
                PolicyContext {
                    graph: &f.ds.graph,
                    partitioning: &f.partitioning,
                    part: p,
                    local_train: &f.train[p as usize],
                    fanouts: f.fanouts.clone(),
                    batch_size: 8,
                    seed: 17,
                    oracle_counts: &[],
                }
                .rank(policy)
            };
            builder.build(&ranking)
        })
        .collect();
    f.counts.total_volume(&f.partitioning, &caches)
}

#[test]
fn vip_reduces_communication_substantially() {
    let f = fixture();
    let none = f.counts.no_cache_volume(&f.partitioning);
    let vip = volume_of(&f, CachePolicy::VipAnalytic, 0.5);
    assert!(
        none / vip > 1.5,
        "VIP at a=0.5 should cut volume substantially: {none:.0} -> {vip:.0}"
    );
}

#[test]
fn vip_tracks_oracle() {
    // The oracle is measured on the evaluation run itself, so with only a
    // couple of epochs it "overfits" the realized randomness; the paper
    // reports the same effect (~30% gap at low sample counts, narrowing
    // with more epochs — §3.2 "Optimality").
    let f = fixture();
    let none = f.counts.no_cache_volume(&f.partitioning);
    for alpha in [0.1, 0.3] {
        let vip = volume_of(&f, CachePolicy::VipAnalytic, alpha);
        let oracle = volume_of(&f, CachePolicy::Oracle, alpha);
        // Compare as a fraction of the no-cache volume: the oracle can
        // reach exactly zero when it covers the whole (finite) measured
        // remote set.
        assert!(
            vip - oracle <= 0.25 * none,
            "a={alpha}: VIP {vip:.0} should track oracle {oracle:.0} (no-cache {none:.0})"
        );
        assert!(vip >= oracle * 0.999, "oracle is a lower bound");
    }
}

#[test]
fn vip_beats_degree_and_halo_heuristics() {
    let f = fixture();
    let vip = volume_of(&f, CachePolicy::VipAnalytic, 0.5);
    let deg = volume_of(&f, CachePolicy::Degree, 0.5);
    let halo = volume_of(&f, CachePolicy::OneHopHalo, 0.5);
    assert!(vip < deg, "VIP {vip:.0} must beat degree {deg:.0}");
    assert!(
        vip < halo * 1.02,
        "VIP {vip:.0} should match/beat 1-hop {halo:.0}"
    );
}

#[test]
fn volume_monotone_in_alpha_for_all_policies() {
    let f = fixture();
    for policy in [
        CachePolicy::Degree,
        CachePolicy::WeightedReversePagerank,
        CachePolicy::NumPaths,
        CachePolicy::Simulation,
        CachePolicy::VipAnalytic,
        CachePolicy::Oracle,
    ] {
        let mut prev = f.counts.no_cache_volume(&f.partitioning);
        for alpha in [0.1, 0.3, 0.6] {
            let v = volume_of(&f, policy, alpha);
            assert!(
                v <= prev + 1e-9,
                "{policy:?}: volume must not grow with alpha ({prev:.0} -> {v:.0})"
            );
            prev = v;
        }
    }
}
