//! Cross-crate integration tests: the paper's core correctness claims.
//!
//! 1. Partitioned + cached + reordered feature gathering is bit-identical
//!    to reading the global feature matrix (storage optimizations do not
//!    change training inputs).
//! 2. Distributed data-parallel training learns, and caching changes the
//!    communication volume but not the computed gradients.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use salientpp::prelude::*;
use spp_runtime::DistTrainConfig;

fn dataset(seed: u64) -> Dataset {
    SyntheticSpec::new("int", 1_500, 12.0, 16, 4)
        .split_fractions(0.3, 0.1, 0.2)
        .homophily(0.9)
        .feature_signal(1.5)
        .seed(seed)
        .build()
}

fn setup(
    ds: &Dataset,
    k: usize,
    policy: CachePolicy,
    alpha: f64,
    vip_reorder: bool,
) -> DistributedSetup {
    DistributedSetup::build(
        ds,
        SetupConfig {
            num_machines: k,
            fanouts: Fanouts::new(vec![5, 5]),
            batch_size: 32,
            policy,
            alpha,
            beta: 0.5,
            vip_reorder,
            seed: 7,
            ..SetupConfig::default()
        },
    )
}

#[test]
fn gather_bit_identical_across_policies_and_orderings() {
    let ds = dataset(1);
    for policy in [
        CachePolicy::None,
        CachePolicy::Degree,
        CachePolicy::VipAnalytic,
    ] {
        for reorder in [false, true] {
            let alpha = if policy == CachePolicy::None {
                0.0
            } else {
                0.3
            };
            let s = setup(&ds, 3, policy, alpha, reorder);
            let trainer = DistributedTrainer::new(&s, DistTrainConfig::default());
            let checked = trainer.verify_gather(11);
            assert!(
                checked > 200,
                "{policy:?}/{reorder}: too few vertices verified"
            );
        }
    }
}

#[test]
fn distributed_training_learns_with_cache() {
    let ds = dataset(2);
    let s = setup(&ds, 2, CachePolicy::VipAnalytic, 0.4, true);
    let trainer = DistributedTrainer::new(
        &s,
        DistTrainConfig {
            hidden_dim: 24,
            lr: 0.01,
            epochs: 6,
            ..DistTrainConfig::default()
        },
    );
    let (report, _) = trainer.train();
    assert!(
        report.epoch_losses.last().unwrap() < &(report.epoch_losses[0] * 0.7),
        "losses: {:?}",
        report.epoch_losses
    );
    assert!(
        report.test_accuracy > 0.7,
        "accuracy {}",
        report.test_accuracy
    );
}

#[test]
fn cache_only_changes_communication_not_loss_trajectory() {
    // With identical seeds, the minibatch streams and model updates are
    // identical whether or not a cache is present — only the number of
    // remote fetches changes. This is the paper's "optimizations do not
    // impact model accuracy" claim in its strongest form.
    let ds = dataset(3);
    let cfg = DistTrainConfig {
        hidden_dim: 16,
        lr: 0.01,
        epochs: 3,
        ..DistTrainConfig::default()
    };
    let s_none = setup(&ds, 3, CachePolicy::None, 0.0, true);
    let s_vip = setup(&ds, 3, CachePolicy::VipAnalytic, 0.5, true);
    let (r_none, _) = DistributedTrainer::new(&s_none, cfg.clone()).train();
    let (r_vip, _) = DistributedTrainer::new(&s_vip, cfg).train();
    assert_eq!(
        r_none.epoch_losses, r_vip.epoch_losses,
        "loss trajectories must be identical"
    );
    assert_eq!(r_none.val_accuracy, r_vip.val_accuracy);
    assert!(
        r_vip.remote_fetches < r_none.remote_fetches,
        "cache must reduce fetches: {} vs {}",
        r_vip.remote_fetches,
        r_none.remote_fetches
    );
}

#[test]
fn vip_reorder_does_not_change_results() {
    // Reordering relabels vertices; training on the permuted dataset with
    // the same per-machine streams must produce the same quality.
    let ds = dataset(4);
    let cfg = DistTrainConfig {
        hidden_dim: 16,
        lr: 0.01,
        epochs: 4,
        ..DistTrainConfig::default()
    };
    let s_plain = setup(&ds, 2, CachePolicy::VipAnalytic, 0.3, false);
    let s_vip = setup(&ds, 2, CachePolicy::VipAnalytic, 0.3, true);
    let (r_plain, _) = DistributedTrainer::new(&s_plain, cfg.clone()).train();
    let (r_vip, _) = DistributedTrainer::new(&s_vip, cfg).train();
    // Not bit-identical (vertex ids differ, so sampling RNG paths differ),
    // but both must converge to comparable accuracy.
    assert!((r_plain.test_accuracy - r_vip.test_accuracy).abs() < 0.15);
    assert!(r_plain.test_accuracy > 0.6 && r_vip.test_accuracy > 0.6);
}
