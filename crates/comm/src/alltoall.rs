//! Barriered all-to-all exchange over real threads (correctness mode).
//!
//! SALIENT++'s pipeline stages 2/4/9 are NCCL all-to-alls; here machines
//! are threads and the exchange is a mailbox matrix with two barriers
//! (deposit, then collect). Used to move real feature tensors and verify
//! distributed gathers bit-for-bit against single-machine execution.

use parking_lot::Mutex;
use std::sync::Barrier;

/// An all-to-all exchange channel among `k` participants.
///
/// Every round, each participant calls [`AllToAll::exchange`] with one
/// item per peer (including itself) and receives the items addressed to
/// it, indexed by sender.
///
/// # Example
///
/// ```
/// use spp_comm::{run_machines, AllToAll};
///
/// let a2a = AllToAll::new(2);
/// let results = run_machines(2, |rank| {
///     // Each machine sends "from <rank> to <peer>".
///     let out: Vec<String> = (0..2).map(|p| format!("{rank}->{p}")).collect();
///     a2a.exchange(rank, out)
/// });
/// assert_eq!(results[0], vec!["0->0".to_string(), "1->0".to_string()]);
/// assert_eq!(results[1], vec!["0->1".to_string(), "1->1".to_string()]);
/// ```
pub struct AllToAll<T> {
    k: usize,
    /// `slots[sender][receiver]`.
    slots: Mutex<Vec<Vec<Option<T>>>>,
    deposit: Barrier,
    collect: Barrier,
}

impl<T> AllToAll<T> {
    /// Creates an exchange for `k` participants.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one participant");
        Self {
            k,
            slots: Mutex::new((0..k).map(|_| (0..k).map(|_| None).collect()).collect()),
            deposit: Barrier::new(k),
            collect: Barrier::new(k),
        }
    }

    /// Number of participants.
    pub fn num_participants(&self) -> usize {
        self.k
    }

    /// Performs one all-to-all round. `outgoing[p]` is sent to peer `p`;
    /// the return value's entry `p` is what peer `p` sent to this rank.
    /// All `k` participants must call this once per round.
    ///
    /// # Panics
    ///
    /// Panics if `outgoing.len() != k` or `rank >= k`.
    pub fn exchange(&self, rank: usize, outgoing: Vec<T>) -> Vec<T> {
        assert!(rank < self.k, "rank out of range");
        assert_eq!(outgoing.len(), self.k, "need one item per peer");
        {
            let mut slots = self.slots.lock();
            for (receiver, item) in outgoing.into_iter().enumerate() {
                debug_assert!(slots[rank][receiver].is_none(), "slot already full");
                slots[rank][receiver] = Some(item);
            }
        }
        self.deposit.wait();
        #[allow(clippy::expect_used)]
        let incoming: Vec<T> = {
            let mut slots = self.slots.lock();
            (0..self.k)
                // spp-lint: allow(l1-no-panic): the barrier above guarantees every peer deposited; an empty slot is unreachable protocol state
                .map(|sender| slots[sender][rank].take().expect("peer did not deposit"))
                .collect()
        };
        self.collect.wait();
        incoming
    }
}

/// Runs `k` machine closures on scoped threads and collects their results
/// in rank order. Panics in any machine propagate.
pub fn run_machines<T, F>(k: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = (0..k).map(|_| None).collect();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..k)
            .map(|rank| {
                let f = &f;
                s.spawn(move |_| f(rank))
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            out[rank] = Some(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
    })
    .unwrap_or_else(|e| std::panic::resume_unwind(e));
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_routes_correctly() {
        let k = 4;
        let a2a = AllToAll::new(k);
        let results = run_machines(k, |rank| {
            let out: Vec<(usize, usize)> = (0..k).map(|p| (rank, p)).collect();
            a2a.exchange(rank, out)
        });
        for (receiver, incoming) in results.iter().enumerate() {
            for (sender, &(s, r)) in incoming.iter().enumerate() {
                assert_eq!((s, r), (sender, receiver));
            }
        }
    }

    #[test]
    fn repeated_rounds_are_isolated() {
        let k = 3;
        let a2a = AllToAll::new(k);
        let results = run_machines(k, |rank| {
            let mut sums = Vec::new();
            for round in 0..5u64 {
                let out: Vec<u64> = (0..k)
                    .map(|p| round * 100 + (rank * k + p) as u64)
                    .collect();
                let incoming = a2a.exchange(rank, out);
                // All incoming items must be from this round.
                assert!(incoming.iter().all(|&x| x / 100 == round));
                sums.push(incoming.iter().sum::<u64>());
            }
            sums
        });
        assert_eq!(results.len(), k);
    }

    #[test]
    fn single_participant_loopback() {
        let a2a = AllToAll::new(1);
        let got = a2a.exchange(0, vec![42]);
        assert_eq!(got, vec![42]);
    }

    #[test]
    fn run_machines_collects_in_rank_order() {
        let out = run_machines(5, |rank| rank * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }
}
