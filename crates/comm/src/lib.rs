//! Communication substrates for the SALIENT++ reproduction.
//!
//! Two execution modes back the experiments (DESIGN.md §6):
//!
//! - **Timing mode** — [`des`] provides a deterministic dependency-graph
//!   discrete-event engine: tasks claim serial resources (CPU, GPU
//!   compute, copy engines, NIC) and the engine computes start/completion
//!   times, utilization, and makespan. [`net`] provides transfer-time
//!   models (bandwidth + latency, with an optional token-bucket filter
//!   reproducing the paper's slow-network experiments).
//! - **Correctness mode** — [`alltoall`] provides a barriered all-to-all
//!   exchange over real threads, used to move actual feature tensors
//!   between simulated machines and verify distributed gathers
//!   bit-for-bit.

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

pub mod alltoall;
pub mod des;
pub mod net;

pub use alltoall::{run_machines, AllToAll};
pub use des::{DesEngine, ResourceId, TaskId, TraceEntry};
pub use net::{NetworkModel, TokenBucket};
