//! A deterministic dependency-graph discrete-event engine.
//!
//! Tasks declare a serial resource (a CPU worker pool slot, the GPU
//! compute stream, a PCIe copy engine, the NIC) plus dependencies on
//! earlier tasks. Submission computes each task's start time as
//! `max(resource free, deps complete)` — classic list scheduling — which
//! is exactly the semantics of a pipelined system whose stages run on
//! dedicated execution resources. The engine reports per-task times,
//! per-resource busy time, and the makespan.

/// Handle to a resource registered with a [`DesEngine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ResourceId(usize);

/// Handle to a submitted task.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

#[derive(Clone, Debug)]
struct TaskRecord {
    start: f64,
    completion: f64,
    resource: Option<ResourceId>,
}

/// One traced task interval (only recorded when tracing is enabled).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEntry {
    /// Resource the task ran on.
    pub resource: ResourceId,
    /// Task label supplied at submission.
    pub label: String,
    /// Start time (seconds).
    pub start: f64,
    /// Completion time (seconds).
    pub end: f64,
}

/// The engine.
///
/// # Example
///
/// ```
/// use spp_comm::DesEngine;
///
/// let mut des = DesEngine::new();
/// let cpu = des.add_resource("cpu");
/// let gpu = des.add_resource("gpu");
/// let a = des.submit(cpu, 2.0, &[]);
/// let b = des.submit(gpu, 1.0, &[a]); // waits for a
/// assert_eq!(des.completion(b), 3.0);
/// assert_eq!(des.makespan(), 3.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DesEngine {
    resource_free: Vec<f64>,
    resource_busy: Vec<f64>,
    resource_names: Vec<String>,
    tasks: Vec<TaskRecord>,
    trace: Option<Vec<TraceEntry>>,
}

impl DesEngine {
    /// Creates an empty engine at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables per-task tracing; subsequent [`DesEngine::submit_labeled`]
    /// calls record [`TraceEntry`]s retrievable via [`DesEngine::trace`].
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded trace (empty if tracing was never enabled).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Like [`DesEngine::submit`], attaching `label` to the trace entry
    /// when tracing is enabled.
    pub fn submit_labeled(
        &mut self,
        resource: ResourceId,
        duration: f64,
        deps: &[TaskId],
        label: &str,
    ) -> TaskId {
        self.submit_labeled_released(resource, duration, deps, label, 0.0)
    }

    /// Like [`DesEngine::submit_released`], attaching `label` to the
    /// trace entry when tracing is enabled.
    pub fn submit_labeled_released(
        &mut self,
        resource: ResourceId,
        duration: f64,
        deps: &[TaskId],
        label: &str,
        release: f64,
    ) -> TaskId {
        let id = self.submit_released(resource, duration, deps, release);
        let (start, end) = (self.start(id), self.completion(id));
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry {
                resource,
                label: label.to_string(),
                start,
                end,
            });
        }
        id
    }

    /// Registers a serial resource.
    pub fn add_resource(&mut self, name: &str) -> ResourceId {
        self.resource_free.push(0.0);
        self.resource_busy.push(0.0);
        self.resource_names.push(name.to_string());
        ResourceId(self.resource_free.len() - 1)
    }

    /// Submits a task of `duration` seconds on `resource`, starting no
    /// earlier than all of `deps` complete. Returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative or any dependency is unknown.
    pub fn submit(&mut self, resource: ResourceId, duration: f64, deps: &[TaskId]) -> TaskId {
        self.submit_released(resource, duration, deps, 0.0)
    }

    /// Like [`DesEngine::submit`] with an additional *release time*: the
    /// task cannot start before `release`, even if its resource and
    /// dependencies are free earlier. This models work that becomes
    /// available at a known virtual time — e.g. an inference micro-batch
    /// that closes when its batching deadline fires, not when the
    /// pipeline happens to be idle.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative or any dependency is unknown.
    pub fn submit_released(
        &mut self,
        resource: ResourceId,
        duration: f64,
        deps: &[TaskId],
        release: f64,
    ) -> TaskId {
        assert!(duration >= 0.0, "duration must be non-negative");
        let deps_done = deps
            .iter()
            .map(|&d| self.completion(d))
            .fold(release, f64::max);
        let start = deps_done.max(self.resource_free[resource.0]);
        let completion = start + duration;
        self.resource_free[resource.0] = completion;
        self.resource_busy[resource.0] += duration;
        self.tasks.push(TaskRecord {
            start,
            completion,
            resource: Some(resource),
        });
        TaskId(self.tasks.len() - 1)
    }

    /// Submits a zero-duration synchronization point depending on `deps`,
    /// bound to no resource (e.g. "batch complete").
    pub fn join(&mut self, deps: &[TaskId]) -> TaskId {
        let deps_done = deps
            .iter()
            .map(|&d| self.completion(d))
            .fold(0.0f64, f64::max);
        self.tasks.push(TaskRecord {
            start: deps_done,
            completion: deps_done,
            resource: None,
        });
        TaskId(self.tasks.len() - 1)
    }

    /// A task's start time.
    pub fn start(&self, task: TaskId) -> f64 {
        self.tasks[task.0].start
    }

    /// A task's completion time.
    pub fn completion(&self, task: TaskId) -> f64 {
        self.tasks[task.0].completion
    }

    /// The resource a task ran on (`None` for joins).
    pub fn resource_of(&self, task: TaskId) -> Option<ResourceId> {
        self.tasks[task.0].resource
    }

    /// Total busy time of a resource.
    pub fn busy_time(&self, resource: ResourceId) -> f64 {
        self.resource_busy[resource.0]
    }

    /// A resource's registered name.
    pub fn resource_name(&self, resource: ResourceId) -> &str {
        &self.resource_names[resource.0]
    }

    /// Latest completion over all tasks (0 if none).
    pub fn makespan(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.completion)
            .fold(0.0f64, f64::max)
    }

    /// Number of submitted tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Utilization of a resource relative to the makespan (0..1).
    pub fn utilization(&self, resource: ResourceId) -> f64 {
        let m = self.makespan();
        if m == 0.0 {
            0.0
        } else {
            self.busy_time(resource) / m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_resource_queues_tasks() {
        let mut des = DesEngine::new();
        let r = des.add_resource("r");
        let a = des.submit(r, 1.0, &[]);
        let b = des.submit(r, 2.0, &[]);
        assert_eq!(des.completion(a), 1.0);
        assert_eq!(des.start(b), 1.0);
        assert_eq!(des.completion(b), 3.0);
        assert_eq!(des.busy_time(r), 3.0);
    }

    #[test]
    fn release_time_delays_start() {
        let mut des = DesEngine::new();
        let r = des.add_resource("r");
        // Idle resource, no deps: the release time alone gates the start.
        let a = des.submit_released(r, 1.0, &[], 5.0);
        assert_eq!(des.start(a), 5.0);
        assert_eq!(des.completion(a), 6.0);
        // Release earlier than the resource-free time is a no-op.
        let b = des.submit_released(r, 1.0, &[], 2.0);
        assert_eq!(des.start(b), 6.0);
        // Release interacts with deps: latest of the three wins.
        let c = des.submit_released(r, 1.0, &[a], 10.0);
        assert_eq!(des.start(c), 10.0);
        // Busy time counts durations only, not release idle gaps.
        assert_eq!(des.busy_time(r), 3.0);
    }

    #[test]
    fn labeled_release_records_trace_interval() {
        let mut des = DesEngine::new();
        des.enable_trace();
        let r = des.add_resource("r");
        des.submit_labeled_released(r, 2.0, &[], "warm", 3.0);
        let t = des.trace();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].label, "warm");
        assert_eq!(t[0].start, 3.0);
        assert_eq!(t[0].end, 5.0);
    }

    #[test]
    fn independent_resources_overlap() {
        let mut des = DesEngine::new();
        let r1 = des.add_resource("a");
        let r2 = des.add_resource("b");
        des.submit(r1, 5.0, &[]);
        des.submit(r2, 5.0, &[]);
        assert_eq!(des.makespan(), 5.0);
    }

    #[test]
    fn dependencies_delay_start() {
        let mut des = DesEngine::new();
        let r1 = des.add_resource("a");
        let r2 = des.add_resource("b");
        let a = des.submit(r1, 3.0, &[]);
        let b = des.submit(r2, 1.0, &[a]);
        assert_eq!(des.start(b), 3.0);
        assert_eq!(des.completion(b), 4.0);
    }

    #[test]
    fn pipeline_overlaps_stages() {
        // Two-stage pipeline over 3 items: stage1 on r1 (1s), stage2 on r2
        // (1s). Pipelined makespan = 4, serial would be 6.
        let mut des = DesEngine::new();
        let r1 = des.add_resource("s1");
        let r2 = des.add_resource("s2");
        let mut last = None;
        for _ in 0..3 {
            let a = des.submit(r1, 1.0, &[]);
            let b = des.submit(r2, 1.0, &[a]);
            last = Some(b);
        }
        assert_eq!(des.completion(last.unwrap()), 4.0);
    }

    #[test]
    fn join_synchronizes_without_resource() {
        let mut des = DesEngine::new();
        let r = des.add_resource("r");
        let a = des.submit(r, 2.0, &[]);
        let b = des.submit(r, 1.0, &[]);
        let j = des.join(&[a, b]);
        assert_eq!(des.completion(j), 3.0);
        assert_eq!(des.resource_of(j), None);
    }

    #[test]
    fn utilization_bounds() {
        let mut des = DesEngine::new();
        let r1 = des.add_resource("a");
        let r2 = des.add_resource("b");
        let a = des.submit(r1, 2.0, &[]);
        des.submit(r2, 2.0, &[a]);
        assert_eq!(des.makespan(), 4.0);
        assert_eq!(des.utilization(r1), 0.5);
        assert_eq!(des.utilization(r2), 0.5);
    }

    #[test]
    fn makespan_bounded_by_serial_sum() {
        let mut des = DesEngine::new();
        let r1 = des.add_resource("a");
        let r2 = des.add_resource("b");
        let mut total = 0.0;
        let mut prev: Option<TaskId> = None;
        for i in 0..10 {
            let dur = 0.1 * (i + 1) as f64;
            total += dur;
            let r = if i % 2 == 0 { r1 } else { r2 };
            let deps: Vec<TaskId> = prev.into_iter().collect();
            prev = Some(des.submit(r, dur, &deps));
        }
        assert!(des.makespan() <= total + 1e-9);
        assert!(des.makespan() >= des.busy_time(r1).max(des.busy_time(r2)));
    }

    #[test]
    fn trace_records_labeled_tasks() {
        let mut des = DesEngine::new();
        des.enable_trace();
        let r = des.add_resource("r");
        let a = des.submit_labeled(r, 1.0, &[], "first");
        des.submit_labeled(r, 2.0, &[a], "second");
        des.submit(r, 1.0, &[]); // unlabeled: not traced
        let t = des.trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].label, "first");
        assert_eq!(t[1].label, "second");
        assert_eq!(t[1].start, 1.0);
        assert_eq!(t[1].end, 3.0);
    }

    #[test]
    fn trace_empty_without_enable() {
        let mut des = DesEngine::new();
        let r = des.add_resource("r");
        des.submit_labeled(r, 1.0, &[], "x");
        assert!(des.trace().is_empty());
    }

    #[test]
    #[should_panic(expected = "duration must be non-negative")]
    fn negative_duration_rejected() {
        let mut des = DesEngine::new();
        let r = des.add_resource("r");
        des.submit(r, -1.0, &[]);
    }
}
