//! Network transfer-time models.

/// A token-bucket filter (TBF), the Linux traffic-control queuing
/// discipline the paper uses to emulate slow networks (§5.2, Figure 9).
/// Tokens refill at `rate` bytes/second up to `burst` bytes; a transfer
/// departing when the bucket is empty waits for tokens.
#[derive(Clone, Copy, Debug)]
pub struct TokenBucket {
    /// Sustained rate in bytes per second.
    pub rate: f64,
    /// Bucket depth in bytes.
    pub burst: f64,
}

impl TokenBucket {
    /// Creates a bucket.
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `burst` is non-positive.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        assert!(burst > 0.0, "burst must be positive");
        Self { rate, burst }
    }
}

/// Stateful token-bucket shaper: tracks the token level across transfers.
#[derive(Clone, Copy, Debug)]
pub struct TokenBucketState {
    bucket: TokenBucket,
    tokens: f64,
    last_time: f64,
}

impl TokenBucketState {
    /// Starts with a full bucket at time 0.
    pub fn new(bucket: TokenBucket) -> Self {
        Self {
            bucket,
            tokens: bucket.burst,
            last_time: 0.0,
        }
    }

    /// Returns the completion time of a transfer of `bytes` starting at
    /// `start`, consuming tokens; earlier of burst capacity or line rate.
    pub fn shape(&mut self, start: f64, bytes: f64) -> f64 {
        // Refill.
        let t = start.max(self.last_time);
        self.tokens =
            (self.tokens + (t - self.last_time) * self.bucket.rate).min(self.bucket.burst);
        self.last_time = t;
        if bytes <= self.tokens {
            self.tokens -= bytes;
            t
        } else {
            let deficit = bytes - self.tokens;
            self.tokens = 0.0;
            let done = t + deficit / self.bucket.rate;
            self.last_time = done;
            done
        }
    }
}

/// A point-to-point network model: per-message latency plus serialized
/// bandwidth, optionally shaped by a token bucket.
///
/// # Example
///
/// ```
/// use spp_comm::NetworkModel;
///
/// // 25 Gbps, 50 µs latency (the paper's cluster SLA).
/// let net = NetworkModel::new(25e9 / 8.0, 50e-6);
/// let t = net.transfer_time(3_125_000.0); // 1 ms of wire time
/// assert!((t - 0.00105).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// Link bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
    /// Optional token-bucket shaping (slow-network experiments).
    pub tbf: Option<TokenBucket>,
}

impl NetworkModel {
    /// Creates an unshaped model.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is non-positive or `latency` negative.
    pub fn new(bandwidth: f64, latency: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        assert!(latency >= 0.0, "latency must be non-negative");
        Self {
            bandwidth,
            latency,
            tbf: None,
        }
    }

    /// The paper's cluster: AWS g5.8xlarge, 25 Gbps SLA, ~50 µs latency.
    pub fn aws_25gbps() -> Self {
        Self::new(25e9 / 8.0, 50e-6)
    }

    /// Adds token-bucket shaping at `rate_gbps` (Figure 9's slow networks).
    pub fn with_tbf_gbps(mut self, rate_gbps: f64) -> Self {
        let rate = rate_gbps * 1e9 / 8.0;
        self.tbf = Some(TokenBucket::new(rate, rate * 0.01));
        self
    }

    /// Effective sustained rate (bandwidth, capped by the TBF rate).
    pub fn effective_rate(&self) -> f64 {
        match self.tbf {
            Some(t) => self.bandwidth.min(t.rate),
            None => self.bandwidth,
        }
    }

    /// Time to move `bytes` point-to-point (latency + serialization at the
    /// effective rate). Stateless steady-state approximation of the TBF.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.effective_rate()
    }

    /// Time for a balanced all-to-all among `k` machines in which each
    /// machine sends `bytes_out` in total, split across `k-1` peers: the
    /// NIC serializes the machine's own traffic, and each peer message
    /// pays the latency once (messages overlap, so latency counts once
    /// plus serialization).
    pub fn all_to_all_time(&self, k: usize, bytes_out: f64) -> f64 {
        if k <= 1 || bytes_out <= 0.0 {
            return 0.0;
        }
        self.latency + bytes_out / self.effective_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_adds_latency_and_serialization() {
        let net = NetworkModel::new(1e9, 1e-3);
        let t = net.transfer_time(1e9);
        assert!((t - 1.001).abs() < 1e-9);
    }

    #[test]
    fn tbf_caps_rate() {
        let net = NetworkModel::new(1e9, 0.0).with_tbf_gbps(1.0); // 125 MB/s
        assert!((net.effective_rate() - 125e6).abs() < 1.0);
        let t = net.transfer_time(125e6);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tbf_faster_than_line_rate_is_ignored() {
        let net = NetworkModel::new(1e6, 0.0).with_tbf_gbps(100.0);
        assert_eq!(net.effective_rate(), 1e6);
    }

    #[test]
    fn all_to_all_zero_for_single_machine() {
        let net = NetworkModel::aws_25gbps();
        assert_eq!(net.all_to_all_time(1, 1e9), 0.0);
    }

    #[test]
    fn stateful_bucket_burst_then_throttle() {
        let mut s = TokenBucketState::new(TokenBucket::new(100.0, 50.0));
        // First 50 bytes ride the burst: complete immediately.
        assert_eq!(s.shape(0.0, 50.0), 0.0);
        // Next 100 bytes must wait for refill: 1 second at rate 100.
        let done = s.shape(0.0, 100.0);
        assert!((done - 1.0).abs() < 1e-9);
        // After a long idle period the bucket refills to burst.
        let done2 = s.shape(100.0, 50.0);
        assert_eq!(done2, 100.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        NetworkModel::new(0.0, 0.0);
    }
}
