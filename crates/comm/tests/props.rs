//! Property-based tests for the DES engine and network models.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use proptest::prelude::*;
use spp_comm::net::TokenBucketState;
use spp_comm::{DesEngine, NetworkModel, TokenBucket};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn des_invariants_hold_for_random_task_graphs(
        num_resources in 1usize..5,
        tasks in prop::collection::vec((0usize..5, 0.0f64..0.01, 0usize..8), 1..60),
    ) {
        let mut des = DesEngine::new();
        let resources: Vec<_> = (0..num_resources)
            .map(|i| des.add_resource(&format!("r{i}")))
            .collect();
        let mut ids = Vec::new();
        let mut total = 0.0f64;
        for (ri, dur, ndeps) in tasks {
            let r = resources[ri % num_resources];
            // Dependencies: a sample of previously submitted tasks.
            let deps: Vec<_> = ids
                .iter()
                .rev()
                .take(ndeps.min(ids.len()))
                .copied()
                .collect();
            let t = des.submit(r, dur, &deps);
            total += dur;
            // Completion respects duration and dependencies.
            prop_assert!(des.completion(t) >= des.start(t));
            prop_assert!((des.completion(t) - des.start(t) - dur).abs() < 1e-12);
            for &d in &deps {
                prop_assert!(des.start(t) >= des.completion(d) - 1e-12);
            }
            ids.push(t);
        }
        // Makespan bounded below by the busiest resource and above by the
        // serial sum.
        let busiest = resources
            .iter()
            .map(|&r| des.busy_time(r))
            .fold(0.0f64, f64::max);
        prop_assert!(des.makespan() >= busiest - 1e-12);
        prop_assert!(des.makespan() <= total + 1e-12);
        for &r in &resources {
            let u = des.utilization(r);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
    }

    #[test]
    fn token_bucket_completion_is_monotone(
        rate in 1.0f64..1e6,
        burst in 1.0f64..1e6,
        transfers in prop::collection::vec((0.0f64..100.0, 0.0f64..1e6), 1..30),
    ) {
        let mut s = TokenBucketState::new(TokenBucket::new(rate, burst));
        let mut time = 0.0f64;
        let mut last_done = 0.0f64;
        for (gap, bytes) in transfers {
            time += gap;
            let done = s.shape(time, bytes);
            // Transfers never complete before they start, and completions
            // are non-decreasing under non-decreasing start times.
            prop_assert!(done >= time - 1e-9);
            prop_assert!(done >= last_done - 1e-9);
            last_done = done;
        }
    }

    #[test]
    fn transfer_time_monotone_in_bytes(
        bw in 1.0f64..1e12,
        lat in 0.0f64..1.0,
        a in 0.0f64..1e9,
        b in 0.0f64..1e9,
    ) {
        let net = NetworkModel::new(bw, lat);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(net.transfer_time(lo) <= net.transfer_time(hi) + 1e-12);
        prop_assert!(net.transfer_time(lo) >= lat);
    }
}

#[test]
fn machine_panic_propagates() {
    // Failure injection: a panicking machine must fail the whole run, not
    // silently hang or drop its result.
    let result = std::panic::catch_unwind(|| {
        spp_comm::run_machines(3, |rank| {
            if rank == 1 {
                panic!("injected failure");
            }
            rank
        })
    });
    assert!(result.is_err(), "panic must propagate to the caller");
}
