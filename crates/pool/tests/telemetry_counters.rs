//! Telemetry counters under pool concurrency: increments recorded from
//! N concurrent pool workers must merge exactly — the thread-local
//! shard design (with free-list recycling of worker shards) can never
//! lose or double-count an event, for any worker/job/increment mix.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use proptest::prelude::*;
use spp_pool::WorkerPool;
use spp_telemetry as tel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn concurrent_counter_increments_sum_exactly(
        workers in 1usize..=8,
        adds_per_job in proptest::collection::vec(0u64..=64, 1usize..25),
    ) {
        tel::set_enabled(true);
        let c = tel::counter("test.pool.concurrent_adds");
        let before = c.value();
        let jobs = adds_per_job.len();
        let adds = &adds_per_job;
        WorkerPool::new(workers).run_jobs(jobs, |j| {
            // Distinct per-job weights so a lost/duplicated shard write
            // shifts the total no matter which job it came from.
            for _ in 0..adds[j] {
                c.add(j as u64 + 1);
            }
        });
        let expect: u64 = adds_per_job
            .iter()
            .enumerate()
            .map(|(j, &n)| n * (j as u64 + 1))
            .sum();
        prop_assert_eq!(c.value() - before, expect);
    }

    #[test]
    fn histogram_observations_merge_exactly_across_workers(
        workers in 1usize..=8,
        samples_per_job in proptest::collection::vec(0u64..=1024, 1usize..17),
    ) {
        tel::set_enabled(true);
        let h = tel::histogram("test.pool.concurrent_hist");
        let before = h.snapshot();
        let samples = &samples_per_job;
        WorkerPool::new(workers).run_jobs(samples.len(), |j| {
            h.observe(samples[j]);
        });
        let after = h.snapshot();
        prop_assert_eq!(after.count - before.count, samples_per_job.len() as u64);
        prop_assert_eq!(
            after.sum - before.sum,
            samples_per_job.iter().sum::<u64>()
        );
    }
}
