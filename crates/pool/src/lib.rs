//! The bounded, deterministic worker pool (`spp_runtime::pool`).
//!
//! Every data-parallel hot path in the workspace — the VIP sweeps, dense
//! matrix kernels, minibatch preparation, per-machine measurement streams
//! — schedules onto a [`WorkerPool`] instead of spawning its own threads.
//! The pool gives three guarantees:
//!
//! 1. **Bounded concurrency.** A parallel region runs on at most
//!    [`WorkerPool::workers`] OS threads, forked and joined inside the
//!    call (structured fork-join — threads cannot leak, the L4 lint
//!    invariant). Nested regions share the budget via
//!    [`WorkerPool::split`].
//! 2. **Deterministic decomposition.** Chunk boundaries are a pure
//!    function of input sizes and weights ([`even_ranges`] /
//!    [`balanced_ranges`]) — never of timing — and results merge in index
//!    order, so any computation whose per-item result is a function of
//!    the item alone is *bit-identical* across worker counts, serial
//!    execution included.
//! 3. **One sizing policy.** [`WorkerPool::jobs_for_cost`] decides how
//!    many jobs a region is worth, replacing per-call-site thread caps
//!    and FLOP thresholds.
//!
//! The global pool is sized from `std::thread::available_parallelism`,
//! overridable with the `SPP_POOL_WORKERS` environment variable (read
//! once, at first use).
//!
//! Regions are instrumented with `spp-telemetry`: counters
//! `pool.regions` / `pool.jobs` / `pool.threads_forked` / `pool.merges`,
//! gauge `pool.queue_depth`, and histograms `pool.job_ns` /
//! `pool.region_ns`. Recording is a no-op (one relaxed flag load) while
//! telemetry is disabled, and metrics never feed back into scheduling,
//! so determinism guarantee 2 holds with tracing on or off.
//!
//! This crate sits below `spp-core`/`spp-tensor` in the dependency graph
//! so their kernels can use it; `spp-runtime` re-exports it as
//! `spp_runtime::pool`, which is the sanctioned entry point for
//! runtime-level code.
//!
//! # Example
//!
//! ```
//! use spp_pool::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let squares = pool.run_jobs(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! // Same values on any worker count — merges are index-ordered.
//! assert_eq!(squares, WorkerPool::serial().run_jobs(8, |i| i * i));
//! ```

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

use spp_sync::Mutex;
use spp_telemetry::metrics::{self, Counter, Gauge, Histogram};
use std::ops::Range;
use std::sync::OnceLock;

/// Cached telemetry handles for the pool hot paths. Registered on first
/// use; every recording call is a no-op while telemetry is disabled
/// (`spp_telemetry::enabled()` gates the whole block, so the disabled
/// cost is one relaxed load per region).
struct PoolMetrics {
    /// Parallel regions entered (`run_jobs` / `par_chunks`).
    regions: Counter,
    /// Jobs dealt across all regions.
    jobs: Counter,
    /// Scoped threads forked (regions that stayed serial fork none).
    threads_forked: Counter,
    /// Index-ordered result merges (the tag+sort path of `run_jobs`).
    merges: Counter,
    /// Jobs queued in the most recent region (max = widest region).
    queue_depth: Gauge,
    /// Per-job latency, nanoseconds.
    job_ns: Histogram,
    /// Whole-region latency (fork + work + merge), nanoseconds.
    region_ns: Histogram,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        regions: metrics::counter("pool.regions"),
        jobs: metrics::counter("pool.jobs"),
        threads_forked: metrics::counter("pool.threads_forked"),
        merges: metrics::counter("pool.merges"),
        queue_depth: metrics::gauge("pool.queue_depth"),
        job_ns: metrics::histogram("pool.job_ns"),
        region_ns: metrics::histogram("pool.region_ns"),
    })
}

/// Minimum per-job work (in abstract cost units — FLOPs, edges, bytes)
/// below which forking another worker costs more than it saves. One
/// constant for the whole workspace: ~1M scalar ops amortizes a scoped
/// thread spawn by two to three orders of magnitude.
pub const MIN_COST_PER_JOB: u64 = 1 << 20;

/// A bounded, deterministic fork-join worker pool.
///
/// The pool is a lightweight descriptor (`Copy`): it fixes the worker
/// budget and the decomposition policy. Execution uses scoped threads
/// forked per parallel region and joined before the region returns, so a
/// `WorkerPool` can never leak threads or queues.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerPool {
    workers: usize,
}

/// Cached global worker count (env override or hardware parallelism).
static GLOBAL_WORKERS: OnceLock<usize> = OnceLock::new();

impl WorkerPool {
    /// A pool with exactly `workers` workers (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// The single-worker pool: every region runs inline on the caller.
    pub fn serial() -> Self {
        Self { workers: 1 }
    }

    /// The process-global pool: `SPP_POOL_WORKERS` if set to a positive
    /// integer, else `std::thread::available_parallelism`. Read once and
    /// cached for the life of the process.
    pub fn global() -> Self {
        let workers = *GLOBAL_WORKERS.get_or_init(|| {
            // spp-det: allow(d3-ambient-read): worker-count knob; picks wave shapes only, §9 results are pool-size invariant
            std::env::var("SPP_POOL_WORKERS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&w| w > 0)
                // spp-det: allow(d4-worker-leak): core count sizes the pool, never flows into merged values (index-ordered reduction)
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
        });
        Self { workers }
    }

    /// The worker budget.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// An inner pool for nested regions: when this pool schedules
    /// `outer_jobs` concurrent jobs, each job may itself parallelize on
    /// the returned pool without exceeding the combined budget
    /// (`outer × inner ≤ workers`, up to rounding to ≥ 1).
    pub fn split(&self, outer_jobs: usize) -> WorkerPool {
        WorkerPool::new(self.workers / outer_jobs.max(1))
    }

    /// How many jobs a region of `total_cost` abstract work units is
    /// worth: `total_cost / MIN_COST_PER_JOB`, clamped to `[1, workers]`.
    /// This is the one sizing policy for the workspace — call sites do
    /// not carry their own thread caps or thresholds.
    pub fn jobs_for_cost(&self, total_cost: u64) -> usize {
        let by_cost = (total_cost / MIN_COST_PER_JOB).min(self.workers as u64);
        (by_cost as usize).max(1)
    }

    /// Like [`WorkerPool::jobs_for_cost`] for item counts with an
    /// explicit minimum number of items per job.
    pub fn jobs_for_items(&self, items: usize, min_per_job: usize) -> usize {
        let by_items = (items / min_per_job.max(1)).min(self.workers);
        by_items.max(1)
    }

    /// Runs `num_jobs` independent jobs, `f(i)` for `i in 0..num_jobs`,
    /// on at most `workers` scoped threads (jobs are dealt round-robin
    /// when they outnumber workers). Returns results in job-index order.
    ///
    /// Determinism: which worker runs a job is timing-independent (the
    /// deal is fixed), and the output order is the job order, so the
    /// result is identical to the serial loop for any worker count.
    // spp-hot(pool.run_jobs)
    pub fn run_jobs<R, F>(&self, num_jobs: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if num_jobs == 0 {
            return Vec::new(); // spp-hot: alloc(empty-region result; Vec::new of len 0 never touches the heap)
        }
        let tm = metrics::enabled().then(pool_metrics);
        if let Some(m) = tm {
            m.regions.inc();
            m.jobs.add(num_jobs as u64);
            m.queue_depth.set(num_jobs as u64);
        }
        let _region = tm.map(|m| m.region_ns.time());
        let run = |i: usize| {
            let _t = tm.map(|m| m.job_ns.time());
            f(i)
        };
        let threads = self.workers.min(num_jobs);
        if threads <= 1 {
            return (0..num_jobs).map(run).collect(); // spp-hot: alloc(region result buffer, one slot per job — the region's output)
        }
        if let Some(m) = tm {
            m.threads_forked.add(threads as u64);
        }
        // Workers publish tagged parts into a shared merge queue; the
        // queue is mutex-ordered (spp-sync instrumented — the pool-queue
        // model-check harness explores this handoff) and the final sort
        // restores job-index order regardless of completion order.
        let merged: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(num_jobs)); // spp-hot: alloc(merge queue, one slot per job; lives for the region)
        let run = &run;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let merged = &merged;
                    s.spawn(move || {
                        let mut part = Vec::with_capacity(num_jobs.div_ceil(threads)); // spp-hot: alloc(per-worker staging, sized once to its round-robin share)
                        let mut i = w;
                        while i < num_jobs {
                            part.push((i, run(i))); // spp-hot: alloc(per-worker result slot; capacity reserved above)
                            i += threads;
                        }
                        merged.lock().extend(part); // spp-hot: allow(h1-alloc, h3-lock): one publish per worker at region end — the merge IS the batch boundary
                    })
                })
                .collect(); // spp-hot: alloc(scoped-thread handles, one per worker)
            for h in handles {
                h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)); // spp-hot: allow(h3-lock): region barrier — scoped join is the batch boundary
            }
        });
        if let Some(m) = tm {
            m.merges.inc();
        }
        let mut tagged = merged.into_inner();
        tagged.sort_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, r)| r).collect() // spp-hot: alloc(index-ordered region result, one slot per job)
    }

    /// Maps `f(index, item)` over `items`, chunked into
    /// `jobs_for_items(items.len(), min_per_job)` even ranges, merged in
    /// index order.
    // spp-hot(pool.par_map)
    pub fn par_map<T, R, F>(&self, items: &[T], min_per_job: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let jobs = self.jobs_for_items(items.len(), min_per_job);
        let ranges = even_ranges(items.len(), jobs);
        let parts = self.run_jobs(ranges.len(), |j| {
            let r = ranges[j].clone(); // spp-hot: alloc(Range<usize> clone is a stack copy; lexical token match only)
            let mut out = Vec::with_capacity(r.len()); // spp-hot: alloc(chunk output buffer, sized once per job)
            for i in r {
                out.push(f(i, &items[i])); // spp-hot: alloc(chunk output slot; capacity reserved above)
            }
            out
        });
        let mut merged = Vec::with_capacity(items.len()); // spp-hot: alloc(final merged output, one slot per item — the map's result)
        for p in parts {
            merged.extend(p); // spp-hot: alloc(index-ordered splice of chunk outputs; capacity reserved above)
        }
        merged
    }

    /// Splits `data` at the element offsets `cuts` (strictly ascending,
    /// last cut = `data.len()`) and runs `f(chunk_index, start_offset,
    /// chunk)` for every piece, at most `workers` at a time. The split is
    /// caller-chosen (see [`even_ranges`] / [`balanced_ranges`]), so the
    /// decomposition is a pure function of the input.
    ///
    /// # Panics
    ///
    /// Panics if `cuts` is not ascending or does not end at `data.len()`.
    pub fn par_chunks<T, F>(&self, data: &mut [T], cuts: &[usize], f: F)
    where
        T: Send,
        F: Fn(usize, usize, &mut [T]) + Sync,
    {
        assert_eq!(
            cuts.last().copied().unwrap_or(0),
            data.len(),
            "last cut must equal data.len()"
        );
        // Carve the slice into disjoint mutable chunks.
        let mut pieces: Vec<(usize, usize, &mut [T])> = Vec::with_capacity(cuts.len()); // spp-hot: alloc(chunk table, one entry per cut)
        let mut rest = data;
        let mut start = 0usize;
        for (ci, &cut) in cuts.iter().enumerate() {
            assert!(cut >= start, "cuts must be ascending");
            let (head, tail) = rest.split_at_mut(cut - start);
            pieces.push((ci, start, head)); // spp-hot: alloc(chunk table entry; capacity reserved above)
            rest = tail;
            start = cut;
        }
        let tm = metrics::enabled().then(pool_metrics);
        if let Some(m) = tm {
            m.regions.inc();
            m.jobs.add(pieces.len() as u64);
            m.queue_depth.set(pieces.len() as u64);
        }
        let _region = tm.map(|m| m.region_ns.time());
        let run = |ci: usize, off: usize, chunk: &mut [T]| {
            let _t = tm.map(|m| m.job_ns.time());
            f(ci, off, chunk);
        };
        let threads = self.workers.min(pieces.len().max(1));
        if threads <= 1 {
            for (ci, off, chunk) in pieces {
                run(ci, off, chunk);
            }
            return;
        }
        if let Some(m) = tm {
            m.threads_forked.add(threads as u64);
        }
        // Deal chunks round-robin (timing-independent assignment).
        let mut per_worker: Vec<Vec<(usize, usize, &mut [T])>> =
            (0..threads).map(|_| Vec::new()).collect(); // spp-hot: alloc(round-robin deal lists, one per worker)
        for (i, piece) in pieces.into_iter().enumerate() {
            per_worker[i % threads].push(piece); // spp-hot: alloc(deal-list entry, bounded by the chunk count)
        }
        let run = &run;
        std::thread::scope(|s| {
            let handles: Vec<_> = per_worker
                .into_iter()
                .map(|chunks| {
                    s.spawn(move || {
                        for (ci, off, chunk) in chunks {
                            run(ci, off, chunk);
                        }
                    })
                })
                .collect(); // spp-hot: alloc(scoped-thread handles, one per worker)
            for h in handles {
                h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)); // spp-hot: allow(h3-lock): region barrier — scoped join is the batch boundary
            }
        });
    }
}

/// `parts` contiguous ranges covering `0..n`, sizes differing by at most
/// one (`n mod parts` leading ranges get the extra item). Pure function
/// of `(n, parts)`.
pub fn even_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts); // spp-hot: alloc(range table, one entry per job)
    let mut start = 0usize;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len); // spp-hot: alloc(range-table entry; capacity reserved above)
        start += len;
    }
    out
}

/// `parts` contiguous ranges covering `0..n`, balanced by a cumulative
/// weight function: `cum(i)` is the total weight of items `0..i`
/// (`cum(0) = 0`, non-decreasing). Boundary `k` is the smallest `i` with
/// `cum(i) ≥ total · k / parts` (binary search), so the split depends
/// only on the weights — never on timing. Ranges may be empty when
/// single items dominate the weight.
pub fn balanced_ranges(n: usize, parts: usize, cum: impl Fn(usize) -> u64) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let total = cum(n);
    if parts == 1 || total == 0 {
        let mut out = Vec::with_capacity(parts);
        out.push(0..n);
        out.extend((1..parts).map(|_| n..n));
        return out;
    }
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for k in 1..=parts {
        let target =
            total / parts as u64 * k as u64 + total % parts as u64 * k as u64 / parts as u64;
        let end = if k == parts {
            n
        } else {
            // Smallest i in [start, n] with cum(i) >= target.
            let (mut lo, mut hi) = (start, n);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if cum(mid) >= target {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            lo
        };
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_ranges_cover_exactly() {
        for n in [0usize, 1, 7, 64, 65] {
            for parts in [1usize, 2, 3, 8] {
                let rs = even_ranges(n, parts);
                assert_eq!(rs.len(), parts);
                assert_eq!(rs[0].start, 0);
                assert_eq!(rs.last().unwrap().end, n);
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let sizes: Vec<usize> = rs.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "{sizes:?}");
            }
        }
    }

    #[test]
    fn balanced_ranges_split_by_weight() {
        // Items 0..10 with weight 2^i concentrated at the tail: the heavy
        // suffix gets its own narrow ranges.
        let w: Vec<u64> = (0..10u32).map(|i| 1u64 << i).collect();
        let cum = |i: usize| w[..i].iter().sum::<u64>();
        let rs = balanced_ranges(10, 4, cum);
        assert_eq!(rs.len(), 4);
        assert_eq!(rs[0].start, 0);
        assert_eq!(rs.last().unwrap().end, 10);
        for win in rs.windows(2) {
            assert_eq!(win[0].end, win[1].start);
        }
        // The last range must be short (heaviest items).
        assert!(rs.last().unwrap().len() <= 2, "{rs:?}");
        // Deterministic: same input, same split.
        assert_eq!(rs, balanced_ranges(10, 4, cum));
    }

    #[test]
    fn balanced_ranges_zero_weight_degenerates_to_one_range() {
        let rs = balanced_ranges(5, 3, |_| 0);
        assert_eq!(rs[0], 0..5);
        assert!(rs[1..].iter().all(|r| r.is_empty()));
    }

    #[test]
    fn run_jobs_results_in_index_order() {
        for workers in [1usize, 2, 3, 8] {
            let pool = WorkerPool::new(workers);
            let out = pool.run_jobs(13, |i| i * 3);
            assert_eq!(out, (0..13).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1usize, 2, 8] {
            let got = WorkerPool::new(workers).par_map(&items, 1, |_, &x| x * x);
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn par_chunks_writes_every_chunk_once() {
        let mut data = vec![0u32; 20];
        let cuts = vec![5usize, 5, 12, 20]; // includes an empty chunk
        WorkerPool::new(3).par_chunks(&mut data, &cuts, |ci, off, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 100 + off + j) as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            let ci = match i {
                0..=4 => 0,
                5..=11 => 2,
                _ => 3,
            };
            assert_eq!(v, (ci * 100 + i) as u32, "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "last cut must equal data.len()")]
    fn par_chunks_rejects_short_cuts() {
        let mut data = vec![0u8; 4];
        WorkerPool::serial().par_chunks(&mut data, &[2], |_, _, _| {});
    }

    #[test]
    fn sizing_policy_clamps_to_budget() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.jobs_for_cost(0), 1);
        assert_eq!(pool.jobs_for_cost(MIN_COST_PER_JOB - 1), 1);
        assert_eq!(pool.jobs_for_cost(2 * MIN_COST_PER_JOB), 2);
        assert_eq!(pool.jobs_for_cost(100 * MIN_COST_PER_JOB), 4);
        assert_eq!(pool.jobs_for_items(100, 10), 4);
        assert_eq!(pool.jobs_for_items(15, 10), 1);
    }

    #[test]
    fn split_keeps_combined_budget() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.split(2).workers(), 4);
        assert_eq!(pool.split(3).workers(), 2);
        assert_eq!(pool.split(100).workers(), 1);
        assert_eq!(pool.split(0).workers(), 8);
    }

    #[test]
    fn zero_jobs_is_empty() {
        assert!(WorkerPool::new(4).run_jobs(0, |i| i).is_empty());
    }

    #[test]
    fn global_pool_has_at_least_one_worker() {
        assert!(WorkerPool::global().workers() >= 1);
    }
}
