//! Classification metrics.

use spp_tensor::Matrix;

/// Argmax predictions for a logits matrix, one per row.
pub fn predictions(logits: &Matrix) -> Vec<u32> {
    (0..logits.rows())
        .map(|i| {
            let row = logits.row(i);
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            best as u32
        })
        .collect()
}

/// Fraction of predictions matching labels.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(preds: &[u32], labels: &[u32]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "length mismatch");
    if preds.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / preds.len() as f64
}

/// Streaming accuracy accumulator for minibatch inference.
#[derive(Clone, Copy, Debug, Default)]
pub struct AccuracyMeter {
    correct: usize,
    total: usize,
}

impl AccuracyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one batch of predictions.
    pub fn update(&mut self, preds: &[u32], labels: &[u32]) {
        assert_eq!(preds.len(), labels.len(), "length mismatch");
        self.correct += preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        self.total += preds.len();
    }

    /// Accuracy so far (0 if nothing recorded).
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_predictions() {
        let logits = Matrix::from_rows(&[&[0.1, 0.9], &[2.0, -1.0]]);
        assert_eq!(predictions(&logits), vec![1, 0]);
    }

    #[test]
    fn accuracy_half() {
        assert_eq!(accuracy(&[1, 0], &[1, 1]), 0.5);
    }

    #[test]
    fn accuracy_empty_is_zero() {
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn meter_accumulates() {
        let mut m = AccuracyMeter::new();
        m.update(&[1, 1], &[1, 0]);
        m.update(&[2], &[2]);
        assert_eq!(m.count(), 3);
        assert!((m.value() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ties_pick_first() {
        let logits = Matrix::from_rows(&[&[0.5, 0.5]]);
        assert_eq!(predictions(&logits), vec![0]);
    }
}
