//! Single-machine minibatch training and inference.
//!
//! This is the reference (non-distributed) training loop: the distributed
//! engine in `spp-runtime` must produce the same gathered features and
//! gradients; integration tests compare against this implementation.

use crate::metrics::{predictions, AccuracyMeter};
use crate::{Arch, GnnModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_graph::{Dataset, VertexId};
use spp_pool::WorkerPool;
use spp_sampler::{batch_stream_seed, Fanouts, Mfg, MinibatchIter, NodeWiseSampler};
use spp_store::FeatureStore;
use spp_tensor::{Adam, Matrix, Optimizer};
use std::sync::Arc;

/// Salt separating the model's dropout RNG stream from the sampler's
/// stream for the same `(seed, epoch, batch)`. Shared with the
/// distributed engine so both trainers derive streams identically.
pub const MODEL_STREAM_SALT: u64 = 0x6D6F_6465_6C5F_7267;

/// Hyperparameters for one training run. Defaults mirror the paper's
/// Table 3 (3-layer GraphSAGE, hidden 256, fanouts (15,10,5), batch 1024,
/// Adam at 0.001) scaled to the mini datasets.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Architecture (the paper evaluates GraphSAGE).
    pub arch: Arch,
    /// Hidden-layer width.
    pub hidden_dim: usize,
    /// Training fanouts; their count sets the number of GNN layers.
    pub fanouts: Fanouts,
    /// Inference fanouts (the paper uses (20,20,20) for products/papers).
    pub eval_fanouts: Fanouts,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Number of training epochs.
    pub epochs: usize,
    /// Dropout probability between layers.
    pub dropout: f32,
    /// Master seed for init, shuffling, and sampling.
    pub seed: u64,
    /// Worker budget for minibatch preparation (`None` = the global
    /// pool). Any value produces identical sampled batches and loss
    /// curves — each batch's RNG stream is derived from
    /// `(seed, epoch, batch)`, never from which worker prepared it.
    pub workers: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            arch: Arch::Sage,
            hidden_dim: 64,
            fanouts: Fanouts::new(vec![15, 10, 5]),
            eval_fanouts: Fanouts::new(vec![20, 20, 20]),
            batch_size: 1024,
            lr: 0.001,
            epochs: 10,
            dropout: 0.0,
            seed: 0,
            workers: None,
        }
    }
}

/// Loss statistics for one epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean minibatch loss.
    pub loss: f64,
    /// Number of minibatches.
    pub batches: usize,
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Per-epoch loss curve.
    pub epochs: Vec<EpochStats>,
    /// Final validation accuracy (minibatch inference).
    pub val_accuracy: f64,
    /// Final test accuracy (minibatch inference).
    pub test_accuracy: f64,
}

/// Trains a [`GnnModel`] on a [`Dataset`] with node-wise sampling.
///
/// # Example
///
/// ```
/// use spp_gnn::{Trainer, TrainConfig, Arch};
/// use spp_graph::dataset::SyntheticSpec;
/// use spp_sampler::Fanouts;
///
/// let ds = SyntheticSpec::new("tiny", 300, 8.0, 8, 3)
///     .split_fractions(0.3, 0.2, 0.2).seed(1).build();
/// let cfg = TrainConfig {
///     hidden_dim: 16,
///     fanouts: Fanouts::new(vec![5, 5]),
///     eval_fanouts: Fanouts::new(vec![5, 5]),
///     batch_size: 32,
///     lr: 0.01,
///     epochs: 2,
///     ..TrainConfig::default()
/// };
/// let mut t = Trainer::new(&ds, cfg);
/// let report = t.train();
/// assert_eq!(report.epochs.len(), 2);
/// ```
pub struct Trainer<'a> {
    ds: &'a Dataset,
    cfg: TrainConfig,
    model: GnnModel,
    /// Optional out-of-core feature source. When set, batch feature
    /// gathers read rows through this store instead of `ds.features`;
    /// the in-RAM matrix remains the source of truth for dimensions and
    /// full-batch inference. An f32 store yields bit-identical training.
    store: Option<&'a dyn FeatureStore>,
}

impl<'a> Trainer<'a> {
    /// Builds a trainer; model dims are
    /// `[feature_dim, hidden × (L-1), num_classes]`.
    pub fn new(ds: &'a Dataset, cfg: TrainConfig) -> Self {
        let l = cfg.fanouts.num_hops();
        let mut dims = vec![ds.features.dim()];
        dims.extend(std::iter::repeat_n(cfg.hidden_dim, l - 1));
        dims.push(ds.num_classes);
        let model = GnnModel::new(cfg.arch, &dims, cfg.seed).with_dropout(cfg.dropout);
        Self {
            ds,
            cfg,
            model,
            store: None,
        }
    }

    /// Reads minibatch features through `store` instead of the dataset's
    /// resident matrix (the out-of-core training path, DESIGN.md §16).
    /// The store must be addressed by the same vertex ids as the dataset.
    ///
    /// # Panics
    ///
    /// Panics if the store's shape disagrees with the dataset's features.
    pub fn with_feature_store(mut self, store: &'a dyn FeatureStore) -> Self {
        assert_eq!(
            store.num_rows(),
            self.ds.features.num_rows(),
            "feature store row count must match the dataset"
        );
        assert_eq!(
            store.dim(),
            self.ds.features.dim(),
            "feature store dim must match the dataset"
        );
        self.store = Some(store);
        self
    }

    /// The model (e.g. for inspection after training).
    pub fn model(&self) -> &GnnModel {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Gathers feature rows for an MFG's node list into a dense matrix.
    pub fn gather_features(ds: &Dataset, mfg: &Mfg) -> Matrix {
        Self::gather_features_from(&ds.features, mfg)
    }

    /// [`Trainer::gather_features`] reading rows through any
    /// [`FeatureStore`]. For a resident f32 matrix this produces the
    /// exact bytes of the historical gather path.
    pub fn gather_features_from(feats: &dyn FeatureStore, mfg: &Mfg) -> Matrix {
        let dim = feats.dim();
        let mut flat = vec![0.0f32; mfg.num_nodes() * dim];
        for (i, &v) in mfg.nodes.iter().enumerate() {
            feats.read_row_into(v, &mut flat[i * dim..(i + 1) * dim]);
        }
        Matrix::from_flat(mfg.num_nodes(), dim, flat)
    }

    /// Runs the full training loop, then evaluates on val and test.
    pub fn train(&mut self) -> TrainReport {
        let mut opt = Adam::new(self.cfg.lr);
        let mut epochs = Vec::with_capacity(self.cfg.epochs);
        for epoch in 0..self.cfg.epochs {
            let stats = self.train_epoch(&mut opt, epoch as u64);
            epochs.push(EpochStats { epoch, ..stats });
        }
        let val_accuracy = self.evaluate(&self.ds.split.val, 10_007);
        let test_accuracy = self.evaluate(&self.ds.split.test, 10_009);
        TrainReport {
            epochs,
            val_accuracy,
            test_accuracy,
        }
    }

    /// The worker pool used for minibatch preparation.
    fn pool(&self) -> WorkerPool {
        self.cfg
            .workers
            .map_or_else(WorkerPool::global, WorkerPool::new)
    }

    /// Samples one minibatch's MFG and gathers its features and labels —
    /// the preparation work that runs concurrently across batches. The
    /// RNG stream is a pure function of `(seed, epoch, batch_idx)`, so
    /// the output does not depend on which worker runs this or when.
    fn prepare_batch(
        ds: &Dataset,
        feats: &dyn FeatureStore,
        sampler: &NodeWiseSampler<'_>,
        seed: u64,
        epoch: u64,
        batch_idx: u64,
        batch: &[VertexId],
    ) -> (Mfg, Matrix, Arc<Vec<u32>>) {
        let mut rng = StdRng::seed_from_u64(batch_stream_seed(seed, epoch, batch_idx));
        let mfg = sampler.sample(batch, &mut rng);
        let x = Self::gather_features_from(feats, &mfg);
        let labels: Arc<Vec<u32>> =
            Arc::new(mfg.seeds().iter().map(|&v| ds.labels[v as usize]).collect());
        (mfg, x, labels)
    }

    /// Runs one epoch of minibatch SGD; returns loss stats.
    ///
    /// Batch preparation (sampling + feature gathering) runs on the
    /// worker pool in waves while the model update for each batch stays
    /// sequential — SALIENT's batch-preparation parallelism. The wave
    /// decomposition is a pure function of the batch count, and each
    /// batch's sampling and dropout RNG streams are derived from
    /// `(seed, epoch, batch)`, so loss curves are identical for every
    /// pool size.
    // spp-det(gnn.train_epoch)
    pub fn train_epoch(&mut self, opt: &mut Adam, epoch: u64) -> EpochStats {
        let sampler = NodeWiseSampler::new(&self.ds.graph, self.cfg.fanouts.clone());
        let pool = self.pool();
        let batch_list: Vec<Vec<VertexId>> = MinibatchIter::new(
            &self.ds.split.train,
            self.cfg.batch_size,
            self.cfg.seed,
            epoch,
        )
        .collect();
        let ds = self.ds;
        let feats: &dyn FeatureStore = self.store.unwrap_or(&self.ds.features);
        feats.begin_epoch();
        let seed = self.cfg.seed;
        let mut total_loss = 0.0f64;
        let mut batches = 0usize;
        // Prepare one wave of batches ahead of the sequential model
        // updates; wave size = worker budget keeps at most one wave of
        // MFGs and gathered features resident.
        let _epoch_span = spp_telemetry::span!("gnn.trainer.epoch");
        let batches_counter = spp_telemetry::metrics::counter("gnn.trainer.batches");
        for (wave_idx, wave) in batch_list.chunks(pool.workers().max(1)).enumerate() {
            let base = wave_idx * pool.workers().max(1);
            let prepped = {
                let _prep = spp_telemetry::span!("gnn.trainer.wave_prep");
                pool.run_jobs(wave.len(), |j| {
                    Self::prepare_batch(
                        ds,
                        feats,
                        &sampler,
                        seed,
                        epoch,
                        (base + j) as u64,
                        &wave[j],
                    )
                })
            };
            let _update = spp_telemetry::span!("gnn.trainer.wave_update");
            batches_counter.add(prepped.len() as u64);
            for (j, (mfg, x, labels)) in prepped.into_iter().enumerate() {
                let mut model_rng = StdRng::seed_from_u64(batch_stream_seed(
                    seed ^ MODEL_STREAM_SALT,
                    epoch,
                    (base + j) as u64,
                ));
                let mut fwd = self.model.forward(x, &mfg, true, &mut model_rng);
                let loss = fwd.tape.softmax_cross_entropy(fwd.logits, labels);
                total_loss += fwd.tape.value(loss).get(0, 0) as f64;
                fwd.tape.backward(loss);
                self.model.accumulate_grads(&fwd);
                let mut params = self.model.params_mut();
                opt.step(&mut params);
                batches += 1;
            }
        }
        EpochStats {
            epoch: epoch as usize,
            loss: if batches > 0 {
                total_loss / batches as f64
            } else {
                0.0
            },
            batches,
        }
    }

    /// Full-batch (no-sampling) inference accuracy over `ids`: one
    /// layer-wise forward pass over the whole graph, then argmax on the
    /// requested vertices. Deterministic — the paper's §2.4 alternative
    /// to sampled minibatch inference.
    pub fn evaluate_full_batch(&self, ids: &[VertexId]) -> f64 {
        if ids.is_empty() {
            return 0.0;
        }
        let ds = self.ds;
        let x = Matrix::from_flat(
            ds.features.num_rows(),
            ds.features.dim(),
            ds.features.as_flat().to_vec(),
        );
        let logits = self.model.forward_full_batch(x, &ds.graph);
        let preds = predictions(&logits);
        let mut meter = AccuracyMeter::new();
        let labels: Vec<u32> = ids.iter().map(|&v| ds.labels[v as usize]).collect();
        let sel: Vec<u32> = ids.iter().map(|&v| preds[v as usize]).collect();
        meter.update(&sel, &labels);
        meter.value()
    }

    /// Minibatch inference accuracy over `ids` using the eval fanouts.
    ///
    /// Inference batches are independent (no parameter updates), so the
    /// whole evaluation fans out on the pool; per-batch RNG streams make
    /// the result identical for any worker count.
    pub fn evaluate(&self, ids: &[VertexId], seed: u64) -> f64 {
        let sampler = NodeWiseSampler::new(&self.ds.graph, self.cfg.eval_fanouts.clone());
        let batch_list: Vec<Vec<VertexId>> =
            MinibatchIter::new(ids, self.cfg.batch_size, seed, 0).collect();
        let ds = self.ds;
        let feats: &dyn FeatureStore = self.store.unwrap_or(&self.ds.features);
        let model = &self.model;
        let per_batch = self.pool().run_jobs(batch_list.len(), |b| {
            let mut rng = StdRng::seed_from_u64(batch_stream_seed(seed, 0, b as u64));
            let mfg = sampler.sample(&batch_list[b], &mut rng);
            let x = Self::gather_features_from(feats, &mfg);
            let fwd = model.forward(x, &mfg, false, &mut rng);
            let preds = predictions(fwd.logits_value());
            let labels: Vec<u32> = mfg.seeds().iter().map(|&v| ds.labels[v as usize]).collect();
            (preds, labels)
        });
        let mut meter = AccuracyMeter::new();
        for (preds, labels) in &per_batch {
            meter.update(preds, labels);
        }
        meter.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_graph::dataset::SyntheticSpec;

    fn tiny_config(epochs: usize) -> TrainConfig {
        TrainConfig {
            hidden_dim: 16,
            fanouts: Fanouts::new(vec![5, 5]),
            eval_fanouts: Fanouts::new(vec![8, 8]),
            batch_size: 32,
            lr: 0.01,
            epochs,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let ds = SyntheticSpec::new("t", 400, 10.0, 8, 4)
            .split_fractions(0.4, 0.1, 0.1)
            .feature_signal(1.5)
            .seed(2)
            .build();
        let mut t = Trainer::new(&ds, tiny_config(5));
        let report = t.train();
        let first = report.epochs.first().unwrap().loss;
        let last = report.epochs.last().unwrap().loss;
        assert!(last < first, "loss {first} -> {last} did not decrease");
    }

    #[test]
    fn learns_separable_classes() {
        let ds = SyntheticSpec::new("t", 600, 12.0, 16, 3)
            .split_fractions(0.5, 0.2, 0.2)
            .feature_signal(2.0)
            .homophily(0.9)
            .seed(3)
            .build();
        let mut t = Trainer::new(&ds, tiny_config(8));
        let report = t.train();
        assert!(
            report.test_accuracy > 0.8,
            "test accuracy {} too low for an easy dataset",
            report.test_accuracy
        );
    }

    #[test]
    fn full_batch_inference_agrees_with_sampled() {
        // The paper (following SALIENT) argues sampled inference with
        // reasonable fanouts matches full-batch accuracy.
        let ds = SyntheticSpec::new("t", 500, 10.0, 12, 3)
            .split_fractions(0.4, 0.2, 0.2)
            .feature_signal(2.0)
            .homophily(0.9)
            .seed(6)
            .build();
        let mut t = Trainer::new(&ds, tiny_config(6));
        let report = t.train();
        let full = t.evaluate_full_batch(&ds.split.test);
        assert!(
            (full - report.test_accuracy).abs() < 0.08,
            "full-batch {full:.3} vs sampled {:.3}",
            report.test_accuracy
        );
        assert!(full > 0.8, "full-batch accuracy {full:.3}");
    }

    #[test]
    fn deterministic_training() {
        let ds = SyntheticSpec::new("t", 300, 8.0, 8, 3)
            .split_fractions(0.3, 0.2, 0.2)
            .seed(4)
            .build();
        let r1 = Trainer::new(&ds, tiny_config(2)).train();
        let r2 = Trainer::new(&ds, tiny_config(2)).train();
        assert_eq!(r1.epochs, r2.epochs);
        assert_eq!(r1.test_accuracy, r2.test_accuracy);
    }

    #[test]
    fn loss_curve_identical_across_pool_sizes() {
        // Dropout on, so the model RNG stream is actually consumed: if
        // prep parallelism leaked into either the sampling or dropout
        // streams, the loss trajectories would diverge.
        let ds = SyntheticSpec::new("t", 400, 10.0, 8, 4)
            .split_fractions(0.4, 0.2, 0.2)
            .feature_signal(1.5)
            .seed(9)
            .build();
        let run = |workers: usize| {
            let cfg = TrainConfig {
                dropout: 0.3,
                workers: Some(workers),
                ..tiny_config(3)
            };
            Trainer::new(&ds, cfg).train()
        };
        let reference = run(1);
        assert!(reference.epochs.iter().all(|e| e.loss.is_finite()));
        for workers in [2usize, 8] {
            let got = run(workers);
            assert_eq!(reference.epochs, got.epochs, "workers={workers}");
            assert_eq!(reference.val_accuracy, got.val_accuracy);
            assert_eq!(reference.test_accuracy, got.test_accuracy);
        }
    }

    #[test]
    fn evaluate_on_empty_ids_is_zero() {
        let ds = SyntheticSpec::new("t", 100, 6.0, 4, 2).seed(5).build();
        let t = Trainer::new(&ds, tiny_config(1));
        assert_eq!(t.evaluate(&[], 0), 0.0);
    }
}
