//! GNN architectures over message-flow graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spp_sampler::{HopAdj, Mfg};
use spp_tensor::tape::{AggMode, CsrAdj};
use spp_tensor::{init, Matrix, NodeId, Param, Tape};
use std::sync::Arc;

/// Which message-passing architecture to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arch {
    /// GraphSAGE with mean aggregation and concatenation update
    /// (Hamilton et al., 2017) — the paper's evaluation architecture.
    Sage,
    /// GraphSAGE with the max-pooling aggregator: neighbors pass through
    /// a learned transform + ReLU, then element-wise max (Hamilton et
    /// al., 2017, §2.1 of the paper lists mean/LSTM/pooling variants).
    SagePool,
    /// Graph isomorphism network: sum aggregation + MLP update
    /// (Xu et al., 2019).
    Gin,
    /// Single-head graph attention network (Veličković et al., 2018).
    Gat,
    /// Multi-head GAT: the layer output concatenates `N` attention heads
    /// of width `out/N` each.
    ///
    /// Layer widths must be divisible by the head count.
    GatMultiHead(usize),
}

/// One GNN layer's parameters.
#[derive(Debug)]
enum Layer {
    Sage {
        w_self: Param,
        w_neigh: Param,
        bias: Param,
    },
    SagePool {
        w_pool: Param,
        b_pool: Param,
        w_self: Param,
        w_neigh: Param,
        bias: Param,
    },
    Gin {
        w1: Param,
        b1: Param,
        w2: Param,
        b2: Param,
    },
    Gat {
        w: Param,
        a_target: Param,
        a_source: Param,
        bias: Param,
    },
    GatMultiHead {
        heads: Vec<(Param, Param, Param)>,
        bias: Param,
        /// Average head outputs instead of concatenating (used when the
        /// layer width is not divisible by the head count — standard GAT
        /// practice for output layers).
        average: bool,
    },
}

impl Layer {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            Layer::Sage {
                w_self,
                w_neigh,
                bias,
            } => vec![w_self, w_neigh, bias],
            Layer::SagePool {
                w_pool,
                b_pool,
                w_self,
                w_neigh,
                bias,
            } => vec![w_pool, b_pool, w_self, w_neigh, bias],
            Layer::Gin { w1, b1, w2, b2 } => vec![w1, b1, w2, b2],
            Layer::Gat {
                w,
                a_target,
                a_source,
                bias,
            } => vec![w, a_target, a_source, bias],
            Layer::GatMultiHead { heads, bias, .. } => {
                let mut ps: Vec<&mut Param> = Vec::with_capacity(heads.len() * 3 + 1);
                for (w, at, asrc) in heads {
                    ps.push(w);
                    ps.push(at);
                    ps.push(asrc);
                }
                ps.push(bias);
                ps
            }
        }
    }
}

/// Converts a sampled hop adjacency into the tape's CSR view.
fn to_csr_adj(hop: &HopAdj) -> Arc<CsrAdj> {
    Arc::new(CsrAdj {
        num_targets: hop.num_targets,
        num_sources: hop.num_sources,
        row_ptr: hop.row_ptr.clone(),
        col: hop.col.clone(),
    })
}

/// Like [`to_csr_adj`] but with a self-loop prepended to every target's
/// neighbor list (GAT attends over `{v} ∪ N(v)`).
fn to_csr_adj_with_self(hop: &HopAdj) -> Arc<CsrAdj> {
    let mut row_ptr = Vec::with_capacity(hop.num_targets + 1);
    let mut col = Vec::with_capacity(hop.col.len() + hop.num_targets);
    row_ptr.push(0usize);
    for t in 0..hop.num_targets {
        col.push(t as u32);
        col.extend_from_slice(hop.neighbors(t));
        row_ptr.push(col.len());
    }
    Arc::new(CsrAdj {
        num_targets: hop.num_targets,
        num_sources: hop.num_sources,
        row_ptr,
        col,
    })
}

/// The result of one forward pass: the tape, the logits node, and the
/// parameter leaf nodes (aligned with [`GnnModel::params_mut`]) so
/// gradients can be pulled back into the model.
pub struct Forward {
    /// The autograd tape holding the whole forward computation.
    pub tape: Tape,
    /// Seed-vertex logits node.
    pub logits: NodeId,
    /// Leaf node per parameter, in [`GnnModel::params_mut`] order.
    pub param_nodes: Vec<NodeId>,
}

impl Forward {
    /// The logits matrix (`num_seeds × num_classes`).
    pub fn logits_value(&self) -> &Matrix {
        self.tape.value(self.logits)
    }
}

/// A multi-layer GNN.
///
/// `dims` is `[input_dim, hidden..., num_classes]`; the number of layers
/// is `dims.len() - 1` and must match the sampling fanout depth of the
/// MFGs passed to [`GnnModel::forward`].
#[derive(Debug)]
pub struct GnnModel {
    arch: Arch,
    layers: Vec<Layer>,
    dims: Vec<usize>,
    dropout: f32,
}

impl GnnModel {
    /// Builds a model with Glorot-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if `dims` has fewer than two entries.
    pub fn new(arch: Arch, dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = (0..dims.len() - 1)
            .map(|l| {
                let (din, dout) = (dims[l], dims[l + 1]);
                match arch {
                    Arch::Sage => Layer::Sage {
                        w_self: Param::new(init::glorot_uniform(din, dout, &mut rng)),
                        w_neigh: Param::new(init::glorot_uniform(din, dout, &mut rng)),
                        bias: Param::new(init::zeros_bias(dout)),
                    },
                    Arch::SagePool => Layer::SagePool {
                        w_pool: Param::new(init::kaiming_uniform(din, din, &mut rng)),
                        b_pool: Param::new(init::zeros_bias(din)),
                        w_self: Param::new(init::glorot_uniform(din, dout, &mut rng)),
                        w_neigh: Param::new(init::glorot_uniform(din, dout, &mut rng)),
                        bias: Param::new(init::zeros_bias(dout)),
                    },
                    Arch::Gin => Layer::Gin {
                        w1: Param::new(init::glorot_uniform(din, dout, &mut rng)),
                        b1: Param::new(init::zeros_bias(dout)),
                        w2: Param::new(init::glorot_uniform(dout, dout, &mut rng)),
                        b2: Param::new(init::zeros_bias(dout)),
                    },
                    Arch::Gat => Layer::Gat {
                        w: Param::new(init::glorot_uniform(din, dout, &mut rng)),
                        a_target: Param::new(init::glorot_uniform(dout, 1, &mut rng)),
                        a_source: Param::new(init::glorot_uniform(dout, 1, &mut rng)),
                        bias: Param::new(init::zeros_bias(dout)),
                    },
                    Arch::GatMultiHead(h) => {
                        assert!(h > 0, "need at least one attention head");
                        // Concatenate heads of width dout/h when the width
                        // divides evenly; otherwise (typically the output
                        // layer) average full-width heads, as in GAT.
                        let average = dout % h != 0;
                        let hd = if average { dout } else { dout / h };
                        Layer::GatMultiHead {
                            heads: (0..h)
                                .map(|_| {
                                    (
                                        Param::new(init::glorot_uniform(din, hd, &mut rng)),
                                        Param::new(init::glorot_uniform(hd, 1, &mut rng)),
                                        Param::new(init::glorot_uniform(hd, 1, &mut rng)),
                                    )
                                })
                                .collect(),
                            bias: Param::new(init::zeros_bias(dout)),
                            average,
                        }
                    }
                }
            })
            .collect();
        Self {
            arch,
            layers,
            dims: dims.to_vec(),
            dropout: 0.0,
        }
    }

    /// Sets the dropout probability applied between layers during training.
    pub fn with_dropout(mut self, p: f32) -> Self {
        self.dropout = p;
        self
    }

    /// The architecture.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// Number of GNN layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer dimensions `[in, hidden..., classes]`.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Mutable access to all parameters, layer by layer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Total number of scalar parameters.
    pub fn num_parameters(&mut self) -> usize {
        self.params_mut()
            .iter()
            .map(|p| p.value.as_flat().len())
            .sum()
    }

    /// Runs the forward pass for one minibatch.
    ///
    /// `x` must have one row per MFG node (`mfg.num_nodes()` rows) in MFG
    /// local order, with `dims[0]` columns. Returns the tape, the
    /// seed-logits node, and parameter leaf handles.
    ///
    /// # Panics
    ///
    /// Panics if the MFG depth does not match the layer count or `x` has
    /// the wrong shape.
    pub fn forward<R: Rng>(&self, x: Matrix, mfg: &Mfg, train: bool, rng: &mut R) -> Forward {
        assert_eq!(
            mfg.num_hops(),
            self.layers.len(),
            "MFG depth != layer count"
        );
        assert_eq!(x.rows(), mfg.num_nodes(), "feature row count mismatch");
        assert_eq!(x.cols(), self.dims[0], "feature dim mismatch");

        let mut tape = Tape::new();
        let mut param_nodes = Vec::new();
        let mut h = tape.input(x);
        let num_layers = self.layers.len();
        for (li, layer) in self.layers.iter().enumerate() {
            let hop = mfg.layer_adj(li + 1);
            h = match layer {
                Layer::Sage {
                    w_self,
                    w_neigh,
                    bias,
                } => {
                    let adj = to_csr_adj(hop);
                    let wsn = tape.input(w_self.value.clone());
                    let wnn = tape.input(w_neigh.value.clone());
                    let bn = tape.input(bias.value.clone());
                    param_nodes.extend([wsn, wnn, bn]);
                    let neigh = tape.sparse_agg(h, adj, AggMode::Mean);
                    let own = tape.head_rows(h, hop.num_targets);
                    let a = tape.matmul(own, wsn);
                    let b = tape.matmul(neigh, wnn);
                    let s = tape.add(a, b);
                    tape.add_bias(s, bn)
                }
                Layer::SagePool {
                    w_pool,
                    b_pool,
                    w_self,
                    w_neigh,
                    bias,
                } => {
                    let adj = to_csr_adj(hop);
                    let wpn = tape.input(w_pool.value.clone());
                    let bpn = tape.input(b_pool.value.clone());
                    let wsn = tape.input(w_self.value.clone());
                    let wnn = tape.input(w_neigh.value.clone());
                    let bn = tape.input(bias.value.clone());
                    param_nodes.extend([wpn, bpn, wsn, wnn, bn]);
                    let pooled_lin = tape.matmul(h, wpn);
                    let pooled_b = tape.add_bias(pooled_lin, bpn);
                    let pooled = tape.relu(pooled_b);
                    let neigh = tape.sparse_agg(pooled, adj, AggMode::Max);
                    let own = tape.head_rows(h, hop.num_targets);
                    let a = tape.matmul(own, wsn);
                    let b = tape.matmul(neigh, wnn);
                    let s = tape.add(a, b);
                    tape.add_bias(s, bn)
                }
                Layer::Gin { w1, b1, w2, b2 } => {
                    let adj = to_csr_adj(hop);
                    let w1n = tape.input(w1.value.clone());
                    let b1n = tape.input(b1.value.clone());
                    let w2n = tape.input(w2.value.clone());
                    let b2n = tape.input(b2.value.clone());
                    param_nodes.extend([w1n, b1n, w2n, b2n]);
                    let agg = tape.sparse_agg(h, adj, AggMode::Sum);
                    let own = tape.head_rows(h, hop.num_targets);
                    let s = tape.add(own, agg);
                    let l1 = tape.matmul(s, w1n);
                    let l1b = tape.add_bias(l1, b1n);
                    let a = tape.relu(l1b);
                    let l2 = tape.matmul(a, w2n);
                    tape.add_bias(l2, b2n)
                }
                Layer::GatMultiHead {
                    heads,
                    bias,
                    average,
                } => {
                    let adj = to_csr_adj_with_self(hop);
                    let mut head_outs = Vec::with_capacity(heads.len());
                    for (w, a_target, a_source) in heads {
                        let wn = tape.input(w.value.clone());
                        let atn = tape.input(a_target.value.clone());
                        let asn = tape.input(a_source.value.clone());
                        param_nodes.extend([wn, atn, asn]);
                        let wh = tape.matmul(h, wn);
                        let tgt = tape.matmul(wh, atn);
                        let src = tape.matmul(wh, asn);
                        let e = tape.edge_scores(tgt, src, Arc::clone(&adj));
                        let el = tape.leaky_relu(e, 0.2);
                        let alpha = tape.edge_softmax(el, Arc::clone(&adj));
                        head_outs.push(tape.weighted_agg(alpha, wh, Arc::clone(&adj)));
                    }
                    let bn = tape.input(bias.value.clone());
                    let mut combined = head_outs[0];
                    if *average {
                        for &ho in &head_outs[1..] {
                            combined = tape.add(combined, ho);
                        }
                        combined = tape.scale(combined, 1.0 / heads.len() as f32);
                    } else {
                        for &ho in &head_outs[1..] {
                            combined = tape.concat_cols(combined, ho);
                        }
                    }
                    param_nodes.push(bn);
                    tape.add_bias(combined, bn)
                }
                Layer::Gat {
                    w,
                    a_target,
                    a_source,
                    bias,
                } => {
                    let adj = to_csr_adj_with_self(hop);
                    let wn = tape.input(w.value.clone());
                    let atn = tape.input(a_target.value.clone());
                    let asn = tape.input(a_source.value.clone());
                    let bn = tape.input(bias.value.clone());
                    param_nodes.extend([wn, atn, asn, bn]);
                    let wh = tape.matmul(h, wn);
                    let tgt_scores = tape.matmul(wh, atn);
                    let src_scores = tape.matmul(wh, asn);
                    let e = tape.edge_scores(tgt_scores, src_scores, Arc::clone(&adj));
                    let el = tape.leaky_relu(e, 0.2);
                    let alpha = tape.edge_softmax(el, Arc::clone(&adj));
                    let agg = tape.weighted_agg(alpha, wh, adj);
                    tape.add_bias(agg, bn)
                }
            };
            if li + 1 < num_layers {
                h = tape.relu(h);
                if train && self.dropout > 0.0 {
                    h = tape.dropout(h, self.dropout, rng);
                }
            }
        }

        Forward {
            tape,
            logits: h,
            param_nodes,
        }
    }

    /// Inference forward pass over a sampled MFG: evaluation mode (no
    /// dropout), so no RNG stream is consumed and the logits are a pure
    /// function of `(x, mfg, parameters)` — the entry point the online
    /// serving subsystem uses per micro-batch.
    ///
    /// # Panics
    ///
    /// Panics on the same shape mismatches as [`GnnModel::forward`].
    pub fn infer(&self, x: Matrix, mfg: &Mfg) -> Matrix {
        let mut rng = StdRng::seed_from_u64(0); // eval mode: rng unused
        let fwd = self.forward(x, mfg, false, &mut rng);
        fwd.logits_value().clone()
    }

    /// Full-batch (no-sampling) forward pass over an entire graph:
    /// layer-by-layer propagation using every vertex's *full* neighbor
    /// list, the alternative inference mode the paper contrasts with
    /// minibatch inference (§2.4). Returns the logits for all vertices.
    ///
    /// Memory is `O(N × max(dims))`; intended for the mini-scale datasets.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have one row per graph vertex with
    /// `dims[0]` columns.
    pub fn forward_full_batch(&self, x: Matrix, graph: &spp_graph::CsrGraph) -> Matrix {
        assert_eq!(x.rows(), graph.num_vertices(), "one row per vertex");
        assert_eq!(x.cols(), self.dims[0], "feature dim mismatch");
        // A full-graph "hop": every vertex aggregates all its neighbors.
        let full = HopAdj {
            num_targets: graph.num_vertices(),
            num_sources: graph.num_vertices(),
            row_ptr: graph.row_ptr().to_vec(),
            col: graph.col().to_vec(),
        };
        // Reuse the sampled-forward machinery with an L-layer MFG whose
        // every hop is the full adjacency.
        let mfg = Mfg {
            nodes: (0..graph.num_vertices() as u32).collect(),
            sizes: vec![graph.num_vertices(); self.layers.len() + 1],
            hops: vec![full; self.layers.len()],
        };
        let mut rng = StdRng::seed_from_u64(0); // eval mode: rng unused
        let fwd = self.forward(x, &mfg, false, &mut rng);
        fwd.logits_value().clone()
    }

    /// Pulls gradients from a completed backward pass into the model's
    /// parameter accumulators.
    ///
    /// # Panics
    ///
    /// Panics if `fwd` did not come from this model's [`GnnModel::forward`].
    pub fn accumulate_grads(&mut self, fwd: &Forward) {
        let params = self.params_mut();
        assert_eq!(
            params.len(),
            fwd.param_nodes.len(),
            "forward/model mismatch"
        );
        for (p, &node) in params.into_iter().zip(&fwd.param_nodes) {
            if let Some(g) = fwd.tape.grad(node) {
                p.accumulate(g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_graph::generate::ring_with_chords;
    use spp_sampler::{Fanouts, NodeWiseSampler};
    use spp_tensor::{Adam, Optimizer};
    use std::sync::Arc as StdArc;

    fn setup(arch: Arch) -> (GnnModel, Mfg, Matrix) {
        let g = ring_with_chords(64, 7);
        let sampler = NodeWiseSampler::new(&g, Fanouts::new(vec![4, 3]));
        let mut rng = StdRng::seed_from_u64(1);
        let mfg = sampler.sample(&[0, 5, 9, 13], &mut rng);
        let model = GnnModel::new(arch, &[6, 8, 3], 2);
        let mut x = Matrix::zeros(mfg.num_nodes(), 6);
        let mut r2 = StdRng::seed_from_u64(3);
        for v in x.as_flat_mut() {
            *v = r2.gen::<f32>() - 0.5;
        }
        (model, mfg, x)
    }

    #[test]
    fn sage_forward_shapes() {
        let (model, mfg, x) = setup(Arch::Sage);
        let mut rng = StdRng::seed_from_u64(4);
        let fwd = model.forward(x, &mfg, false, &mut rng);
        assert_eq!(fwd.logits_value().shape(), (4, 3));
        assert_eq!(fwd.param_nodes.len(), 6); // 2 layers × 3 params
    }

    #[test]
    fn gin_forward_shapes() {
        let (model, mfg, x) = setup(Arch::Gin);
        let mut rng = StdRng::seed_from_u64(4);
        let fwd = model.forward(x, &mfg, false, &mut rng);
        assert_eq!(fwd.logits_value().shape(), (4, 3));
        assert_eq!(fwd.param_nodes.len(), 8);
    }

    #[test]
    fn gat_forward_shapes() {
        let (model, mfg, x) = setup(Arch::Gat);
        let mut rng = StdRng::seed_from_u64(4);
        let fwd = model.forward(x, &mfg, false, &mut rng);
        assert_eq!(fwd.logits_value().shape(), (4, 3));
        assert_eq!(fwd.param_nodes.len(), 8);
    }

    #[test]
    fn infer_matches_eval_forward() {
        let (model, mfg, x) = setup(Arch::Sage);
        let mut rng = StdRng::seed_from_u64(11);
        let fwd = model.forward(x.clone(), &mfg, false, &mut rng);
        let logits = model.infer(x.clone(), &mfg);
        assert_eq!(&logits, fwd.logits_value());
        // Dropout must not leak into inference even when configured.
        let dropped = GnnModel::new(Arch::Sage, &[6, 8, 3], 2).with_dropout(0.5);
        assert_eq!(dropped.infer(x.clone(), &mfg), dropped.infer(x, &mfg));
    }

    #[test]
    fn forward_deterministic_in_eval_mode() {
        let (model, mfg, x) = setup(Arch::Sage);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(99);
        let f1 = model.forward(x.clone(), &mfg, false, &mut r1);
        let f2 = model.forward(x, &mfg, false, &mut r2);
        assert_eq!(f1.logits_value(), f2.logits_value());
    }

    #[test]
    fn training_step_reduces_loss() {
        for arch in [
            Arch::Sage,
            Arch::SagePool,
            Arch::Gin,
            Arch::Gat,
            Arch::GatMultiHead(2),
        ] {
            let (mut model, mfg, x) = setup(arch);
            let labels = StdArc::new(vec![0u32, 1, 2, 0]);
            let mut opt = Adam::new(0.05);
            let mut rng = StdRng::seed_from_u64(6);
            let loss_at = |model: &GnnModel, rng: &mut StdRng| {
                let mut fwd = model.forward(x.clone(), &mfg, false, rng);
                let l = fwd
                    .tape
                    .softmax_cross_entropy(fwd.logits, StdArc::clone(&labels));
                fwd.tape.value(l).get(0, 0)
            };
            let before = loss_at(&model, &mut rng);
            for _ in 0..20 {
                let mut fwd = model.forward(x.clone(), &mfg, true, &mut rng);
                let l = fwd
                    .tape
                    .softmax_cross_entropy(fwd.logits, StdArc::clone(&labels));
                fwd.tape.backward(l);
                model.accumulate_grads(&fwd);
                let mut params = model.params_mut();
                opt.step(&mut params);
            }
            let after = loss_at(&model, &mut rng);
            assert!(
                after < before * 0.8,
                "{arch:?}: loss {before} -> {after} did not drop"
            );
        }
    }

    #[test]
    fn sage_pool_forward_shapes() {
        let (model, mfg, x) = setup(Arch::SagePool);
        let mut rng = StdRng::seed_from_u64(4);
        let fwd = model.forward(x, &mfg, false, &mut rng);
        assert_eq!(fwd.logits_value().shape(), (4, 3));
        assert_eq!(fwd.param_nodes.len(), 10); // 2 layers x 5 params
    }

    #[test]
    fn multi_head_gat_forward_shapes() {
        // dims [6, 8, 4] with 2 heads: both 8 and 4 divisible by 2.
        let g = ring_with_chords(64, 7);
        let sampler = NodeWiseSampler::new(&g, Fanouts::new(vec![4, 3]));
        let mut rng = StdRng::seed_from_u64(1);
        let mfg = sampler.sample(&[0, 5, 9, 13], &mut rng);
        let model = GnnModel::new(Arch::GatMultiHead(2), &[6, 8, 4], 2);
        let x = Matrix::zeros(mfg.num_nodes(), 6);
        let fwd = model.forward(x, &mfg, false, &mut rng);
        assert_eq!(fwd.logits_value().shape(), (4, 4));
        // 2 layers x (2 heads x 3 + bias) = 14 params.
        assert_eq!(fwd.param_nodes.len(), 14);
    }

    #[test]
    fn multi_head_averages_on_indivisible_width() {
        // Output width 3 with 2 heads: heads are full width, averaged.
        let (model, mfg, x) = setup(Arch::GatMultiHead(2));
        let mut rng = StdRng::seed_from_u64(4);
        let fwd = model.forward(x, &mfg, false, &mut rng);
        assert_eq!(fwd.logits_value().shape(), (4, 3));
    }

    #[test]
    fn parameter_count_is_plausible() {
        let mut m = GnnModel::new(Arch::Sage, &[10, 20, 5], 0);
        // L1: 10*20*2 + 20 = 420; L2: 20*5*2 + 5 = 205.
        assert_eq!(m.num_parameters(), 625);
    }

    #[test]
    #[should_panic(expected = "MFG depth != layer count")]
    fn depth_mismatch_panics() {
        let (model, mfg, x) = setup(Arch::Sage);
        let deep = GnnModel::new(Arch::Sage, &[6, 8, 8, 3], 0);
        let mut rng = StdRng::seed_from_u64(0);
        drop(model);
        deep.forward(x, &mfg, false, &mut rng);
    }
}
