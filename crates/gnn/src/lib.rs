//! GNN models and the local training loop.
//!
//! Implements the message-passing architectures the paper discusses
//! (§2.1): GraphSAGE with mean aggregation (the evaluation architecture),
//! GIN (sum aggregation + MLP update), and single-head GAT (additive
//! attention), all on top of the [`spp_tensor`] autograd tape, consuming
//! sampled [message-flow graphs](spp_sampler::Mfg).
//!
//! # Example
//!
//! ```
//! use spp_gnn::{Arch, GnnModel};
//! use spp_graph::generate::ring_with_chords;
//! use spp_sampler::{Fanouts, NodeWiseSampler};
//! use spp_tensor::Matrix;
//! use rand::SeedableRng;
//!
//! let g = ring_with_chords(64, 5);
//! let sampler = NodeWiseSampler::new(&g, Fanouts::new(vec![3, 3]));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mfg = sampler.sample(&[0, 1], &mut rng);
//! let mut model = GnnModel::new(Arch::Sage, &[8, 16, 4], 0);
//! let x = Matrix::zeros(mfg.num_nodes(), 8);
//! let mut fwd = model.forward(x, &mfg, false, &mut rng);
//! assert_eq!(fwd.logits_value().shape(), (2, 4));
//! ```

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]
// Index-based loops over multiple parallel arrays are used deliberately
// throughout (CSR sweeps, per-partition load vectors); iterator zips would
// obscure which array drives the bound.
#![allow(clippy::needless_range_loop)]

pub mod metrics;
pub mod model;
pub mod trainer;

pub use model::{Arch, Forward, GnnModel};
pub use trainer::{EpochStats, TrainConfig, TrainReport, Trainer, MODEL_STREAM_SALT};
