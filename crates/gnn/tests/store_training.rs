//! Bit-identity of training through the `FeatureStore` trait: routing
//! batch gathers through an f32 paged store (in-RAM or mmap-backed)
//! must reproduce the historical `&FeatureMatrix` path exactly — same
//! loss curve to the last bit, same accuracies.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_gnn::{TrainConfig, TrainReport, Trainer};
use spp_graph::dataset::SyntheticSpec;
use spp_graph::{Dataset, QuantScheme};
use spp_sampler::Fanouts;
use spp_store::{InRamStore, MmapStore, StoreBuilder};

fn fixture() -> (Dataset, TrainConfig) {
    let ds = SyntheticSpec::new("store-train", 400, 10.0, 8, 4)
        .split_fractions(0.4, 0.1, 0.1)
        .feature_signal(1.5)
        .seed(2)
        .build();
    let cfg = TrainConfig {
        hidden_dim: 16,
        fanouts: Fanouts::new(vec![5, 5]),
        eval_fanouts: Fanouts::new(vec![8, 8]),
        batch_size: 32,
        lr: 0.01,
        epochs: 3,
        ..TrainConfig::default()
    };
    (ds, cfg)
}

fn assert_reports_identical(a: &TrainReport, b: &TrainReport, what: &str) {
    assert_eq!(a.epochs.len(), b.epochs.len(), "{what}: epoch count");
    for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(ea.batches, eb.batches, "{what}: epoch {} batches", ea.epoch);
        assert!(
            ea.loss.to_bits() == eb.loss.to_bits(),
            "{what}: epoch {} loss {} != {}",
            ea.epoch,
            ea.loss,
            eb.loss
        );
    }
    assert!(
        a.val_accuracy.to_bits() == b.val_accuracy.to_bits(),
        "{what}: val"
    );
    assert!(
        a.test_accuracy.to_bits() == b.test_accuracy.to_bits(),
        "{what}: test"
    );
}

/// An f32 `InRamStore` is a lossless re-encoding of the feature matrix,
/// so every gathered batch — and therefore every forward pass, loss,
/// and accuracy — is bit-identical to training straight off the matrix.
#[test]
fn training_through_inram_store_is_bit_identical() {
    let (ds, cfg) = fixture();
    let baseline = Trainer::new(&ds, cfg.clone()).train();
    assert!(!baseline.epochs.is_empty());

    let store = InRamStore::from_matrix(&ds.features, QuantScheme::F32, 4096);
    let through_store = Trainer::new(&ds, cfg).with_feature_store(&store).train();
    assert_reports_identical(&baseline, &through_store, "inram/f32");
}

/// Same contract through the full on-disk path: pages written by
/// `StoreBuilder`, read back via positioned reads (`MmapStore`).
#[test]
fn training_through_mmap_store_is_bit_identical() {
    let (ds, cfg) = fixture();
    let baseline = Trainer::new(&ds, cfg.clone()).train();

    let dir = std::env::temp_dir().join(format!("spp_gnn_store_train_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    StoreBuilder::new(QuantScheme::F32)
        .page_bytes(4096)
        .build_from_matrix(&dir, &ds.features, None)
        .unwrap();
    let store = MmapStore::open(&dir).unwrap();
    let through_store = Trainer::new(&ds, cfg).with_feature_store(&store).train();
    std::fs::remove_dir_all(&dir).unwrap();

    assert_reports_identical(&baseline, &through_store, "mmap/f32");
    // The trait path is observable: training actually touched pages.
    let stats = spp_store::FeatureStore::stats(&store);
    assert!(
        stats.pages_read > 0,
        "training never read through the store"
    );
}
