//! Property-based tests for GNN forward passes over random MFGs.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_gnn::{Arch, GnnModel};
use spp_graph::generate::GeneratorConfig;
use spp_sampler::{Fanouts, NodeWiseSampler};
use spp_tensor::Matrix;

fn forward_shape_for(arch: Arch, n: usize, m: usize, seeds: usize, seed: u64) -> (usize, usize) {
    let g = GeneratorConfig::erdos_renyi(n, m).seed(seed).build();
    let sampler = NodeWiseSampler::new(&g, Fanouts::new(vec![4, 3]));
    let ids: Vec<u32> = (0..seeds as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 3);
    let mfg = sampler.sample(&ids, &mut rng);
    let model = GnnModel::new(arch, &[5, 8, 4], seed);
    let x = Matrix::zeros(mfg.num_nodes(), 5);
    let fwd = model.forward(x, &mfg, false, &mut rng);
    fwd.logits_value().shape()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn logits_shape_matches_seeds_for_every_arch(
        n in 16usize..100,
        m in 20usize..300,
        seeds in 1usize..8,
        seed in 0u64..200,
    ) {
        for arch in [Arch::Sage, Arch::SagePool, Arch::Gin, Arch::Gat, Arch::GatMultiHead(2)] {
            let (r, c) = forward_shape_for(arch, n, m, seeds.min(n), seed);
            prop_assert_eq!(r, seeds.min(n));
            prop_assert_eq!(c, 4);
        }
    }

    #[test]
    fn logits_are_finite(
        n in 16usize..100,
        m in 20usize..300,
        seed in 0u64..200,
    ) {
        let g = GeneratorConfig::erdos_renyi(n, m).seed(seed).build();
        let sampler = NodeWiseSampler::new(&g, Fanouts::new(vec![3, 3]));
        let mut rng = StdRng::seed_from_u64(seed);
        let mfg = sampler.sample(&[0, 1], &mut rng);
        let model = GnnModel::new(Arch::Sage, &[4, 6, 3], seed);
        // Random features in a sane range.
        let mut x = Matrix::zeros(mfg.num_nodes(), 4);
        for (i, v) in x.as_flat_mut().iter_mut().enumerate() {
            *v = ((i * 2_654_435_761) % 1000) as f32 / 500.0 - 1.0;
        }
        let fwd = model.forward(x, &mfg, false, &mut rng);
        prop_assert!(fwd.logits_value().as_flat().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gradients_exist_for_all_parameters(
        n in 24usize..80,
        seed in 0u64..100,
    ) {
        let g = GeneratorConfig::erdos_renyi(n, n * 4).seed(seed).build();
        let sampler = NodeWiseSampler::new(&g, Fanouts::new(vec![3, 3]));
        let mut rng = StdRng::seed_from_u64(seed);
        let mfg = sampler.sample(&[0, 1, 2], &mut rng);
        let model = GnnModel::new(Arch::Sage, &[4, 6, 3], seed);
        let mut x = Matrix::zeros(mfg.num_nodes(), 4);
        for (i, v) in x.as_flat_mut().iter_mut().enumerate() {
            *v = (i % 7) as f32 - 3.0;
        }
        let mut fwd = model.forward(x, &mfg, true, &mut rng);
        let labels = std::sync::Arc::new(vec![0u32, 1, 2]);
        let loss = fwd.tape.softmax_cross_entropy(fwd.logits, labels);
        fwd.tape.backward(loss);
        for &p in &fwd.param_nodes {
            prop_assert!(fwd.tape.grad(p).is_some(), "parameter without gradient");
        }
    }
}
