//! Instrumented `Mutex` and `Condvar`.
//!
//! Normal builds are thin passthroughs over `std::sync` that swallow
//! poisoning (matching the vendored `parking_lot` shim's behavior — a
//! panic while holding a telemetry lock must not cascade). Under
//! `cfg(spp_model_check)` every acquisition, release, wait, and notify
//! is announced to the scheduler first, so the model checker controls
//! which thread wins each lock handoff; the real `std` primitives are
//! then taken uncontended in the order the model chose.

use std::ops::{Deref, DerefMut};

/// Instrumented mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `t`.
    pub const fn new(t: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Location id for the model checker: the wrapper's address, stable
    /// for the object's lifetime.
    #[cfg(spp_model_check)]
    fn loc(&self) -> usize {
        self as *const Self as usize
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(spp_model_check)]
        let model = match crate::hook::installed() {
            Some(h) => h.mutex_lock(self.loc()),
            None => false,
        };
        MutexGuard {
            owner: self,
            inner: Some(self.raw_lock()),
            #[cfg(spp_model_check)]
            model,
        }
    }

    /// Consumes the mutex, returning the inner value. No model dispatch:
    /// exclusive ownership means no concurrency to schedule.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access through exclusive borrow (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }

    /// The real lock, poison-swallowing, without model dispatch.
    fn raw_lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// RAII guard; the lock releases on drop.
pub struct MutexGuard<'a, T> {
    owner: &'a Mutex<T>,
    /// `None` only transiently inside [`Condvar::wait`], never while the
    /// guard is visible to callers.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// True when the acquisition was granted by the model scheduler (the
    /// release must then be announced too).
    #[cfg(spp_model_check)]
    model: bool,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match self.inner.as_deref() {
            Some(t) => t,
            None => unreachable!("live guard always holds the inner lock"), // spp-lint: allow(l1-no-panic): guard invariant by construction; the Option exists only for the model-check drop protocol
        }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self.inner.as_deref_mut() {
            Some(t) => t,
            None => unreachable!("live guard always holds the inner lock"), // spp-lint: allow(l1-no-panic): guard invariant by construction; the Option exists only for the model-check drop protocol
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Announce the model release before the field drop performs the
        // real unlock: the scheduler must mark the mutex free before any
        // other model thread can be granted it.
        #[cfg(spp_model_check)]
        if self.model && self.inner.is_some() {
            if let Some(h) = crate::hook::installed() {
                h.mutex_unlock(self.owner.loc());
            }
        }
        #[cfg(not(spp_model_check))]
        let _ = self.owner;
    }
}

/// Instrumented condition variable. Pairs only with [`Mutex`] from this
/// crate (the guard carries the mutex identity the model needs).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    #[cfg(spp_model_check)]
    fn loc(&self) -> usize {
        self as *const Self as usize
    }

    /// Releases the lock, blocks until notified, re-acquires.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let owner = guard.owner;
        #[cfg(spp_model_check)]
        if guard.model {
            if let Some(h) = crate::hook::installed() {
                let mloc = owner.loc();
                let cvloc = self.loc();
                if h.condvar_wait_release(cvloc, mloc) {
                    // Model path: the scheduler has released the model
                    // mutex and queued us as a waiter. Drop the real
                    // lock, park until notified + granted, retake it.
                    guard.model = false;
                    drop(guard.inner.take());
                    drop(guard);
                    h.condvar_wait_reacquire(cvloc, mloc);
                    return MutexGuard {
                        owner,
                        inner: Some(owner.raw_lock()),
                        model: true,
                    };
                }
            }
        }
        let std_guard = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("live guard always holds the inner lock"), // spp-lint: allow(l1-no-panic): guard invariant by construction; the Option exists only for the model-check drop protocol
        };
        #[cfg(spp_model_check)]
        {
            guard.model = false;
        }
        drop(guard);
        let inner = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard {
            owner,
            inner: Some(inner),
            #[cfg(spp_model_check)]
            model: false,
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        #[cfg(spp_model_check)]
        if let Some(h) = crate::hook::installed() {
            if h.condvar_notify(self.loc(), false) {
                return;
            }
        }
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        #[cfg(spp_model_check)]
        if let Some(h) = crate::hook::installed() {
            if h.condvar_notify(self.loc(), true) {
                return;
            }
        }
        self.inner.notify_all();
    }
}
