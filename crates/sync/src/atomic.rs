//! Atomic wrappers with *named-ordering* methods.
//!
//! There is no `Ordering` parameter: each ordering is a distinct method
//! (`load_relaxed`, `store_release`, ...), so the declared ordering is
//! part of the call-site text. That is what makes the workspace lints
//! enforceable — L7 bans raw `std::sync::atomic` use outside this crate,
//! and L8 requires every `*_relaxed(` call site to carry a
//! `// spp-sync: relaxed(reason)` annotation.
//!
//! All three logical types store a `u64` cell so the model checker sees
//! one uniform value domain; `bool`/`usize` convert at the API edge. In
//! normal builds every method is an `#[inline(always)]` passthrough to
//! the equivalent `std::sync::atomic` operation (the `sync_overhead`
//! bench asserts the delta is unmeasurable).

use std::sync::atomic::{AtomicU64 as RawAtomicU64, Ordering};

#[cfg(spp_model_check)]
use crate::hook::{AtomicOp, MemOrd};

/// Routes an operation to the installed model hooks; `None` means the
/// caller performs the real operation (not a model thread, or no checker
/// in this process).
// spp-hot: stop(model-check instrumentation; compiled only under cfg(spp_model_check), never in release hot paths)
#[cfg(spp_model_check)]
#[inline]
fn dispatch(cell: &RawAtomicU64, op: AtomicOp) -> Option<u64> {
    crate::hook::installed().and_then(|h| h.atomic(cell, op))
}

/// Instrumented `u64` atomic.
#[derive(Debug, Default)]
pub struct AtomicU64 {
    cell: RawAtomicU64,
}

impl AtomicU64 {
    /// A new atomic holding `v`.
    pub const fn new(v: u64) -> Self {
        Self {
            cell: RawAtomicU64::new(v),
        }
    }

    /// Relaxed load.
    #[inline(always)]
    pub fn load_relaxed(&self) -> u64 {
        #[cfg(spp_model_check)]
        if let Some(v) = dispatch(
            &self.cell,
            AtomicOp::Load {
                ord: MemOrd::Relaxed,
            },
        ) {
            return v;
        }
        self.cell.load(Ordering::Relaxed)
    }

    /// Acquire load (pairs with [`AtomicU64::store_release`]).
    #[inline(always)]
    pub fn load_acquire(&self) -> u64 {
        #[cfg(spp_model_check)]
        if let Some(v) = dispatch(
            &self.cell,
            AtomicOp::Load {
                ord: MemOrd::Acquire,
            },
        ) {
            return v;
        }
        self.cell.load(Ordering::Acquire)
    }

    /// Relaxed store.
    #[inline(always)]
    pub fn store_relaxed(&self, v: u64) {
        #[cfg(spp_model_check)]
        if dispatch(
            &self.cell,
            AtomicOp::Store {
                ord: MemOrd::Relaxed,
                val: v,
            },
        )
        .is_some()
        {
            return;
        }
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Release store (pairs with [`AtomicU64::load_acquire`]).
    #[inline(always)]
    pub fn store_release(&self, v: u64) {
        #[cfg(spp_model_check)]
        if dispatch(
            &self.cell,
            AtomicOp::Store {
                ord: MemOrd::Release,
                val: v,
            },
        )
        .is_some()
        {
            return;
        }
        self.cell.store(v, Ordering::Release);
    }

    /// Relaxed fetch-add; returns the previous value.
    #[inline(always)]
    pub fn fetch_add_relaxed(&self, v: u64) -> u64 {
        #[cfg(spp_model_check)]
        if let Some(prev) = dispatch(&self.cell, AtomicOp::FetchAdd { val: v }) {
            return prev;
        }
        self.cell.fetch_add(v, Ordering::Relaxed)
    }

    /// Relaxed fetch-max; returns the previous value.
    #[inline(always)]
    pub fn fetch_max_relaxed(&self, v: u64) -> u64 {
        #[cfg(spp_model_check)]
        if let Some(prev) = dispatch(&self.cell, AtomicOp::FetchMax { val: v }) {
            return prev;
        }
        self.cell.fetch_max(v, Ordering::Relaxed)
    }
}

/// Instrumented `usize` atomic (stored as `u64`; lossless on 64-bit
/// targets, which is all this workspace builds for).
#[derive(Debug, Default)]
pub struct AtomicUsize {
    cell: RawAtomicU64,
}

impl AtomicUsize {
    /// A new atomic holding `v`.
    pub const fn new(v: usize) -> Self {
        Self {
            cell: RawAtomicU64::new(v as u64),
        }
    }

    /// Relaxed load.
    #[inline(always)]
    pub fn load_relaxed(&self) -> usize {
        #[cfg(spp_model_check)]
        if let Some(v) = dispatch(
            &self.cell,
            AtomicOp::Load {
                ord: MemOrd::Relaxed,
            },
        ) {
            return v as usize;
        }
        self.cell.load(Ordering::Relaxed) as usize
    }

    /// Acquire load (pairs with [`AtomicUsize::store_release`]).
    #[inline(always)]
    pub fn load_acquire(&self) -> usize {
        #[cfg(spp_model_check)]
        if let Some(v) = dispatch(
            &self.cell,
            AtomicOp::Load {
                ord: MemOrd::Acquire,
            },
        ) {
            return v as usize;
        }
        self.cell.load(Ordering::Acquire) as usize
    }

    /// Relaxed store.
    #[inline(always)]
    pub fn store_relaxed(&self, v: usize) {
        #[cfg(spp_model_check)]
        if dispatch(
            &self.cell,
            AtomicOp::Store {
                ord: MemOrd::Relaxed,
                val: v as u64,
            },
        )
        .is_some()
        {
            return;
        }
        self.cell.store(v as u64, Ordering::Relaxed);
    }

    /// Release store (pairs with [`AtomicUsize::load_acquire`]).
    #[inline(always)]
    pub fn store_release(&self, v: usize) {
        #[cfg(spp_model_check)]
        if dispatch(
            &self.cell,
            AtomicOp::Store {
                ord: MemOrd::Release,
                val: v as u64,
            },
        )
        .is_some()
        {
            return;
        }
        self.cell.store(v as u64, Ordering::Release);
    }

    /// Relaxed fetch-add; returns the previous value.
    #[inline(always)]
    pub fn fetch_add_relaxed(&self, v: usize) -> usize {
        #[cfg(spp_model_check)]
        if let Some(prev) = dispatch(&self.cell, AtomicOp::FetchAdd { val: v as u64 }) {
            return prev as usize;
        }
        self.cell.fetch_add(v as u64, Ordering::Relaxed) as usize
    }
}

/// Instrumented `bool` atomic (stored as `u64`, 0 or 1).
#[derive(Debug, Default)]
pub struct AtomicBool {
    cell: RawAtomicU64,
}

impl AtomicBool {
    /// A new atomic holding `v`.
    pub const fn new(v: bool) -> Self {
        Self {
            cell: RawAtomicU64::new(v as u64),
        }
    }

    /// Relaxed load.
    #[inline(always)]
    pub fn load_relaxed(&self) -> bool {
        #[cfg(spp_model_check)]
        if let Some(v) = dispatch(
            &self.cell,
            AtomicOp::Load {
                ord: MemOrd::Relaxed,
            },
        ) {
            return v != 0;
        }
        self.cell.load(Ordering::Relaxed) != 0
    }

    /// Acquire load (pairs with [`AtomicBool::store_release`]).
    #[inline(always)]
    pub fn load_acquire(&self) -> bool {
        #[cfg(spp_model_check)]
        if let Some(v) = dispatch(
            &self.cell,
            AtomicOp::Load {
                ord: MemOrd::Acquire,
            },
        ) {
            return v != 0;
        }
        self.cell.load(Ordering::Acquire) != 0
    }

    /// Relaxed store.
    #[inline(always)]
    pub fn store_relaxed(&self, v: bool) {
        #[cfg(spp_model_check)]
        if dispatch(
            &self.cell,
            AtomicOp::Store {
                ord: MemOrd::Relaxed,
                val: v as u64,
            },
        )
        .is_some()
        {
            return;
        }
        self.cell.store(v as u64, Ordering::Relaxed);
    }

    /// Release store (pairs with [`AtomicBool::load_acquire`]).
    #[inline(always)]
    pub fn store_release(&self, v: bool) {
        #[cfg(spp_model_check)]
        if dispatch(
            &self.cell,
            AtomicOp::Store {
                ord: MemOrd::Release,
                val: v as u64,
            },
        )
        .is_some()
        {
            return;
        }
        self.cell.store(v as u64, Ordering::Release);
    }
}
