//! Instrumentation points for the concurrency model checker.
//!
//! This module is compiled in every build so that `spp-check` (which
//! depends on this crate) can install its scheduler without a dependency
//! cycle. The wrapper types in the crate root only *call* these hooks
//! under `cfg(spp_model_check)`; in normal builds nothing here is on any
//! hot path.
//!
//! Protocol: a hook returning `None` / `false` means "not handled" — the
//! calling wrapper falls through to the real `std::sync` operation. The
//! model checker returns handled results only for threads it spawned and
//! registered; every other thread (including the checker's own driver
//! thread) passes through untouched.

use std::sync::atomic::AtomicU64 as RawAtomicU64;
use std::sync::OnceLock;

/// Memory ordering declared at an instrumented call site. Only the
/// orderings the wrapper API can express — the named-method API
/// (`load_acquire`, `store_release`, ...) makes stronger orderings a
/// deliberate, lintable choice rather than a default.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOrd {
    /// No inter-thread visibility guarantee beyond the cell itself.
    Relaxed,
    /// Load half of a release/acquire pair.
    Acquire,
    /// Store half of a release/acquire pair.
    Release,
}

/// One atomic operation, as announced to the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomicOp {
    /// Read; the checker may return a stale-but-permitted value in
    /// weak-memory mode.
    Load {
        /// Declared ordering of the load.
        ord: MemOrd,
    },
    /// Write of `val`.
    Store {
        /// Declared ordering of the store.
        ord: MemOrd,
        /// Value written.
        val: u64,
    },
    /// Relaxed read-modify-write add; returns the previous value.
    FetchAdd {
        /// Addend.
        val: u64,
    },
    /// Relaxed read-modify-write max; returns the previous value.
    FetchMax {
        /// Candidate maximum.
        val: u64,
    },
}

impl AtomicOp {
    /// True for pure reads (two loads never conflict for DPOR purposes).
    pub fn is_load(self) -> bool {
        matches!(self, AtomicOp::Load { .. })
    }
}

/// The scheduler interface `spp-check` implements. All methods follow
/// the handled/passthrough protocol described at module level.
pub trait ModelHooks: Sync {
    /// Intercept an atomic operation on `cell` (identified by address).
    /// `Some(v)` is the operation's result under the model; `None`
    /// means the caller performs the real operation itself.
    fn atomic(&self, cell: &RawAtomicU64, op: AtomicOp) -> Option<u64>;

    /// A model thread is about to take the mutex at `loc`. Blocks until
    /// the scheduler grants the acquisition; the caller then takes the
    /// (uncontended) real lock.
    fn mutex_lock(&self, loc: usize) -> bool;

    /// A model thread is releasing the mutex at `loc` (called *before*
    /// the real unlock).
    fn mutex_unlock(&self, loc: usize) -> bool;

    /// First half of `Condvar::wait`: atomically release the model
    /// mutex and register as a waiter on `cv`. The caller drops the
    /// real guard after this returns `true`.
    fn condvar_wait_release(&self, cv: usize, mutex: usize) -> bool;

    /// Second half of `Condvar::wait`: block until notified *and*
    /// granted the mutex re-acquisition. The caller retakes the real
    /// lock after this returns.
    fn condvar_wait_reacquire(&self, cv: usize, mutex: usize);

    /// `notify_one` / `notify_all` on the condvar at `cv`.
    fn condvar_notify(&self, cv: usize, all: bool) -> bool;
}

static HOOKS: OnceLock<&'static dyn ModelHooks> = OnceLock::new();

/// Installs the model-checker hooks, once per process. Returns `false`
/// if hooks were already installed.
pub fn install(hooks: &'static dyn ModelHooks) -> bool {
    HOOKS.set(hooks).is_ok()
}

/// The installed hooks, if any. One `OnceLock` read.
#[inline]
pub fn installed() -> Option<&'static dyn ModelHooks> {
    HOOKS.get().copied()
}
