//! Instrumented concurrency primitives (`spp-sync`).
//!
//! Every atomic, mutex, and condvar the workspace's concurrent hot
//! paths use comes from this crate instead of `std::sync` directly
//! (lint L7). The wrappers are transparent in normal builds — each
//! method is an `#[inline(always)]` passthrough to the identical
//! `std::sync` operation, benchmarked at zero measurable overhead by
//! `spp-bench/bin/telemetry_overhead --quick` (`sync_overhead` case).
//!
//! Under `RUSTFLAGS="--cfg spp_model_check"` the same call sites route
//! through [`hook::ModelHooks`], which the `spp-check` crate implements
//! with a controlled scheduler: it enumerates thread interleavings with
//! bounded preemptions and (in weak-memory mode) serves loads stale
//! values the declared ordering permits, so `Relaxed` misuse shows up as
//! a concrete failing schedule instead of a latent production bug. See
//! DESIGN.md §12 for the memory-ordering discipline and the L7/L8 lint
//! rules that keep call sites honest.
//!
//! Ordering is part of the method name (`load_acquire`,
//! `fetch_add_relaxed`, ...) rather than a parameter, which is what
//! makes L8 — every `*_relaxed(` call site carries a
//! `// spp-sync: relaxed(reason)` annotation — a purely lexical check.

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod hook;

mod atomic;
mod mutex;

pub use atomic::{AtomicBool, AtomicU64, AtomicUsize};
pub use mutex::{Condvar, Mutex, MutexGuard};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_u64_passthrough_semantics() {
        let a = AtomicU64::new(5);
        assert_eq!(a.load_relaxed(), 5);
        a.store_relaxed(7);
        assert_eq!(a.fetch_add_relaxed(3), 7);
        assert_eq!(a.load_acquire(), 10);
        assert_eq!(a.fetch_max_relaxed(4), 10);
        assert_eq!(a.fetch_max_relaxed(40), 10);
        a.store_release(2);
        assert_eq!(a.load_relaxed(), 2);
    }

    #[test]
    fn atomic_usize_and_bool_convert_at_the_edge() {
        let n = AtomicUsize::new(usize::MAX >> 1);
        assert_eq!(n.load_relaxed(), usize::MAX >> 1);
        n.store_release(3);
        assert_eq!(n.fetch_add_relaxed(2), 3);
        assert_eq!(n.load_acquire(), 5);

        let b = AtomicBool::new(false);
        assert!(!b.load_relaxed());
        b.store_release(true);
        assert!(b.load_acquire());
        b.store_relaxed(false);
        assert!(!b.load_relaxed());
    }

    #[test]
    fn mutex_guards_and_into_inner() {
        let m = Mutex::new(vec![1u32]);
        m.lock().push(2);
        {
            let g = m.lock();
            assert_eq!(*g, vec![1, 2]);
        }
        let mut m = m;
        m.get_mut().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_real_waiters() {
        use std::sync::Arc;

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
            true
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn default_hooks_are_absent_in_plain_tests() {
        // Nothing installs hooks in a normal test binary, so the
        // wrappers must behave as raw std::sync.
        assert!(hook::installed().is_none() || cfg!(spp_model_check));
    }
}
