//! Cache-lookup and batch-classification benchmarks — the per-batch hash
//! lookup SALIENT++ performs for every remote vertex (§4.2).

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_bench::papers_sim;
use spp_core::policies::CachePolicy;
use spp_runtime::{DistributedSetup, SetupConfig};
use spp_sampler::{Fanouts, NodeWiseSampler};

fn bench_plan(c: &mut Criterion) {
    let ds = papers_sim(0.25, 1);
    let setup = DistributedSetup::build(
        &ds,
        SetupConfig {
            num_machines: 4,
            fanouts: Fanouts::new(vec![15, 10, 5]),
            batch_size: 16,
            policy: CachePolicy::VipAnalytic,
            alpha: 0.32,
            beta: 0.5,
            vip_reorder: true,
            seed: 1,
            ..SetupConfig::default()
        },
    );
    let sampler = NodeWiseSampler::new(&setup.dataset.graph, Fanouts::new(vec![15, 10, 5]));
    let mut rng = StdRng::seed_from_u64(2);
    let seeds: Vec<u32> = setup.local_train[0].iter().take(16).copied().collect();
    let mfg = sampler.sample(&seeds, &mut rng);
    println!("classifying {} vertices per batch", mfg.num_nodes());

    c.bench_function("batch_plan_classify", |b| {
        b.iter(|| black_box(setup.stores[0].plan(black_box(&mfg.nodes)).num_remote()))
    });
    c.bench_function("cache_lookup_only", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &v in &mfg.nodes {
                if setup.stores[0].cache().contains(black_box(v)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    c.bench_function("gather_local_only_rows", |b| {
        // Serving a peer request: slice 1k local rows.
        let range = setup.layout.part_range(0);
        let ids: Vec<u32> = (range.start as u32..range.start as u32 + 1000).collect();
        b.iter(|| black_box(setup.stores[0].serve(black_box(&ids)).num_rows()))
    });
}

criterion_group!(benches, bench_plan);
criterion_main!(benches);
