//! Microbenchmarks for VIP analysis and the caching policies. The paper
//! reports the full VIP computation for papers100M takes 11.8 s on their
//! hardware; the O(L(M+N)) sweep here should scale linearly in edges.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spp_bench::papers_sim;
use spp_core::policies::{CachePolicy, PolicyContext};
use spp_core::VipModel;
use spp_runtime::{DistributedSetup, SetupConfig};
use spp_sampler::Fanouts;

fn bench_vip(c: &mut Criterion) {
    let mut group = c.benchmark_group("vip");
    group.sample_size(10);
    for scale in [0.25f64, 0.5, 1.0] {
        let ds = papers_sim(scale, 1);
        let model = VipModel::new(Fanouts::new(vec![15, 10, 5]), 8);
        group.bench_function(format!("scores_n{}", ds.num_vertices()), |b| {
            b.iter(|| black_box(model.scores(black_box(&ds.graph), black_box(&ds.split.train))))
        });
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let ds = papers_sim(0.25, 1);
    let cfg = SetupConfig {
        num_machines: 4,
        fanouts: Fanouts::new(vec![15, 10, 5]),
        batch_size: 8,
        ..SetupConfig::default()
    };
    let (partitioning, train) = DistributedSetup::partition(&ds, &cfg);
    let mut group = c.benchmark_group("policy_ranking");
    group.sample_size(10);
    for policy in [
        CachePolicy::Degree,
        CachePolicy::WeightedReversePagerank,
        CachePolicy::NumPaths,
        CachePolicy::VipAnalytic,
    ] {
        group.bench_function(policy.label(), |b| {
            let ctx = PolicyContext {
                graph: &ds.graph,
                partitioning: &partitioning,
                part: 0,
                local_train: &train[0],
                fanouts: cfg.fanouts.clone(),
                batch_size: 8,
                seed: 1,
                oracle_counts: &[],
            };
            b.iter(|| black_box(ctx.rank(policy).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vip, bench_policies);
criterion_main!(benches);
