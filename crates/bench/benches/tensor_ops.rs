//! Tensor-engine microbenchmarks: dense matmul, sparse aggregation, and
//! a full GraphSAGE forward+backward over a realistic MFG.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spp_bench::papers_sim;
use spp_gnn::{Arch, GnnModel, Trainer};
use spp_sampler::{Fanouts, NodeWiseSampler};
use spp_tensor::tape::{AggMode, CsrAdj};
use spp_tensor::{Matrix, Tape};
use std::sync::Arc;

fn random_matrix(r: usize, c: usize, rng: &mut StdRng) -> Matrix {
    let mut m = Matrix::zeros(r, c);
    for v in m.as_flat_mut() {
        *v = rng.gen::<f32>() - 0.5;
    }
    m
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("matmul");
    group.sample_size(30);
    for (r, k, cc) in [
        (1024usize, 64usize, 64usize),
        (4096, 64, 256),
        (1024, 256, 256),
    ] {
        let a = random_matrix(r, k, &mut rng);
        let b = random_matrix(k, cc, &mut rng);
        group.bench_function(format!("{r}x{k}x{cc}"), |bch| {
            bch.iter(|| black_box(a.matmul(black_box(&b))))
        });
    }
    group.finish();
}

fn bench_sparse_agg(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let num_targets = 2_000usize;
    let num_sources = 10_000usize;
    let fanout = 10usize;
    let mut row_ptr = vec![0usize];
    let mut col = Vec::new();
    for _ in 0..num_targets {
        for _ in 0..fanout {
            col.push(rng.gen_range(0..num_sources) as u32);
        }
        row_ptr.push(col.len());
    }
    let adj = Arc::new(CsrAdj {
        num_targets,
        num_sources,
        row_ptr,
        col,
    });
    let x = random_matrix(num_sources, 64, &mut rng);
    c.bench_function("sparse_mean_agg_2k_targets_f10_d64", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let xin = tape.input(x.clone());
            let y = tape.sparse_agg(xin, Arc::clone(&adj), AggMode::Mean);
            black_box(tape.value(y).rows())
        })
    });
}

fn bench_training_step(c: &mut Criterion) {
    let ds = papers_sim(0.1, 1);
    let fanouts = Fanouts::new(vec![10, 5]);
    let sampler = NodeWiseSampler::new(&ds.graph, fanouts);
    let mut rng = StdRng::seed_from_u64(3);
    let seeds: Vec<u32> = ds.split.train.iter().take(32).copied().collect();
    let mfg = sampler.sample(&seeds, &mut rng);
    let x = Trainer::gather_features(&ds, &mfg);
    let model = GnnModel::new(Arch::Sage, &[ds.features.dim(), 64, ds.num_classes], 1);
    let labels: Arc<Vec<u32>> =
        Arc::new(mfg.seeds().iter().map(|&v| ds.labels[v as usize]).collect());
    c.bench_function("sage_forward_backward_b32", |b| {
        b.iter(|| {
            let mut fwd = model.forward(x.clone(), &mfg, false, &mut rng);
            let loss = fwd
                .tape
                .softmax_cross_entropy(fwd.logits, Arc::clone(&labels));
            fwd.tape.backward(loss);
            black_box(fwd.tape.grad(fwd.param_nodes[0]).is_some())
        })
    });
}

criterion_group!(benches, bench_matmul, bench_sparse_agg, bench_training_step);
criterion_main!(benches);
