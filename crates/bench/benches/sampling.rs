//! Microbenchmarks for the node-wise sampler — the component SALIENT
//! performance-engineered and SALIENT++ inherits.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_bench::papers_sim;
use spp_sampler::{Fanouts, NodeWiseSampler, VertexIndexer};

fn bench_sampling(c: &mut Criterion) {
    let ds = papers_sim(0.5, 1);
    let mut group = c.benchmark_group("sampler");
    group.sample_size(30);
    for (name, fanouts) in [
        ("fanout_15_10_5", Fanouts::new(vec![15, 10, 5])),
        ("fanout_5_5_5", Fanouts::new(vec![5, 5, 5])),
        ("fanout_25_15", Fanouts::new(vec![25, 15])),
    ] {
        let sampler = NodeWiseSampler::new(&ds.graph, fanouts);
        let seeds: Vec<u32> = ds.split.train.iter().take(64).copied().collect();
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                let mfg = sampler.sample(black_box(&seeds), &mut rng);
                black_box(mfg.num_nodes())
            })
        });
    }
    group.finish();
}

fn bench_indexer(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_indexer");
    let keys: Vec<u32> = (0..100_000u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    group.bench_function("insert_100k", |b| {
        b.iter(|| {
            let mut idx = VertexIndexer::with_capacity(128);
            for &k in &keys {
                idx.insert(black_box(k));
            }
            black_box(idx.len())
        })
    });
    group.bench_function("hashmap_insert_100k_baseline", |b| {
        b.iter(|| {
            let mut idx = std::collections::HashMap::new();
            for &k in &keys {
                let n = idx.len() as u32;
                idx.entry(black_box(k)).or_insert(n);
            }
            black_box(idx.len())
        })
    });
    group.finish();
}

fn bench_other_samplers(c: &mut Criterion) {
    let ds = papers_sim(0.5, 1);
    let seeds: Vec<u32> = ds.split.train.iter().take(64).copied().collect();
    let mut group = c.benchmark_group("sampler_variants");
    group.sample_size(20);
    {
        use spp_sampler::weighted::{EdgeWeights, WeightedNodeWiseSampler};
        let w = EdgeWeights::uniform(&ds.graph);
        let s = WeightedNodeWiseSampler::new(&ds.graph, &w, Fanouts::new(vec![15, 10, 5]));
        group.bench_function("weighted_15_10_5", |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(s.sample(black_box(&seeds), &mut rng).num_nodes()))
        });
    }
    {
        use spp_sampler::layerwise::LayerWiseSampler;
        let s = LayerWiseSampler::new(&ds.graph, vec![512, 1024, 2048]);
        group.bench_function("layerwise_512_1024_2048", |b| {
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| black_box(s.sample(black_box(&seeds), &mut rng).num_nodes()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling, bench_indexer, bench_other_samplers);
criterion_main!(benches);
