//! Multilevel-partitioner benchmarks (the paper's METIS preprocessing
//! step: ~2 h serial on papers100M; ours should be seconds at mini scale).

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spp_bench::papers_sim;
use spp_partition::multilevel::MultilevelPartitioner;
use spp_partition::{simple, VertexWeights};

fn bench_partition(c: &mut Criterion) {
    let ds = papers_sim(0.25, 1);
    let w = VertexWeights::from_dataset(&ds);
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    group.bench_function("multilevel_k8", |b| {
        b.iter(|| {
            let p = MultilevelPartitioner::new(8)
                .seed(1)
                .partition(&ds.graph, &w);
            black_box(p.sizes())
        })
    });
    group.bench_function("ldg_k8", |b| {
        b.iter(|| {
            let p = simple::ldg_partition(&ds.graph, 8, &w);
            black_box(p.sizes())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
