//! Discrete-event engine and end-to-end epoch-simulation benchmarks.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spp_bench::papers_sim;
use spp_comm::DesEngine;
use spp_core::policies::CachePolicy;
use spp_runtime::{CostModel, DistributedSetup, EpochSim, SetupConfig, SystemSpec};
use spp_sampler::Fanouts;

fn bench_des(c: &mut Criterion) {
    c.bench_function("des_100k_tasks", |b| {
        b.iter(|| {
            let mut des = DesEngine::new();
            let r1 = des.add_resource("a");
            let r2 = des.add_resource("b");
            let mut prev = None;
            for i in 0..100_000 {
                let r = if i % 2 == 0 { r1 } else { r2 };
                let deps: Vec<_> = prev.into_iter().collect();
                prev = Some(des.submit(r, 1e-6, &deps));
            }
            black_box(des.makespan())
        })
    });
}

fn bench_epoch_sim(c: &mut Criterion) {
    let ds = papers_sim(0.25, 1);
    let setup = DistributedSetup::build(
        &ds,
        SetupConfig {
            num_machines: 8,
            fanouts: Fanouts::new(vec![15, 10, 5]),
            batch_size: 8,
            policy: CachePolicy::VipAnalytic,
            alpha: 0.32,
            beta: 0.5,
            vip_reorder: true,
            seed: 1,
            ..SetupConfig::default()
        },
    );
    let cost = CostModel::mini_calibrated();
    let mut group = c.benchmark_group("epoch_simulation");
    group.sample_size(20);
    group.bench_function("salientpp_8gpu_epoch", |b| {
        let sim = EpochSim::new(&setup, cost, SystemSpec::pipelined(256));
        b.iter(|| black_box(sim.simulate_epoch(0).makespan))
    });
    group.finish();
}

criterion_group!(benches, bench_des, bench_epoch_sim);
criterion_main!(benches);
