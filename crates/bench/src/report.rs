//! Aligned text tables + CSV output for experiment results.

use std::fmt::Write as _;
use std::path::Path;

/// A simple result table: header row plus data rows, rendered as aligned
/// monospace text (right-aligned data columns, left-aligned first column)
/// and optionally written to CSV under `results/`.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(line, "{:<w$}", c, w = widths[0]);
                } else {
                    let _ = write!(line, "  {:>w$}", c, w = widths[i]);
                }
            }
            line
        };
        let header = fmt_row(&self.headers, &widths);
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        let _ = cols;
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV to `results/<name>.csv` (creating the
    /// directory), returning the path. Errors are printed, not fatal —
    /// harnesses should keep running without a writable disk.
    pub fn write_csv(&self, name: &str) -> Option<std::path::PathBuf> {
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create results/: {e}");
            return None;
        }
        let path = dir.join(format!("{name}.csv"));
        let mut csv = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            csv,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                csv,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        match std::fs::write(&path, csv) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

/// Formats seconds as a human-friendly duration string.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Geometric mean of a set of positive values (0 if empty).
pub fn geomean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("test", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "23".into()]);
        let r = t.render();
        assert!(r.contains("== test =="));
        assert!(r.contains("long-name"));
        // Right-aligned numeric column.
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines.last().unwrap().ends_with("23"));
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn row_length_checked() {
        Table::new("t", &["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn geomean_of_powers() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(0.0000025), "2.5us");
    }
}
