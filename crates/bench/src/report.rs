//! Aligned text tables, CSV output, and provenance-stamped JSON
//! reports for experiment results.

use spp_core::SweepStrategy;
use spp_runtime::pool::WorkerPool;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple result table: header row plus data rows, rendered as aligned
/// monospace text (right-aligned data columns, left-aligned first column)
/// and optionally written to CSV under `results/`.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    // spp-hot: stop(bench report assembly; linked to hot gathers only by name overlap with the matrix `row` accessors)
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(line, "{:<w$}", c, w = widths[0]);
                } else {
                    let _ = write!(line, "  {:>w$}", c, w = widths[i]);
                }
            }
            line
        };
        let header = fmt_row(&self.headers, &widths);
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        let _ = cols;
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV to `results/<name>.csv` (creating the
    /// directory), returning the path. Errors are printed, not fatal —
    /// harnesses should keep running without a writable disk.
    pub fn write_csv(&self, name: &str) -> Option<std::path::PathBuf> {
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create results/: {e}");
            return None;
        }
        let path = dir.join(format!("{name}.csv"));
        let mut csv = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            csv,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                csv,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        match std::fs::write(&path, csv) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

/// Schema version stamped into every `BENCH_*.json` header. Bump when
/// the shared header fields change shape.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Provenance-stamped JSON writer for `results/BENCH_*.json`.
///
/// Every harness that emits machine-readable results goes through this
/// helper so all `BENCH_*` files share one header: `schema_version`,
/// the bench name, the git commit the run came from, the worker-pool
/// budget ([`WorkerPool::global`]), and the VIP sweep strategy in
/// effect (the workspace default unless the harness pins one via
/// [`BenchReport::sweep_strategy`]). Body fields are raw JSON fragments
/// appended in insertion order — harnesses format numbers and nested
/// objects themselves, which keeps this serde-free.
#[derive(Clone, Debug)]
pub struct BenchReport {
    name: String,
    fields: Vec<(String, String)>,
}

impl BenchReport {
    /// A report named `name` (the file becomes
    /// `results/BENCH_<name>.json`), with the provenance header already
    /// stamped.
    pub fn new(name: &str) -> Self {
        let mut r = Self {
            name: name.to_string(),
            fields: Vec::new(),
        };
        r.field("schema_version", BENCH_SCHEMA_VERSION.to_string());
        r.string("bench", name);
        r.string("git_commit", &git_commit());
        r.field("pool_workers", WorkerPool::global().workers().to_string());
        r.string(
            "sweep_strategy",
            sweep_strategy_name(SweepStrategy::default()),
        );
        r
    }

    /// Overrides the stamped sweep strategy, for harnesses that pin one
    /// instead of running the workspace default.
    pub fn sweep_strategy(&mut self, s: SweepStrategy) -> &mut Self {
        let v = format!("\"{}\"", sweep_strategy_name(s));
        for (k, old) in &mut self.fields {
            if k == "sweep_strategy" {
                *old = v;
                return self;
            }
        }
        self.fields.push(("sweep_strategy".to_string(), v));
        self
    }

    /// Appends a field whose value is a raw JSON fragment (number,
    /// bool, or a pre-rendered array/object — possibly multi-line).
    pub fn field(&mut self, key: &str, raw_json: impl Into<String>) -> &mut Self {
        self.fields.push((key.to_string(), raw_json.into()));
        self
    }

    /// Appends a string-valued field (escaped).
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.field(key, format!("\"{}\"", json_escape(value)))
    }

    /// Renders the report as a JSON object, one field per line in
    /// insertion order.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            let sep = if i + 1 < self.fields.len() { "," } else { "" };
            let _ = writeln!(out, "  \"{}\": {v}{sep}", json_escape(k));
        }
        out.push_str("}\n");
        out
    }

    /// Writes `results/BENCH_<name>.json` (creating the directory),
    /// returning the path. Errors are printed, not fatal — mirrors
    /// [`Table::write_csv`].
    pub fn write(&self) -> Option<PathBuf> {
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create results/: {e}");
            return None;
        }
        let path = dir.join(format!("BENCH_{}.json", self.name));
        match std::fs::write(&path, self.render()) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

/// The kebab-case name a sweep strategy is reported under.
fn sweep_strategy_name(s: SweepStrategy) -> &'static str {
    match s {
        SweepStrategy::Auto => "auto",
        SweepStrategy::Dense => "dense",
        SweepStrategy::FrontierSparse => "frontier-sparse",
    }
}

/// The current git commit, or `"unknown"` outside a work tree.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats seconds as a human-friendly duration string.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Geometric mean of a set of positive values (0 if empty).
pub fn geomean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("test", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "23".into()]);
        let r = t.render();
        assert!(r.contains("== test =="));
        assert!(r.contains("long-name"));
        // Right-aligned numeric column.
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines.last().unwrap().ends_with("23"));
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn row_length_checked() {
        Table::new("t", &["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn geomean_of_powers() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(0.0000025), "2.5us");
    }

    #[test]
    fn bench_report_stamps_header_in_order() {
        let mut r = BenchReport::new("demo");
        r.field("answer", "42").string("note", "a \"quoted\"\nline");
        let s = r.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "{");
        assert_eq!(lines[1], "  \"schema_version\": 1,");
        assert_eq!(lines[2], "  \"bench\": \"demo\",");
        assert!(lines[3].starts_with("  \"git_commit\": \""), "{}", lines[3]);
        assert!(lines[4].starts_with("  \"pool_workers\": "), "{}", lines[4]);
        assert_eq!(lines[5], "  \"sweep_strategy\": \"auto\",");
        assert_eq!(lines[6], "  \"answer\": 42,");
        // Last field: escaped string, no trailing comma.
        assert_eq!(lines[7], "  \"note\": \"a \\\"quoted\\\"\\nline\"");
        assert_eq!(*lines.last().unwrap(), "}");
    }

    #[test]
    fn bench_report_strategy_override() {
        let mut r = BenchReport::new("demo");
        r.sweep_strategy(SweepStrategy::FrontierSparse);
        let s = r.render();
        assert!(s.contains("\"sweep_strategy\": \"frontier-sparse\""), "{s}");
        assert!(!s.contains("\"auto\""), "{s}");
    }

    #[test]
    fn bench_report_pool_workers_matches_global() {
        let want = WorkerPool::global().workers();
        let s = BenchReport::new("demo").render();
        assert!(s.contains(&format!("\"pool_workers\": {want},")), "{s}");
    }
}
