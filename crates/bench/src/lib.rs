//! Shared infrastructure for the experiment harnesses.
//!
//! Each binary in `src/bin/` regenerates one of the paper's tables or
//! figures (see DESIGN.md §5 for the index and EXPERIMENTS.md for
//! paper-vs-measured results). This library provides the text/CSV table
//! formatter, the provenance-stamped `results/BENCH_*.json` writer
//! ([`report::BenchReport`]), the standard experiment datasets, and a
//! tiny CLI parser.

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]
// Index-based loops over multiple parallel arrays are used deliberately
// throughout (CSR sweeps, per-partition load vectors); iterator zips would
// obscure which array drives the bound.
#![allow(clippy::needless_range_loop)]

pub mod cli;
pub mod datasets;
pub mod report;

pub use cli::Cli;
pub use datasets::{mag240_sim, papers_sim, products_sim, timing_variant};
pub use report::{BenchReport, Table};
