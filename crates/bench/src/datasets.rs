//! Standard experiment datasets.
//!
//! Two variants per benchmark graph:
//!
//! - the *access-pattern* variant (`papers_sim` etc.) keeps the paper's
//!   train/val/test skew (papers100M is ~99% unlabeled) and is used for
//!   the communication-volume experiments (Figure 2) and accuracy runs;
//! - the *timing* variant ([`timing_variant`]) enlarges the training set
//!   so each simulated epoch has enough distributed minibatch rounds for
//!   the pipeline to reach steady state — at 1/1000 scale the paper's
//!   1.1% train fraction would leave only ~4 rounds per epoch, which
//!   measures pipeline fill rather than throughput. The substitution is
//!   recorded in EXPERIMENTS.md.

use spp_graph::dataset::SyntheticSpec;
use spp_graph::Dataset;

/// Scaled stand-in for `ogbn-products` (paper: 2.4M vertices, avg degree
/// 51, 100 features, 8.2%/1.6%/90% split).
pub fn products_sim(scale: f64, seed: u64) -> Dataset {
    let n = ((24_000.0 * scale) as usize).max(512);
    SyntheticSpec::new("products-sim", n, 51.0, 50, 16)
        .split_fractions(0.082, 0.016, 0.9)
        .homophily(0.9)
        .degree_tail(1.3)
        .seed(seed)
        .build()
}

/// Scaled stand-in for `ogbn-papers100M` (paper: 111M vertices, avg
/// degree 29, 128 features, 1.1%/0.11%/0.19% split).
pub fn papers_sim(scale: f64, seed: u64) -> Dataset {
    let n = ((110_000.0 * scale) as usize).max(512);
    SyntheticSpec::new("papers-sim", n, 29.0, 64, 32)
        .split_fractions(0.011, 0.0011, 0.0019)
        .homophily(0.93)
        .degree_tail(1.2)
        .seed(seed)
        .build()
}

/// Scaled stand-in for `mag240c` (paper: 121M vertices, avg degree 21.5,
/// 768 features — 6× papers' dimension).
pub fn mag240_sim(scale: f64, seed: u64) -> Dataset {
    let n = ((60_000.0 * scale) as usize).max(512);
    SyntheticSpec::new("mag240-sim", n, 21.5, 384, 32)
        .split_fractions(0.009, 0.0011, 0.0007)
        .homophily(0.93)
        .degree_tail(1.2)
        .seed(seed)
        .build()
}

/// The timing variant of a benchmark: same graph family and feature
/// dimension, training fraction raised to 3% so a simulated epoch has
/// tens of rounds per machine. Returns `None` for unknown names
/// (known: `products`, `papers`, `mag240`).
pub fn timing_variant(name: &str, scale: f64, seed: u64) -> Option<Dataset> {
    let ds = match name {
        "products" => {
            let n = ((24_000.0 * scale) as usize).max(512);
            SyntheticSpec::new("products-sim-timing", n, 51.0, 50, 16)
                .split_fractions(0.082, 0.016, 0.2)
                .homophily(0.9)
                .degree_tail(1.3)
                .seed(seed)
                .build()
        }
        "papers" => {
            let n = ((110_000.0 * scale) as usize).max(512);
            SyntheticSpec::new("papers-sim-timing", n, 29.0, 64, 32)
                .split_fractions(0.03, 0.003, 0.005)
                .homophily(0.93)
                .degree_tail(1.2)
                .seed(seed)
                .build()
        }
        "mag240" => {
            let n = ((60_000.0 * scale) as usize).max(512);
            SyntheticSpec::new("mag240-sim-timing", n, 21.5, 384, 32)
                .split_fractions(0.03, 0.003, 0.002)
                .homophily(0.93)
                .degree_tail(1.2)
                .seed(seed)
                .build()
        }
        _ => return None,
    };
    Some(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shapes() {
        let p = products_sim(0.05, 1);
        assert_eq!(p.features.dim(), 50);
        let q = papers_sim(0.02, 1);
        assert_eq!(q.features.dim(), 64);
        assert!(q.split.train.len() * 50 < q.num_vertices());
        let m = mag240_sim(0.02, 1);
        assert_eq!(m.features.dim(), 384);
    }

    #[test]
    fn timing_variant_has_more_train() {
        let a = papers_sim(0.05, 1);
        let t = timing_variant("papers", 0.05, 1).unwrap();
        assert!(t.split.train.len() > 2 * a.split.train.len());
    }

    #[test]
    fn timing_variant_validates_name() {
        assert!(timing_variant("nope", 1.0, 0).is_none());
        assert!(timing_variant("products", 0.05, 0).is_some());
    }
}
