//! Ablation (beyond the paper's figures): sensitivity to the pipeline
//! depth. SALIENT++ keeps 10 minibatches in flight (§4.3); this sweep
//! shows diminishing returns past a handful of in-flight batches.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::report::fmt_secs;
use spp_bench::{papers_sim, Cli, Table};
use spp_core::policies::CachePolicy;
use spp_runtime::{CostModel, DistributedSetup, EpochSim, SetupConfig, SystemSpec};
use spp_sampler::Fanouts;

fn main() {
    let cli = Cli::parse();
    let ds = papers_sim(cli.scale, cli.seed);
    let epochs = cli.epochs_or(3);
    let cost = CostModel::mini_calibrated();
    let setup = DistributedSetup::build(
        &ds,
        SetupConfig {
            num_machines: 8,
            fanouts: Fanouts::new(vec![15, 10, 5]),
            batch_size: 8,
            policy: CachePolicy::VipAnalytic,
            alpha: 0.32,
            beta: 0.1,
            vip_reorder: true,
            seed: cli.seed,
            ..SetupConfig::default()
        },
    );

    let depths = [1usize, 2, 3, 4, 6, 8, 10, 16];
    let mut t = Table::new(
        "Pipeline-depth ablation (papers, 8 GPUs, a=0.32)",
        &["depth", "per-epoch time", "vs depth=10"],
    );
    let mut times = Vec::new();
    for &d in &depths {
        let spec = SystemSpec {
            pipeline_depth: d,
            ..SystemSpec::pipelined(256)
        };
        times.push(EpochSim::new(&setup, cost, spec).mean_epoch_time(epochs));
    }
    let t10 = times[depths.iter().position(|&d| d == 10).unwrap()];
    for (&d, &time) in depths.iter().zip(&times) {
        t.row(vec![
            format!("{d}"),
            fmt_secs(time),
            format!("{:.2}x", time / t10),
        ]);
    }
    t.print();
    t.write_csv("pipeline_depth");
    println!(
        "\ntakeaway: most of the benefit arrives by depth ~4; SALIENT++'s 10 leaves\n\
         headroom for stage-latency jitter that a deterministic simulation lacks."
    );
}
