//! Online serving benchmark: static-only vs two-tier caching under a
//! skewed request trace.
//!
//! Replays a seeded Pareto-skewed open-loop trace (10k requests by
//! default, `--quick` shrinks it) against one machine of a 2-machine
//! deployment in two configurations with *equal total cache capacity*:
//!
//! - **static-only** — the full capacity spent on the VIP-ranked static
//!   cache (replication factor α);
//! - **two-tier** — half the capacity static (α/2), the other half a
//!   dynamic LRU overlay that learns the request skew online.
//!
//! The trace combines two properties the offline VIP analysis cannot
//! see: the popularity permutation is seeded independently of the VIP
//! ranking (an unpredicted hot set), and requests are bursty — a
//! fraction re-reference recently queried vertices (flash crowds /
//! sessions). A static tier frozen at deployment time can exploit
//! neither; the LRU overlay exploits both — the regime where spending
//! half the budget on a dynamic tier pays for itself.
//!
//! Hard assertions (exit 1 on failure): every request is completed or
//! rejected-with-reason; the two-tier combined hit rate beats
//! static-only at equal capacity and clears a minimum bar; serving is
//! bit-identical at 1 vs 2 vs 8 classification workers (including the
//! per-tier cache attribution report, byte for byte); and sketch p99
//! latency is monotone non-increasing across a burstiness sweep (more
//! re-referencing means more overlay hits means shorter tails). Emits
//! `results/BENCH_serving.json` (throughput, sketch p50/p99/p999
//! virtual latency, per-tier hit rates, CacheReport/CommReport
//! attribution sections) and `results/trace_serving.{json,jsonl}` for
//! `cargo xtask validate-trace --stages --attrib`.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::{BenchReport, Cli};
use spp_gnn::{Arch, GnnModel};
use spp_graph::dataset::SyntheticSpec;
use spp_graph::QuantScheme;
use spp_runtime::{DistributedSetup, SetupConfig, WorkerPool};
use spp_sampler::Fanouts;
use spp_serve::{generate_open_loop, InferenceServer, ServeConfig, ServeReport, TraceConfig};
use spp_telemetry as tel;

/// Serving fanouts (2 hops — must match the model depth).
const FANOUTS: [usize; 2] = [5, 3];
/// Total cache budget as a replication factor.
const ALPHA_TOTAL: f64 = 0.2;
/// Pareto popularity skew of the request trace.
const SKEW: f64 = 4.0;
/// Short-window re-reference probability of the request trace.
const BURSTINESS: f64 = 0.6;
/// Burstiness sweep for the p99-monotonicity assertion.
const BURSTINESS_SWEEP: [f64; 3] = [0.0, 0.45, 0.9];
/// Minimum acceptable two-tier combined hit rate.
const MIN_COMBINED_HIT_RATE: f64 = 0.10;
/// Comm-matrix windows cut from the virtual makespan.
const COMM_WINDOWS: usize = 4;

fn check(ok: bool, what: &str) {
    if ok {
        println!("check ok: {what}");
    } else {
        eprintln!("CHECK FAILED: {what}");
        std::process::exit(1);
    }
}

fn tier_json(r: &ServeReport) -> String {
    let completed = r.completions.len().max(1);
    // Latency quantiles come from the mergeable HDR sketch, not the raw
    // completion vector: the same numbers the attribution layer exports.
    format!(
        concat!(
            "{{\"completed\": {}, \"rejected\": {}, \"throughput_rps\": {:.2}, ",
            "\"p50_latency_ms\": {:.4}, \"p99_latency_ms\": {:.4}, ",
            "\"p999_latency_ms\": {:.4}, ",
            "\"makespan_s\": {:.6}, \"static_hit_rate\": {:.4}, ",
            "\"overlay_hit_rate\": {:.4}, \"combined_hit_rate\": {:.4}, ",
            "\"overlay_evictions\": {}, \"bytes_fetched\": {}, ",
            "\"bytes_per_request\": {:.1}}}"
        ),
        r.completions.len(),
        r.rejections.len(),
        r.throughput(),
        r.latency_sketch.quantile_secs(0.5) * 1e3,
        r.latency_sketch.quantile_secs(0.99) * 1e3,
        r.latency_sketch.quantile_secs(0.999) * 1e3,
        r.makespan,
        r.cache.static_hit_rate(),
        r.cache.overlay_hit_rate(),
        r.cache.combined_hit_rate(),
        r.cache.evictions,
        r.cache.bytes_fetched,
        r.cache.bytes_fetched as f64 / completed as f64,
    )
}

fn main() {
    let cli = Cli::parse();
    // Honour SPP_TRACE when present; otherwise force the recorder on —
    // the emitted trace is part of this harness's contract.
    if !tel::init_from_env() {
        tel::set_enabled(true);
    }

    let requests = if cli.quick { 2_000 } else { 10_000 };
    // Serving substrate: moderate flat degree (no dominant hubs, so the
    // sampled fanout covers whole neighborhoods and batches recur over
    // the same vertices) and high homophily (tight neighborhoods). This
    // is the regime online serving actually presents: locality comes
    // from the request stream, not from a handful of global hubs.
    let n_target = ((24_000.0 * cli.scale * 0.1) as usize).max(512);
    let ds = SyntheticSpec::new("serving-sim", n_target, 10.0, 50, 16)
        .split_fractions(0.08, 0.02, 0.9)
        .homophily(0.93)
        .degree_tail(3.0)
        .seed(cli.seed)
        .build();
    let n = ds.graph.num_vertices();
    let dim = ds.features.dim();
    let model = GnnModel::new(Arch::Sage, &[dim, 32, ds.num_classes], cli.seed ^ 0x6e17);
    let fanouts = Fanouts::new(FANOUTS.to_vec());

    let build = |alpha: f64, cache_scheme: QuantScheme| {
        DistributedSetup::build(
            &ds,
            SetupConfig {
                num_machines: 2,
                fanouts: fanouts.clone(),
                batch_size: 16,
                alpha,
                cache_scheme,
                seed: cli.seed,
                ..SetupConfig::default()
            },
        )
    };
    // Same partitioning/reordering (alpha only sizes the cache), so the
    // setups see identical vertex ids and differ only in tiering.
    let setup_static = build(ALPHA_TOTAL, QuantScheme::F32);
    let setup_half = build(ALPHA_TOTAL / 2.0, QuantScheme::F32);
    // Equal-RAM quantized tiering: f16 rows are half the bytes, so the
    // same byte budget as `setup_half`'s static tier pins twice the
    // vertices (α instead of α/2), and likewise for the overlay below.
    let setup_quant = build(ALPHA_TOTAL, QuantScheme::F16);
    let full_cache = setup_static.stores[0].cache().len();
    let half_cache = setup_half.stores[0].cache().len();
    let overlay_cap = full_cache - half_cache;
    let quant_static = setup_quant.stores[0].cache().len();
    let quant_overlay_cap = 2 * overlay_cap;
    println!(
        "dataset {n} vertices, dim {dim}; cache budget {full_cache} rows \
         (static-only) vs {half_cache} static + {overlay_cap} overlay \
         vs {quant_static} static + {quant_overlay_cap} overlay (f16, equal RAM)"
    );

    let make_trace = |burstiness: f64| {
        generate_open_loop(&TraceConfig {
            num_requests: requests,
            num_vertices: n,
            arrival_rate: 20_000.0,
            skew: SKEW,
            burstiness,
            seed: cli.seed ^ 0x5eed_f00d,
        })
    };
    let trace = make_trace(BURSTINESS);

    let serve = |setup: &DistributedSetup,
                 overlay_capacity: usize,
                 scheme: QuantScheme,
                 workers: usize,
                 trace: &[spp_serve::InferenceRequest]| {
        let cfg = ServeConfig {
            max_batch_size: 16,
            max_delay: 1e-3,
            queue_capacity: 512,
            overlay_capacity,
            overlay_scheme: scheme,
            wire_scheme: scheme,
            fanouts: fanouts.clone(),
            seed: cli.seed,
            pool: WorkerPool::new(workers),
            ..ServeConfig::default()
        };
        InferenceServer::new(setup, &model, 0, cfg).run(trace)
    };

    let workers = WorkerPool::global().workers();
    let static_only = serve(&setup_static, 0, QuantScheme::F32, workers, &trace);
    let two_tier = serve(&setup_half, overlay_cap, QuantScheme::F32, workers, &trace);
    let quant_tier = serve(
        &setup_quant,
        quant_overlay_cap,
        QuantScheme::F16,
        workers,
        &trace,
    );
    let det1 = serve(&setup_half, overlay_cap, QuantScheme::F32, 1, &trace);
    let det2 = serve(&setup_half, overlay_cap, QuantScheme::F32, 2, &trace);
    let det8 = serve(&setup_half, overlay_cap, QuantScheme::F32, 8, &trace);

    // Burstiness sweep on the two-tier config: the re-reference
    // probability is the overlay's food supply, so the p99 tail must
    // not grow as burstiness rises.
    let sweep: Vec<(f64, ServeReport)> = BURSTINESS_SWEEP
        .iter()
        .map(|&b| {
            let t = make_trace(b);
            (
                b,
                serve(&setup_half, overlay_cap, QuantScheme::F32, workers, &t),
            )
        })
        .collect();

    for (name, r) in [
        ("static-only", &static_only),
        ("two-tier", &two_tier),
        ("two-tier f16 (equal RAM)", &quant_tier),
    ] {
        println!(
            "{name}: {} completed, {} rejected, {:.0} req/s, p50 {:.3} ms, \
             p99 {:.3} ms, p999 {:.3} ms, hit rates static {:.3} overlay {:.3} \
             combined {:.3}",
            r.completions.len(),
            r.rejections.len(),
            r.throughput(),
            r.latency_sketch.quantile_secs(0.5) * 1e3,
            r.latency_sketch.quantile_secs(0.99) * 1e3,
            r.latency_sketch.quantile_secs(0.999) * 1e3,
            r.cache.static_hit_rate(),
            r.cache.overlay_hit_rate(),
            r.cache.combined_hit_rate(),
        );
    }
    for (b, r) in &sweep {
        println!(
            "burstiness {b:.2}: p99 {:.3} ms, combined hit rate {:.3}",
            r.latency_sketch.quantile_secs(0.99) * 1e3,
            r.cache.combined_hit_rate(),
        );
    }

    // Reject-with-reason contract: nothing is silently dropped.
    check(
        static_only.total_requests() == requests && two_tier.total_requests() == requests,
        "every request completed or rejected with a reason",
    );
    // The overlay must earn its half of the budget on a skewed trace.
    check(
        two_tier.cache.combined_hit_rate() > static_only.cache.combined_hit_rate(),
        "two-tier combined hit rate beats static-only at equal capacity",
    );
    check(
        two_tier.cache.combined_hit_rate() >= MIN_COMBINED_HIT_RATE,
        "two-tier combined hit rate clears the minimum bar",
    );
    // Equal-RAM quantized tiering: the f16 tiers must actually hold
    // ~2x the entries of the f32 two-tier config for the same bytes...
    check(
        10 * (quant_static + quant_overlay_cap) >= 19 * (half_cache + overlay_cap),
        "f16 tiers hold >=1.9x the entries of the f32 tiers at equal RAM",
    );
    // ...and convert that extra coverage into a better hit rate.
    check(
        quant_tier.cache.combined_hit_rate() > two_tier.cache.combined_hit_rate(),
        "f16 equal-RAM combined hit rate beats the f32 two-tier baseline",
    );
    // The f16 wire halves every fetched row.
    check(
        quant_tier.cache.bytes_fetched < two_tier.cache.bytes_fetched,
        "quantized serving moves fewer bytes on the wire",
    );
    // §11 determinism: classification worker count is unobservable —
    // down to the per-tier attribution report, byte for byte.
    check(
        det1.completions == det2.completions
            && det2.completions == det8.completions
            && det1.batches == det8.batches,
        "serving bit-identical at 1 vs 2 vs 8 workers",
    );
    let det_cache = det1.cache_report("det").to_json();
    check(
        det_cache == det2.cache_report("det").to_json()
            && det_cache == det8.cache_report("det").to_json(),
        "cache attribution report bit-identical at 1 vs 2 vs 8 workers",
    );
    check(
        det1.completions == two_tier.completions,
        "global-pool run matches the fixed-pool runs",
    );
    // The overlay converts re-referencing into shorter tails: sketch
    // p99 must be monotone non-increasing across the burstiness sweep.
    check(
        sweep
            .windows(2)
            .all(|w| w[1].1.latency_sketch.quantile(0.99) <= w[0].1.latency_sketch.quantile(0.99)),
        "sketch p99 latency monotone non-increasing in burstiness",
    );

    // Publish the attribution reports so the Chrome trace written below
    // carries the `attrib` section (`validate-trace --attrib`).
    for (label, r) in [
        ("static_only", &static_only),
        ("two_tier", &two_tier),
        ("two_tier_f16_equal_ram", &quant_tier),
    ] {
        tel::publish_cache_report(r.cache_report(label));
        tel::publish_comm_report(r.comm_report(label, COMM_WINDOWS));
    }

    print!("{}", tel::summary());
    match tel::write_trace_files(std::path::Path::new("results"), "serving") {
        Ok(paths) => {
            for p in &paths {
                println!("trace written: {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("cannot write trace files: {e}");
            std::process::exit(1);
        }
    }

    let mut report = BenchReport::new("serving");
    report
        .field("scale", format!("{}", cli.scale))
        .field("seed", cli.seed.to_string())
        .field("requests", requests.to_string())
        .field("skew", format!("{SKEW}"))
        .field("machines", "2")
        .field("alpha_total", format!("{ALPHA_TOTAL}"))
        .field("cache_rows_total", full_cache.to_string())
        .field("overlay_rows", overlay_cap.to_string())
        .field("quant_static_rows", quant_static.to_string())
        .field("quant_overlay_rows", quant_overlay_cap.to_string())
        .field("burstiness", format!("{BURSTINESS}"))
        .field("windows", COMM_WINDOWS.to_string())
        .field("workers", workers.to_string())
        .field("static_only", tier_json(&static_only))
        .field("two_tier", tier_json(&two_tier))
        .field("two_tier_f16_equal_ram", tier_json(&quant_tier));
    // Burstiness sweep: one object per level, keyed by the level.
    let sweep_json = sweep
        .iter()
        .map(|(b, r)| {
            format!(
                "{{\"burstiness\": {b}, \"p99_latency_ms\": {:.4}, \
                 \"combined_hit_rate\": {:.4}}}",
                r.latency_sketch.quantile_secs(0.99) * 1e3,
                r.cache.combined_hit_rate(),
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    report.field("burstiness_sweep", format!("[{sweep_json}]"));
    // Attribution: the same CacheReport/CommReport JSON the Chrome
    // trace embeds, inlined so bench-diff and humans see it in one
    // place.
    let cache_json = [
        ("static_only", &static_only),
        ("two_tier", &two_tier),
        ("two_tier_f16_equal_ram", &quant_tier),
    ]
    .iter()
    .map(|(label, r)| r.cache_report(label).to_json())
    .collect::<Vec<_>>()
    .join(", ");
    report.field("cache_reports", format!("[{cache_json}]"));
    let comm_json = [
        ("two_tier", &two_tier),
        ("two_tier_f16_equal_ram", &quant_tier),
    ]
    .iter()
    .map(|(label, r)| r.comm_report(label, COMM_WINDOWS).to_json())
    .collect::<Vec<_>>()
    .join(", ");
    report.field("comm_reports", format!("[{comm_json}]"));
    if let Some(path) = report.write() {
        println!("wrote {}", path.display());
    }
}
