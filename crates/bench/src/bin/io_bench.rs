//! io_bench: page locality of the out-of-core feature store.
//!
//! Builds a ≥1M-vertex citation graph through `spp-store`'s streaming
//! CSR builder (bounded memory: chunk-sorted edge runs + k-way merge),
//! then writes the same synthetic feature table into two on-disk paged
//! stores at *equal page size* — one laid out by descending VIP score
//! (`PagedPermutation::from_scores`), one by a seeded random
//! permutation — and replays identical sampled-minibatch epochs against
//! both. The VIP layout concentrates the frequently sampled vertices on
//! few pages, so it must touch strictly fewer bytes and fault strictly
//! fewer pages per epoch; the harness hard-asserts both (the CI gate).
//!
//! Emits `results/BENCH_io.json` and, under `SPP_TRACE=1`, per-layout
//! `StoreReport` attribution plus `results/trace_io.{json,jsonl}` for
//! `cargo xtask validate-trace --attrib`.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spp_bench::{BenchReport, Cli, Table};
use spp_core::VipModel;
use spp_graph::generate::citation_edges;
use spp_graph::{CsrGraph, PagedPermutation, Permutation, QuantScheme, VertexId};
use spp_sampler::{batch_stream_seed, Fanouts, MinibatchIter, NodeWiseSampler};
use spp_store::{
    FeatureStore, MmapStore, PermutedStore, StoreBuilder, StoreStats, StreamingCsrBuilder,
};
use spp_telemetry as tel;
use std::path::Path;

const DIM: usize = 32;
const PAGE_BYTES: usize = 4096;
const SCHEME: QuantScheme = QuantScheme::F16;
const CHUNK_EDGES: usize = 1 << 20;

/// Deterministic synthetic feature row for original vertex `v`. Values
/// stay below 2048 so the f16 tier stores them exactly.
fn fill_row(v: VertexId, out: &mut [f32]) {
    let h = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for (j, x) in out.iter_mut().enumerate() {
        *x = ((h.wrapping_add(j as u64 * 0x517C_C1B7_2722_0A95) >> 16) % 1024) as f32;
    }
}

/// Streams the citation edges through the out-of-core CSR builder.
fn build_graph(n: usize, target_edges: usize, seed: u64, spill: &Path) -> CsrGraph {
    let mut b = StreamingCsrBuilder::new(n, spill).chunk_edges(CHUNK_EDGES);
    for (src, dst) in citation_edges(n, target_edges, 16, 0.7, 1.4, seed) {
        b.add_edge(src, dst).expect("spill edge run");
    }
    b.finish().expect("merge edge runs")
}

/// Writes a paged store whose physical slot `s` holds the features of
/// original vertex `perm.to_old(s)`, and reopens it as an mmap-backed
/// store viewed by original ids.
fn build_store(dir: &Path, n: usize, perm: &Permutation) -> MmapStore {
    let _ = std::fs::remove_dir_all(dir);
    StoreBuilder::new(SCHEME)
        .page_bytes(PAGE_BYTES)
        .build_with(dir, n, DIM, |slot, out| {
            fill_row(perm.to_old(slot as VertexId), out);
        })
        .expect("write paged store");
    MmapStore::open(dir).expect("reopen paged store")
}

/// One epoch of minibatch gathers against `store` (addressed by
/// original ids); returns the epoch's page/byte traffic delta. Each
/// minibatch is one residency window (`begin_epoch`): the model is a
/// bounded page buffer flushed between batches, so a batch faults every
/// *distinct* page it touches and bytes/epoch reward layouts that pack
/// a batch's rows onto few pages.
fn run_epoch(store: &dyn FeatureStore, batches: &[Vec<VertexId>]) -> StoreStats {
    let before = store.stats();
    let mut row = vec![0.0f32; DIM];
    for nodes in batches {
        store.begin_epoch();
        for &v in nodes {
            store.read_row_into(v, &mut row);
        }
    }
    store.stats().since(&before)
}

fn main() {
    let cli = Cli::parse();
    let traced = tel::init_from_env();
    let n = ((1_000_000.0 * cli.scale) as usize).max(20_000);
    let target_edges = n * 8;
    let epochs = cli.epochs_or(3);
    let fanouts = Fanouts::new(vec![10, 5]);
    let batch_size = 256;

    let out_root = Path::new("results/store_io");
    std::fs::create_dir_all(out_root).expect("create results/store_io");
    let g = build_graph(n, target_edges, cli.seed, &out_root.join("spill"));
    assert_eq!(g.num_vertices(), n);

    // Every 10th vertex trains — enough seeds that the VIP tail matters.
    let train: Vec<VertexId> = (0..n as VertexId).step_by(10).collect();
    let page_rows = PAGE_BYTES / SCHEME.row_bytes(DIM);

    // VIP layout: descending inclusion probability, paged.
    let scores = VipModel::new(fanouts.clone(), batch_size).scores(&g, &train);
    let vip_paged = PagedPermutation::from_scores(&scores, page_rows);

    // Random layout: seeded Fisher–Yates over the identity order.
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rng = StdRng::seed_from_u64(cli.seed ^ 0x5AFE_CAFE);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..i + 1));
    }
    let rand_perm = Permutation::from_order(order);

    let vip_store = build_store(&out_root.join("vip"), n, vip_paged.permutation());
    let rand_store = build_store(&out_root.join("random"), n, &rand_perm);
    assert_eq!(vip_store.meta().page_rows as usize, page_rows);

    let vip_view = PermutedStore::new(&vip_store, vip_paged.permutation());
    let rand_view = PermutedStore::new(&rand_store, &rand_perm);

    // Identical sampled batches replay against both layouts.
    let sampler = NodeWiseSampler::new(&g, fanouts);
    let mut vip_total = StoreStats::default();
    let mut rand_total = StoreStats::default();
    for epoch in 0..epochs as u64 {
        let batches: Vec<Vec<VertexId>> = {
            let _sample = tel::span!("io.sample_epoch");
            MinibatchIter::new(&train, batch_size, cli.seed, epoch)
                .enumerate()
                .map(|(i, batch)| {
                    let mut rng =
                        StdRng::seed_from_u64(batch_stream_seed(cli.seed, epoch, i as u64));
                    sampler.sample(&batch, &mut rng).nodes
                })
                .collect()
        };
        {
            let _replay = tel::span!("io.replay_epoch.vip");
            vip_total = vip_total.merged(&run_epoch(&vip_view, &batches));
        }
        {
            let _replay = tel::span!("io.replay_epoch.random");
            rand_total = rand_total.merged(&run_epoch(&rand_view, &batches));
        }
    }

    let per_epoch = |field: u64| field as f64 / epochs as f64;
    let vip_bytes = per_epoch(vip_total.bytes_read);
    let rand_bytes = per_epoch(rand_total.bytes_read);
    let vip_faults = per_epoch(vip_total.pages_faulted);
    let rand_faults = per_epoch(rand_total.pages_faulted);

    // The deliverable claim, asserted: VIP page reordering strictly
    // reduces bytes touched and pages faulted per epoch at equal page
    // size. CI runs this binary, so a locality regression fails the job.
    assert!(
        vip_bytes < rand_bytes,
        "VIP layout must touch fewer bytes/epoch (vip {vip_bytes}, random {rand_bytes})"
    );
    assert!(
        vip_faults < rand_faults,
        "VIP layout must fault fewer pages/epoch (vip {vip_faults}, random {rand_faults})"
    );

    let mut t = Table::new(
        "io_bench: epoch page traffic, VIP vs random layout (equal page size)",
        &["layout", "bytes/epoch", "pages faulted/epoch", "fault rate"],
    );
    let rate = |tot: &StoreStats| tot.pages_faulted as f64 / (tot.pages_read.max(1)) as f64;
    t.row(vec![
        "vip".into(),
        format!("{vip_bytes:.0}"),
        format!("{vip_faults:.1}"),
        format!("{:.4}", rate(&vip_total)),
    ]);
    t.row(vec![
        "random".into(),
        format!("{rand_bytes:.0}"),
        format!("{rand_faults:.1}"),
        format!("{:.4}", rate(&rand_total)),
    ]);
    t.print();

    let layout_json = |tot: &StoreStats| {
        format!(
            "{{\"bytes_read_per_epoch\": {:.1}, \"pages_faulted_per_epoch\": {:.1}, \
             \"pages_read_per_epoch\": {:.1}, \"fault_rate\": {:.6}}}",
            per_epoch(tot.bytes_read),
            per_epoch(tot.pages_faulted),
            per_epoch(tot.pages_read),
            rate(tot)
        )
    };
    let mut rep = BenchReport::new("io");
    rep.field("scale", format!("{}", cli.scale))
        .field("seed", format!("{}", cli.seed))
        .field("vertices", format!("{n}"))
        .field("edges", format!("{}", g.num_edges()))
        .field("train_vertices", format!("{}", train.len()))
        .field("epochs", format!("{epochs}"))
        .field("dim", format!("{DIM}"))
        .field("page_bytes", format!("{PAGE_BYTES}"))
        .field("page_rows", format!("{page_rows}"))
        .field("chunk_edges", format!("{CHUNK_EDGES}"))
        .field("vip", layout_json(&vip_total))
        .field("random", layout_json(&rand_total))
        .field("locality_gain", format!("{:.4}", rand_bytes / vip_bytes))
        .field("pass", "true");
    rep.write();

    if traced {
        for (label, store, tot) in [
            ("vip", &vip_store, &vip_total),
            ("random", &rand_store, &rand_total),
        ] {
            tel::publish_store_report(tel::StoreReport {
                label: label.into(),
                backend: "mmap".into(),
                scheme: "f16".into(),
                page_rows: store.meta().page_rows as u64,
                page_bytes: store.meta().page_bytes() as u64,
                pages_read: tot.pages_read,
                pages_faulted: tot.pages_faulted,
                pages_hit: tot.pages_hit,
                bytes_read: tot.bytes_read,
            });
        }
        match tel::write_trace_files(Path::new("results"), "io") {
            Ok(paths) => {
                for p in &paths {
                    println!("trace written: {}", p.display());
                }
            }
            Err(e) => eprintln!("trace write failed: {e}"),
        }
    }
}
