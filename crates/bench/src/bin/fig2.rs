//! Figure 2: comparison of caching policies with respect to remote
//! feature communication volume. 3-layer GraphSAGE sampling with fanouts
//! (5,5,5), (10,10,10), (15,10,5); minibatches from an 8-way
//! METIS-style partition of the papers benchmark; replication factors
//! α ∈ {0.05, 0.1, 0.2, 0.5, 1.0}. Panel (d) = geometric-mean improvement
//! over no caching across fanouts.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::report::geomean;
use spp_bench::{papers_sim, Cli, Table};
use spp_core::policies::{CachePolicy, PolicyContext};
use spp_core::{CacheBuilder, StaticCache};
use spp_runtime::{AccessCounts, DistributedSetup, SetupConfig};
use spp_sampler::Fanouts;

const ALPHAS: [f64; 5] = [0.05, 0.1, 0.2, 0.5, 1.0];

fn main() {
    let cli = Cli::parse();
    let ds = papers_sim(cli.scale, cli.seed);
    let k = 8usize;
    let batch = 8usize;
    let epochs = cli.epochs_or(3);
    let fanout_sets = [
        Fanouts::new(vec![5, 5, 5]),
        Fanouts::new(vec![10, 10, 10]),
        Fanouts::new(vec![15, 10, 5]),
    ];

    // One partitioning shared by all fanout settings (as in the paper).
    let cfg = SetupConfig {
        num_machines: k,
        fanouts: fanout_sets[2].clone(),
        batch_size: batch,
        ..SetupConfig::default()
    };
    let (partitioning, train_of_part) = DistributedSetup::partition(&ds, &cfg);
    println!(
        "dataset {} ({} vertices), 8-way partition, edge cut {:.1}%, {} measurement epochs\n",
        ds.name,
        ds.num_vertices(),
        100.0 * spp_partition::metrics::edge_cut_fraction(&ds.graph, &partitioning),
        epochs
    );

    // improvements[policy][alpha] collected across fanouts for panel (d).
    let mut improvements: Vec<Vec<Vec<f64>>> =
        vec![vec![Vec::new(); ALPHAS.len()]; CachePolicy::ALL.len()];

    for fanouts in &fanout_sets {
        let counts = AccessCounts::measure(
            &ds.graph,
            &train_of_part,
            fanouts,
            batch,
            epochs,
            cli.seed ^ 1,
        );
        let no_cache = counts.no_cache_volume(&partitioning);

        let mut table = Table::new(
            &format!(
                "Figure 2, fanouts {fanouts}: remote vertices/epoch (no caching: {no_cache:.0})"
            ),
            &["policy", "a=0.05", "a=0.10", "a=0.20", "a=0.50", "a=1.00"],
        );
        for (pi, &policy) in CachePolicy::ALL.iter().enumerate() {
            if policy == CachePolicy::None {
                table.row(
                    std::iter::once("none".to_string())
                        .chain(ALPHAS.iter().map(|_| format!("{no_cache:.0}")))
                        .collect(),
                );
                continue;
            }
            // Rank once per partition, reuse across alphas.
            let rankings: Vec<Vec<spp_graph::VertexId>> = (0..k as u32)
                .map(|p| {
                    if policy == CachePolicy::Oracle {
                        counts.oracle_ranking(&partitioning, p as usize)
                    } else {
                        PolicyContext {
                            graph: &ds.graph,
                            partitioning: &partitioning,
                            part: p,
                            local_train: &train_of_part[p as usize],
                            fanouts: fanouts.clone(),
                            batch_size: batch,
                            seed: cli.seed ^ 0xCAFE,
                            oracle_counts: &[],
                        }
                        .rank(policy)
                    }
                })
                .collect();
            let mut row = vec![policy.label().to_string()];
            for (ai, &alpha) in ALPHAS.iter().enumerate() {
                let builder = CacheBuilder::new(alpha, ds.num_vertices(), k);
                let caches: Vec<StaticCache> = rankings.iter().map(|r| builder.build(r)).collect();
                let vol = counts.total_volume(&partitioning, &caches);
                row.push(format!("{vol:.0}"));
                improvements[pi][ai].push(no_cache / vol.max(1.0));
            }
            table.row(row);
        }
        table.print();
        table.write_csv(&format!("fig2_{fanouts}"));
        println!();
    }

    // Panel (d): geometric-mean improvement across fanouts.
    let mut d = Table::new(
        "Figure 2(d): geo-mean improvement over no caching (higher is better)",
        &["policy", "a=0.05", "a=0.10", "a=0.20", "a=0.50", "a=1.00"],
    );
    for (pi, &policy) in CachePolicy::ALL.iter().enumerate() {
        if policy == CachePolicy::None {
            continue;
        }
        let mut row = vec![policy.label().to_string()];
        for imps in &improvements[pi] {
            row.push(format!("{:.2}x", geomean(imps)));
        }
        d.row(row);
    }
    d.print();
    d.write_csv("fig2_d");

    // Shape checks vs the paper's observations.
    let g = |policy: CachePolicy, ai: usize| {
        geomean(&improvements[CachePolicy::ALL.iter().position(|&p| p == policy).unwrap()][ai])
    };
    println!("\nshape vs paper (Fig 2):");
    println!(
        "  VIP within {:.0}% of oracle at a=0.20 (paper: within 5%)",
        100.0 * (g(CachePolicy::Oracle, 2) / g(CachePolicy::VipAnalytic, 2) - 1.0)
    );
    println!(
        "  VIP vs wPR at a=0.50: {:.2}x better (paper: up to 4x)",
        g(CachePolicy::VipAnalytic, 3) / g(CachePolicy::WeightedReversePagerank, 3)
    );
    println!(
        "  VIP vs degree at a=0.50: {:.2}x better (paper: large gap)",
        g(CachePolicy::VipAnalytic, 3) / g(CachePolicy::Degree, 3)
    );
    println!(
        "  analytic vs simulation at a=1.00: {:.2}x better (paper: 3.2x)",
        g(CachePolicy::VipAnalytic, 4) / g(CachePolicy::Simulation, 4)
    );
}
