//! Ablation for the paper's scope boundary (§3): the analytic VIP model
//! covers node-wise sampling only; for other schemes the *empirical*
//! estimate ("sim.") still applies. Under a layer-wise sampler this
//! harness pits empirical layer-wise access counts against the
//! (scheme-mismatched) node-wise analytic model — exposing both sides of
//! the paper's empirical-estimation trade-off: matched measurements win
//! the hot head once they have enough samples, while the analytic prior
//! ranks the rarely-touched tail better.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_bench::{papers_sim, Cli, Table};
use spp_core::{CacheBuilder, StaticCache, VipModel};
use spp_graph::VertexId;
use spp_runtime::{DistributedSetup, SetupConfig};
use spp_sampler::layerwise::LayerWiseSampler;
use spp_sampler::{Fanouts, MinibatchIter};

fn main() {
    let cli = Cli::parse();
    let ds = papers_sim(cli.scale, cli.seed);
    let n = ds.num_vertices();
    let k = 8usize;
    let batch = 8usize;
    let budgets = vec![120usize, 60, 30];
    let epochs = cli.epochs_or(2);

    let cfg = SetupConfig {
        num_machines: k,
        fanouts: Fanouts::new(vec![15, 10, 5]),
        batch_size: batch,
        ..SetupConfig::default()
    };
    let (part, train) = DistributedSetup::partition(&ds, &cfg);

    // Access counts under the LAYER-WISE sampler: one pass for policy
    // fitting (seed A), a second, independent pass for evaluation (seed B)
    // so the empirical policy cannot overfit the evaluated epochs.
    let measure = |tag: u64| -> Vec<Vec<u64>> {
        train
            .iter()
            .enumerate()
            .map(|(m, t)| {
                let sampler = LayerWiseSampler::new(&ds.graph, budgets.clone());
                let mut rng = StdRng::seed_from_u64(tag ^ (m as u64) << 8);
                let mut c = vec![0u64; n];
                for e in 0..epochs {
                    for b in MinibatchIter::new(t, batch, tag ^ m as u64, e as u64) {
                        let mfg = sampler.sample(&b, &mut rng);
                        for &v in &mfg.nodes {
                            c[v as usize] += 1;
                        }
                    }
                }
                c
            })
            .collect()
    };
    let fit_counts = measure(101);
    let eval_counts = measure(707);

    let volume = |rankings: &[Vec<VertexId>], alpha: f64| -> f64 {
        let builder = CacheBuilder::new(alpha, n, k);
        (0..k)
            .map(|m| {
                let cache: StaticCache = builder.build(&rankings[m]);
                eval_counts[m]
                    .iter()
                    .enumerate()
                    .filter(|&(v, _)| {
                        part.part_of(v as VertexId) != m as u32 && !cache.contains(v as VertexId)
                    })
                    .map(|(_, &c)| c as f64)
                    .sum::<f64>()
                    / epochs as f64
            })
            .sum()
    };
    let rank_scores = |scores: &[Vec<f64>]| -> Vec<Vec<VertexId>> {
        (0..k)
            .map(|m| {
                let s = &scores[m];
                let mut remote: Vec<VertexId> = (0..n as u32)
                    .filter(|&v| part.part_of(v) != m as u32 && s[v as usize] > 0.0)
                    .collect();
                remote.sort_by(|&a, &b| {
                    s[b as usize]
                        .partial_cmp(&s[a as usize])
                        .unwrap()
                        .then(a.cmp(&b))
                });
                remote
            })
            .collect()
    };

    // Policy A: empirical layer-wise counts (the paper's "sim." approach).
    let sim_ranks = rank_scores(
        &fit_counts
            .iter()
            .map(|c| c.iter().map(|&x| x as f64).collect())
            .collect::<Vec<Vec<f64>>>(),
    );
    // Policy B: the node-wise analytic model — mismatched for this scheme.
    let nodewise =
        VipModel::new(Fanouts::new(vec![15, 10, 5]), batch).partition_scores(&ds.graph, &train);
    let vip_ranks = rank_scores(&nodewise);

    let none = volume(&vec![Vec::new(); k], 0.0);
    println!(
        "layer-wise sampling (budgets {:?}) on {}, {k} machines; no cache: {none:.0} remote/epoch\n",
        budgets, ds.name
    );
    let mut t = Table::new(
        "Caching under LAYER-WISE sampling: remote vertices/epoch",
        &["ranking model", "a=0.10", "a=0.30", "a=0.60"],
    );
    for (name, ranks) in [
        ("empirical layer-wise (sim.)", &sim_ranks),
        ("node-wise analytic VIP", &vip_ranks),
    ] {
        t.row(
            std::iter::once(name.to_string())
                .chain(
                    [0.10, 0.30, 0.60]
                        .iter()
                        .map(|&a| format!("{:.0}", volume(ranks, a))),
                )
                .collect(),
        );
    }
    t.print();
    t.write_csv("layerwise_vip");
    println!(
        "\ntakeaway: the empirical policy transfers to any sampling scheme and, given\n\
         enough measurement epochs, wins the hot head (small alpha). But its noisy\n\
         tail estimates lose to an analytic prior at large alpha — even a\n\
         scheme-mismatched one — which is the paper's own finding about empirical\n\
         estimation ('requires increasingly many samples ... for infrequently\n\
         accessed vertices'). Try --epochs 2 vs --epochs 8 to see the crossover."
    );
}
