//! VIP sweep scaling: wall-clock for the pooled probabilistic
//! neighborhood-expansion sweep (paper §3.1, Proposition 1) versus the
//! serial dense baseline, across worker counts and sweep strategies.
//!
//! Two regimes are measured on an RMAT graph:
//!
//! * **dense scaling** — a large training set (10% of vertices), where
//!   every hop touches most of the graph and the dense strategy is the
//!   natural one; this isolates the worker-pool speedup.
//! * **per-partition small train sets** — `partition_scores` over K
//!   partitions of a tiny seed set (|T|/K seeds each, paper §3.2
//!   footnote 1), where the frontier-sparse sweep visits only each
//!   partition's expanding neighborhood (sharing one transposed graph
//!   across all K sweeps) and beats dense at equal worker count. This
//!   regime uses a 2-hop fanout: on a scale-free graph the reachable
//!   set approaches the whole graph by hop 3 (hub in-neighborhoods
//!   are most of the graph), at which point a "sparse" sweep visits
//!   nearly every edge and its advantage evaporates — exactly the
//!   saturation the `Auto` strategy's support-fraction test guards
//!   against.
//!
//! Every timed run is checked bit-for-bit against the serial dense
//! sweep; any mismatch makes the harness exit nonzero, so CI's
//! `--quick` invocation doubles as a determinism smoke test. Results go
//! to `results/BENCH_vip_scaling.json`.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::report::fmt_secs;
use spp_bench::{BenchReport, Cli, Table};
use spp_core::{SweepStrategy, VipModel};
use spp_graph::generate::GeneratorConfig;
use spp_graph::{CsrGraph, VertexId};
use spp_runtime::pool::WorkerPool;
use spp_sampler::Fanouts;
use std::fmt::Write as _;
use std::time::Instant;

/// Worker counts swept by the bench.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One timed sweep: best-of-`repeats` wall-clock plus the hop vectors
/// (for the bit-identity check).
fn time_sweep(
    model: &VipModel,
    graph: &CsrGraph,
    p0: &[f64],
    workers: usize,
    strategy: SweepStrategy,
    repeats: usize,
) -> (f64, Vec<Vec<f64>>) {
    let pool = WorkerPool::new(workers);
    let mut best = f64::INFINITY;
    let mut hops = Vec::new();
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        hops = model.hop_scores_with(pool, graph, p0, strategy);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, hops)
}

/// Like [`time_sweep`] but for the K-partition sweep
/// ([`VipModel::partition_scores_with`]).
fn time_partition_sweep(
    model: &VipModel,
    graph: &CsrGraph,
    train_of_part: &[Vec<VertexId>],
    workers: usize,
    strategy: SweepStrategy,
    repeats: usize,
) -> (f64, Vec<Vec<f64>>) {
    let pool = WorkerPool::new(workers);
    let mut best = f64::INFINITY;
    let mut scores = Vec::new();
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        scores = model.partition_scores_with(pool, graph, train_of_part, strategy);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, scores)
}

/// Bitwise equality across whole hop-score matrices.
fn bits_equal(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

struct Run {
    workers: usize,
    strategy: &'static str,
    secs: f64,
    speedup_vs_serial: f64,
    vertex_visits_per_sec: f64,
}

/// Times every worker count under a timed runner, verifying each
/// result bitwise against `reference`. Returns the runs and whether
/// all results matched. `visits` is the serial sweep's vertex-visit
/// count (vertices × hops × sweeps), used for the throughput metric.
fn sweep_workers(
    run: impl Fn(usize) -> (f64, Vec<Vec<f64>>),
    label: &'static str,
    serial_secs: f64,
    reference: &[Vec<f64>],
    visits: f64,
) -> (Vec<Run>, bool) {
    let mut runs = Vec::new();
    let mut ok = true;
    for &w in &WORKER_COUNTS {
        let (secs, result) = run(w);
        if !bits_equal(&result, reference) {
            eprintln!("BIT-IDENTITY VIOLATION: {label} sweep at {w} workers diverged from serial");
            ok = false;
        }
        runs.push(Run {
            workers: w,
            strategy: label,
            secs,
            speedup_vs_serial: serial_secs / secs,
            vertex_visits_per_sec: visits / secs,
        });
    }
    (runs, ok)
}

fn json_runs(out: &mut String, runs: &[Run]) {
    for (i, r) in runs.iter().enumerate() {
        let sep = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"workers\": {}, \"strategy\": \"{}\", \"secs\": {:.6}, \
             \"speedup_vs_serial\": {:.3}, \"vertex_visits_per_sec\": {:.1}}}{sep}",
            r.workers, r.strategy, r.secs, r.speedup_vs_serial, r.vertex_visits_per_sec
        );
    }
}

fn main() {
    let cli = Cli::parse();
    let n = ((131_072.0 * cli.scale) as usize).max(4096);
    let target_edges = n * 16;
    let repeats = if cli.quick { 1 } else { 3 };
    let fanouts = Fanouts::new(vec![15, 10, 5]);
    let hops = fanouts.num_hops();
    let model = VipModel::new(fanouts, 1024);
    // 2-hop model for the per-partition regime (see module docs).
    let part_fanouts = Fanouts::new(vec![15, 10]);
    let part_hops = part_fanouts.num_hops();
    let part_model = VipModel::new(part_fanouts, 1024);

    println!("building RMAT graph: {n} vertices, ~{target_edges} edges");
    let graph = GeneratorConfig::rmat(n, target_edges)
        .seed(cli.seed)
        .build();
    let edges = graph.num_edges();
    let avail = std::thread::available_parallelism().map_or(1, usize::from);

    let mut table = Table::new(
        "VIP sweep scaling (RMAT)",
        &[
            "regime",
            "strategy",
            "workers",
            "secs",
            "speedup vs serial dense",
        ],
    );
    let mut all_ok = true;

    // Regime 1: large train set (10% of vertices) — dense scaling.
    let big_train: Vec<VertexId> = (0..n as VertexId).step_by(10).collect();
    let p0 = model.initial_probabilities(n, &big_train);
    let (serial_secs, reference) =
        time_sweep(&model, &graph, &p0, 1, SweepStrategy::Dense, repeats);
    let (dense_runs, ok) = sweep_workers(
        |w| time_sweep(&model, &graph, &p0, w, SweepStrategy::Dense, repeats),
        "dense",
        serial_secs,
        &reference,
        (n * hops) as f64,
    );
    all_ok &= ok;
    for r in &dense_runs {
        table.row(vec![
            "10% train".into(),
            r.strategy.into(),
            r.workers.to_string(),
            fmt_secs(r.secs),
            format!("{:.2}x", r.speedup_vs_serial),
        ]);
    }

    // Regime 2: per-partition sweeps over K tiny train sets (|T|/K
    // seeds each) — the quantity the caching policy actually ranks.
    // Frontier-sparse shares one transposed graph across all K sweeps
    // and visits only each partition's expanding neighborhood.
    // Seeds are id-scrambled so they land on *typical* vertices: RMAT
    // ids with few set bits are hubs, and stride-sampling would seed
    // every sweep with a hub whose 1-hop in-neighborhood is most of the
    // graph (instantly saturating the frontier). Training vertices in
    // real datasets are typical vertices, not hubs.
    let k_parts = 16usize;
    let seeds_per_part = 1usize;
    let seeds: Vec<VertexId> = (1..=(k_parts * seeds_per_part) as u64)
        .map(|j| {
            let h = j.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
            (h as usize % n) as VertexId
        })
        .collect();
    let train_of_part: Vec<Vec<VertexId>> =
        seeds.chunks(seeds_per_part).map(<[_]>::to_vec).collect();
    let part_visits = (n * part_hops * k_parts) as f64;
    let (part_serial_secs, part_reference) = time_partition_sweep(
        &part_model,
        &graph,
        &train_of_part,
        1,
        SweepStrategy::Dense,
        repeats,
    );
    let (part_dense, ok) = sweep_workers(
        |w| {
            time_partition_sweep(
                &part_model,
                &graph,
                &train_of_part,
                w,
                SweepStrategy::Dense,
                repeats,
            )
        },
        "dense",
        part_serial_secs,
        &part_reference,
        part_visits,
    );
    all_ok &= ok;
    let (part_frontier, ok) = sweep_workers(
        |w| {
            time_partition_sweep(
                &part_model,
                &graph,
                &train_of_part,
                w,
                SweepStrategy::FrontierSparse,
                repeats,
            )
        },
        "frontier-sparse",
        part_serial_secs,
        &part_reference,
        part_visits,
    );
    all_ok &= ok;
    for r in part_dense.iter().chain(&part_frontier) {
        table.row(vec![
            format!("K={k_parts}x{seeds_per_part} seeds"),
            r.strategy.into(),
            r.workers.to_string(),
            fmt_secs(r.secs),
            format!("{:.2}x", r.speedup_vs_serial),
        ]);
    }
    table.print();

    // The headline: the pooled sweep (what `partition_scores` runs
    // under `SweepStrategy::Auto` in the per-partition regime) against
    // the serial dense baseline, at 4 workers.
    let pooled_at_4 = part_frontier
        .iter()
        .find(|r| r.workers == 4)
        .map_or(0.0, |r| r.speedup_vs_serial);
    println!("pooled (frontier, 4 workers) vs serial dense: {pooled_at_4:.2}x");
    println!("available parallelism on this host: {avail}");

    let mut dense_obj = String::new();
    let _ = writeln!(
        dense_obj,
        "{{\"fanouts\": [15, 10, 5], \"train_vertices\": {}, \
         \"serial_dense_secs\": {:.6}, \"runs\": [",
        big_train.len(),
        serial_secs
    );
    json_runs(&mut dense_obj, &dense_runs);
    let _ = write!(dense_obj, "  ]}}");

    let mut part_obj = String::new();
    let _ = writeln!(
        part_obj,
        "{{\"fanouts\": [15, 10], \"partitions\": {k_parts}, \
         \"seeds_per_partition\": {seeds_per_part}, \
         \"serial_dense_secs\": {part_serial_secs:.6}, \"runs\": ["
    );
    json_runs(&mut part_obj, &part_dense);
    let last = part_obj.trim_end().len();
    part_obj.truncate(last);
    let _ = writeln!(part_obj, ",");
    json_runs(&mut part_obj, &part_frontier);
    let _ = write!(part_obj, "  ]}}");

    let mut report = BenchReport::new("vip_scaling");
    report
        .field("scale", format!("{}", cli.scale))
        .field("seed", cli.seed.to_string())
        .field("repeats", repeats.to_string())
        .field("available_parallelism", avail.to_string())
        .field(
            "graph",
            format!("{{\"vertices\": {n}, \"edges\": {edges}}}"),
        )
        .field("dense_scaling", dense_obj)
        .field("per_partition", part_obj)
        .field(
            "pooled_vs_serial_dense_speedup_at_4_workers",
            format!("{pooled_at_4:.3}"),
        )
        .field("bit_identical", all_ok.to_string());
    if let Some(path) = report.write() {
        println!("wrote {}", path.display());
    }

    if !all_ok {
        eprintln!("FAILED: parallel/frontier sweeps are not bit-identical to serial dense");
        std::process::exit(1);
    }
}
