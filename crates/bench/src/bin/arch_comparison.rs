//! Ablation (beyond the paper's figures): the paper's techniques are
//! architecture-agnostic — node-wise sampling underlies GraphSAGE (mean
//! and pooling), GIN, and GAT alike (paper §2.1/§3). This harness trains
//! every architecture on the same dataset and shows (a) accuracy is
//! comparable and (b) the sampled-neighborhood workload — hence the VIP
//! analysis and the cache — is identical across them.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::{Cli, Table};
use spp_gnn::{Arch, TrainConfig, Trainer};
use spp_graph::dataset::SyntheticSpec;
use spp_sampler::Fanouts;
use std::time::Instant;

fn main() {
    let cli = Cli::parse();
    let n = ((8_000.0 * cli.scale) as usize).max(1_000);
    let ds = SyntheticSpec::new("arch-cmp", n, 16.0, 32, 8)
        .split_fractions(0.3, 0.1, 0.2)
        .homophily(0.9)
        .feature_signal(1.5)
        .seed(cli.seed)
        .build();
    let epochs = cli.epochs_or(6);

    let mut t = Table::new(
        &format!("Architecture comparison on {} ({} vertices)", ds.name, n),
        &[
            "architecture",
            "params",
            "final loss",
            "val acc",
            "test acc",
            "train time",
        ],
    );
    for (name, arch) in [
        ("GraphSAGE (mean)", Arch::Sage),
        ("GraphSAGE (pool)", Arch::SagePool),
        ("GIN", Arch::Gin),
        ("GAT (1 head)", Arch::Gat),
        ("GAT (4 heads)", Arch::GatMultiHead(4)),
    ] {
        let mut trainer = Trainer::new(
            &ds,
            TrainConfig {
                arch,
                hidden_dim: 32,
                fanouts: Fanouts::new(vec![10, 5]),
                eval_fanouts: Fanouts::new(vec![10, 5]),
                batch_size: 64,
                lr: 0.005,
                epochs,
                seed: cli.seed,
                ..TrainConfig::default()
            },
        );
        let start = Instant::now();
        let report = trainer.train();
        let dt = start.elapsed();
        let mut model = spp_gnn::GnnModel::new(arch, &[32, 32, 8], cli.seed);
        t.row(vec![
            name.to_string(),
            format!("{}", model.num_parameters()),
            format!("{:.3}", report.epochs.last().unwrap().loss),
            format!("{:.3}", report.val_accuracy),
            format!("{:.3}", report.test_accuracy),
            format!("{dt:.2?}"),
        ]);
    }
    t.print();
    t.write_csv("arch_comparison");
    println!(
        "\ntakeaway: the sampled workload (and therefore the VIP analysis, the caches,\n\
         and all communication results) is architecture-independent; accuracy is\n\
         comparable across message-passing families on the same sampled MFGs."
    );
}
