//! Disabled-recorder overhead for the telemetry subsystem.
//!
//! DESIGN.md §10 promises that every telemetry hot-path entry point —
//! counter add, histogram observe, span open/close, the `enabled()`
//! flag probe — costs one relaxed atomic load when the recorder is off,
//! budgeted below 5 ns/event. This harness measures each class with the
//! recorder disabled and **fails (exit 1)** if any exceeds the budget,
//! so a regression in the disabled path cannot land silently. Results
//! go to `results/BENCH_telemetry_overhead.json`.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::{BenchReport, Cli, Table};
use spp_telemetry as tel;
use std::hint::black_box;
use std::time::Instant;

/// The per-event budget for the disabled path (DESIGN.md §10).
const BUDGET_NS: f64 = 5.0;

/// Budget for the `spp_sync` wrapper passthrough: outside a model-check
/// build the wrappers must compile down to the raw `std::sync::atomic`
/// operation, so the measured delta per op is pure noise (DESIGN.md
/// §12).
const SYNC_DELTA_BUDGET_NS: f64 = 0.1;

/// Best-of-`reps` per-iteration nanoseconds for `f` run `iters` times.
/// Best-of (not mean) because scheduler noise only ever adds time; the
/// minimum is the closest observable to the true cost of the loop body.
fn time_per_event(iters: u64, reps: usize, mut f: impl FnMut(u64)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        for i in 0..iters {
            f(black_box(i));
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    best
}

fn main() {
    let cli = Cli::parse();
    // The contract under test is the *disabled* path; make sure nothing
    // (e.g. an inherited SPP_TRACE) turned the recorder on.
    tel::set_enabled(false);
    assert!(!tel::enabled());

    let iters: u64 = if cli.quick { 2_000_000 } else { 50_000_000 };
    let reps = if cli.quick { 3 } else { 5 };
    println!("timing disabled-recorder events: {iters} iters x {reps} reps per class");

    // Handles obtained while disabled are inert (DEAD index) — exactly
    // what instrumented library code holds on an untraced run.
    let counter = tel::counter("bench.overhead.counter");
    let hist = tel::histogram("bench.overhead.hist");
    let flag_ns = time_per_event(iters, reps, |_| {
        black_box(tel::enabled());
    });
    let counter_ns = time_per_event(iters, reps, |i| counter.add(i & 1));
    let hist_ns = time_per_event(iters, reps, |i| hist.observe(i));
    let span_ns = time_per_event(iters, reps, |_| {
        let _g = tel::span!("bench.overhead.span");
    });
    // Registration (`counter("name")`) takes the registry mutex by
    // design — handles are registered at setup and cached, so the name
    // lookup is *not* part of the per-event budget. Measured anyway so
    // a pathological slowdown is still visible in the report.
    let lookup_ns = time_per_event(iters.min(5_000_000), reps, |_| {
        black_box(tel::counter("bench.overhead.lookup"));
    });

    // sync_overhead: the spp-sync wrapper vs the raw std atomic it
    // wraps, same loop body. Best-of timing makes the comparison
    // noise-floor-stable; any real delta means the zero-cost
    // passthrough claim regressed.
    let raw = std::sync::atomic::AtomicU64::new(0);
    let wrapped = spp_sync::AtomicU64::new(0);
    let raw_ns = time_per_event(iters, reps, |i| {
        black_box(raw.fetch_add(i & 1, std::sync::atomic::Ordering::Relaxed));
    });
    let wrapped_ns = time_per_event(iters, reps, |i| {
        black_box(wrapped.fetch_add_relaxed(i & 1));
    });
    let sync_delta_ns = (wrapped_ns - raw_ns).max(0.0);

    let classes: [(&str, f64); 4] = [
        ("enabled() probe", flag_ns),
        ("counter.add", counter_ns),
        ("histogram.observe", hist_ns),
        ("span open+drop", span_ns),
    ];
    let mut t = Table::new(
        "telemetry disabled-path overhead (best-of per event)",
        &["event class", "ns/event", "budget", "ok"],
    );
    let mut worst = 0.0f64;
    for (name, ns) in classes {
        worst = worst.max(ns);
        t.row(vec![
            name.to_string(),
            format!("{ns:.3}"),
            format!("{BUDGET_NS:.1}"),
            if ns < BUDGET_NS { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.row(vec![
        "registry lookup (setup path)".to_string(),
        format!("{lookup_ns:.3}"),
        "-".to_string(),
        "info".to_string(),
    ]);
    let sync_ok = sync_delta_ns < SYNC_DELTA_BUDGET_NS;
    t.row(vec![
        "sync_overhead (wrapper - raw delta)".to_string(),
        format!("{sync_delta_ns:.3}"),
        format!("{SYNC_DELTA_BUDGET_NS:.1}"),
        if sync_ok { "yes" } else { "NO" }.to_string(),
    ]);
    t.print();
    let pass = worst < BUDGET_NS && sync_ok;

    let mut report = BenchReport::new("telemetry_overhead");
    report
        .field("iters", iters.to_string())
        .field("reps", reps.to_string())
        .field("budget_ns", format!("{BUDGET_NS:.1}"))
        .field("enabled_probe_ns", format!("{flag_ns:.3}"))
        .field("counter_add_ns", format!("{counter_ns:.3}"))
        .field("histogram_observe_ns", format!("{hist_ns:.3}"))
        .field("span_ns", format!("{span_ns:.3}"))
        .field("registry_lookup_ns", format!("{lookup_ns:.3}"))
        .field("sync_raw_ns", format!("{raw_ns:.3}"))
        .field("sync_wrapped_ns", format!("{wrapped_ns:.3}"))
        .field("sync_delta_ns", format!("{sync_delta_ns:.3}"))
        .field("sync_delta_budget_ns", format!("{SYNC_DELTA_BUDGET_NS:.1}"))
        .field("worst_ns", format!("{worst:.3}"))
        .field("pass", pass.to_string());
    if let Some(path) = report.write() {
        println!("wrote {}", path.display());
    }

    if !pass {
        if worst >= BUDGET_NS {
            eprintln!(
                "FAILED: disabled-path overhead {worst:.3} ns/event exceeds {BUDGET_NS} ns budget"
            );
        }
        if !sync_ok {
            eprintln!(
                "FAILED: spp-sync passthrough delta {sync_delta_ns:.3} ns/op exceeds \
                 {SYNC_DELTA_BUDGET_NS} ns budget"
            );
        }
        std::process::exit(1);
    }
    println!(
        "disabled-path overhead: worst {worst:.3} ns/event (budget {BUDGET_NS} ns); \
         spp-sync passthrough delta {sync_delta_ns:.3} ns/op (budget {SYNC_DELTA_BUDGET_NS} ns)"
    );
}
