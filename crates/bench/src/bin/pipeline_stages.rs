//! Figure 1 / Appendix D companion: per-stage busy profile of the
//! explicit 10-stage SALIENT++ pipeline, with and without caching. Shows
//! where batch-preparation time goes and how the VIP cache drains the
//! feature all-to-all (stage 9) and the CPU slicing thread (stage 6).

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::report::fmt_secs;
use spp_bench::{papers_sim, Cli, Table};
use spp_core::policies::CachePolicy;
use spp_runtime::telemetry::stage::PipelineStage;
use spp_runtime::{CostModel, DistributedSetup, PipelineSim, SetupConfig};
use spp_sampler::Fanouts;

// Presentation text for the rows; stage identity (ordering, busy-time
// lookup) comes from `PipelineStage`.
const STAGE_NAMES: [&str; 10] = [
    "1 sample minibatch (CPU)",
    "2 all-to-all counts (NIC)",
    "3 metadata to CPU (PCIe)",
    "4 all-to-all node lists (NIC)",
    "5 map ids + D2H lists (PCIe)",
    "6 masked select + CPU slice",
    "7 H2D sliced features (PCIe)",
    "8 GPU slice + combine (GPU)",
    "9 all-to-all features (NIC)",
    "10 combine + permute (GPU)",
];

fn main() {
    let cli = Cli::parse();
    let ds = papers_sim(cli.scale, cli.seed);
    let cost = CostModel::mini_calibrated();
    let k = 8usize;

    let build = |alpha: f64| {
        DistributedSetup::build(
            &ds,
            SetupConfig {
                num_machines: k,
                fanouts: Fanouts::new(vec![15, 10, 5]),
                batch_size: 8,
                policy: if alpha > 0.0 {
                    CachePolicy::VipAnalytic
                } else {
                    CachePolicy::None
                },
                alpha,
                beta: 0.5,
                vip_reorder: true,
                seed: cli.seed,
                ..SetupConfig::default()
            },
        )
    };
    let bare = build(0.0);
    let cached = build(0.32);
    let e_bare = PipelineSim::new(&bare, cost, 256, 10).simulate_epoch(0);
    let e_cached = PipelineSim::new(&cached, cost, 256, 10).simulate_epoch(0);

    let mut t = Table::new(
        "Appendix D pipeline: per-stage busy time per machine-epoch (papers, 8 GPUs)",
        &["stage", "a=0", "a=0.32", "change"],
    );
    for (i, name) in STAGE_NAMES.iter().enumerate() {
        let b = e_bare.busy.stage(i + 1) / k as f64;
        let c = e_cached.busy.stage(i + 1) / k as f64;
        t.row(vec![
            name.to_string(),
            fmt_secs(b),
            fmt_secs(c),
            format!("{:+.0}%", 100.0 * (c - b) / b.max(1e-12)),
        ]);
    }
    t.row(vec![
        "train (GPU)".into(),
        fmt_secs(e_bare.busy.get(PipelineStage::Train) / k as f64),
        fmt_secs(e_cached.busy.get(PipelineStage::Train) / k as f64),
        "0%".into(),
    ]);
    t.row(vec![
        "gradient all-reduce".into(),
        fmt_secs(e_bare.busy.get(PipelineStage::AllReduce) / k as f64),
        fmt_secs(e_cached.busy.get(PipelineStage::AllReduce) / k as f64),
        "0%".into(),
    ]);
    t.print();
    t.write_csv("pipeline_stages");
    println!(
        "\nepoch makespan: a=0 {} -> a=0.32 {} ({} rounds)",
        fmt_secs(e_bare.makespan),
        fmt_secs(e_cached.makespan),
        e_bare.rounds
    );
    println!(
        "takeaway: the cache drains stage 9 (the feature all-to-all) and the serving\n\
         share of stages 4/8; cached rows still ride the local slice+H2D path (6/7),\n\
         and the metadata stages (2-5) are latency-bound."
    );
}
