//! Figure 6: impact of VIP-based local vertex ordering on per-epoch
//! runtime as the fraction β of local features stored on GPU grows.
//! Papers benchmark, 4 GPUs, α = 0.15. "no reorder" should improve
//! roughly linearly in β; "VIP reorder" should eliminate the
//! host-to-device bottleneck with ~10% of the data on GPU.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::report::fmt_secs;
use spp_bench::{papers_sim, Cli, Table};
use spp_core::policies::CachePolicy;
use spp_runtime::{CostModel, DistributedSetup, EpochSim, SetupConfig, SystemSpec};
use spp_sampler::Fanouts;

fn main() {
    let cli = Cli::parse();
    let ds = papers_sim(cli.scale, cli.seed);
    let epochs = cli.epochs_or(3);
    let cost = CostModel::mini_calibrated();
    let betas = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9];

    let mut t = Table::new(
        "Figure 6: per-epoch runtime vs % of local features on GPU (papers, 4 GPUs, a=0.15)",
        &["ordering", "0%", "10%", "25%", "50%", "75%", "90%"],
    );
    let mut h2d_t = Table::new(
        "Figure 6 (mechanism): host-to-device busy time per machine-epoch",
        &["ordering", "0%", "10%", "25%", "50%", "75%", "90%"],
    );
    let mut curves = Vec::new();
    let mut h2d_curves = Vec::new();
    for (label, vip_reorder) in [("no reorder", false), ("VIP reorder", true)] {
        let mut row = vec![label.to_string()];
        let mut h2d_row = vec![label.to_string()];
        let mut curve = Vec::new();
        let mut h2d_curve = Vec::new();
        for &beta in &betas {
            let setup = DistributedSetup::build(
                &ds,
                SetupConfig {
                    num_machines: 4,
                    fanouts: Fanouts::new(vec![15, 10, 5]),
                    batch_size: 8,
                    policy: CachePolicy::VipAnalytic,
                    alpha: 0.15,
                    beta,
                    vip_reorder,
                    seed: cli.seed,
                    ..SetupConfig::default()
                },
            );
            let sim = EpochSim::new(&setup, cost, SystemSpec::pipelined(256));
            let mut time = 0.0;
            let mut h2d = 0.0;
            for e in 0..epochs {
                let et = sim.simulate_epoch(e as u64);
                time += et.makespan;
                h2d += et.breakdown.h2d / 4.0;
            }
            time /= epochs as f64;
            h2d /= epochs as f64;
            row.push(fmt_secs(time));
            h2d_row.push(fmt_secs(h2d));
            curve.push(time);
            h2d_curve.push(h2d);
        }
        t.row(row);
        h2d_t.row(h2d_row);
        curves.push(curve);
        h2d_curves.push(h2d_curve);
    }
    t.print();
    t.write_csv("fig6");
    println!();
    h2d_t.print();
    h2d_t.write_csv("fig6_h2d");

    let no_reorder = &h2d_curves[0];
    let vip = &h2d_curves[1];
    println!("\nshape vs paper (Fig 6) — host-to-device data movement:");
    println!(
        "  VIP reorder at 10% GPU removes {:.0}% of the beta=0 transfer volume \
         (paper: the bottleneck is effectively eliminated at 10%)",
        100.0 * (1.0 - vip[1] / vip[0])
    );
    println!(
        "  no-reorder at 10% GPU removes only {:.0}% — it needs ~beta% to remove beta%",
        100.0 * (1.0 - no_reorder[1] / no_reorder[0])
    );
    println!(
        "  end-to-end epoch time moves less at mini scale because the (already cached)\n\
         communication stage, not H2D, sits on the critical path here."
    );
}
