//! Figure 5: SALIENT++ scalability (per-epoch runtime on 2–16 GPUs) and
//! total feature memory across machines as a multiple of the unreplicated
//! dataset (1 + α).

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::report::fmt_secs;
use spp_bench::{mag240_sim, papers_sim, products_sim, Cli, Table};
use spp_core::policies::CachePolicy;
use spp_runtime::{CostModel, DistributedSetup, EpochSim, SetupConfig, SystemSpec};
use spp_sampler::Fanouts;

fn main() {
    let cli = Cli::parse();
    let epochs = cli.epochs_or(3);
    let cost = CostModel::mini_calibrated();
    let machines = [2usize, 4, 8, 16];

    let mut time_table = Table::new(
        "Figure 5 (left): SALIENT++ per-epoch runtime (simulated)",
        &["dataset", "K=2", "K=4", "K=8", "K=16"],
    );
    let mut mem_table = Table::new(
        "Figure 5 (right): total feature memory, multiple of unreplicated (1 + alpha)",
        &["dataset", "K=2", "K=4", "K=8", "K=16"],
    );

    type BenchSpec<'a> = (
        &'a str,
        Box<dyn Fn() -> spp_graph::Dataset + 'a>,
        Fanouts,
        usize,
        usize,
        f64,
    );
    let benches: [BenchSpec; 3] = [
        (
            "products",
            Box::new(|| products_sim(cli.scale, cli.seed)),
            Fanouts::new(vec![15, 10, 5]),
            256,
            16,
            0.16,
        ),
        (
            "papers",
            Box::new(|| papers_sim(cli.scale, cli.seed)),
            Fanouts::new(vec![15, 10, 5]),
            256,
            8,
            0.32,
        ),
        (
            "mag240",
            Box::new(|| mag240_sim(cli.scale, cli.seed)),
            Fanouts::new(vec![25, 15]),
            1024,
            4,
            0.32,
        ),
    ];

    let mut speedups = Vec::new();
    for (name, make, fanouts, hidden, batch, alpha) in &benches {
        let ds = make();
        let mut times = Vec::new();
        let mut mems = Vec::new();
        for &k in &machines {
            let setup = DistributedSetup::build(
                &ds,
                SetupConfig {
                    num_machines: k,
                    fanouts: fanouts.clone(),
                    batch_size: *batch,
                    policy: CachePolicy::VipAnalytic,
                    alpha: *alpha,
                    beta: 0.1,
                    vip_reorder: true,
                    seed: cli.seed,
                    ..SetupConfig::default()
                },
            );
            times.push(
                EpochSim::new(&setup, cost, SystemSpec::pipelined(*hidden)).mean_epoch_time(epochs),
            );
            mems.push(setup.memory_multiple());
        }
        time_table.row(
            std::iter::once(name.to_string())
                .chain(times.iter().map(|&t| fmt_secs(t)))
                .collect(),
        );
        mem_table.row(
            std::iter::once(name.to_string())
                .chain(mems.iter().map(|m| format!("{m:.2}x")))
                .collect(),
        );
        speedups.push((name, times[1] / times[2], times[2] / times[3]));
    }
    time_table.print();
    time_table.write_csv("fig5_time");
    println!();
    mem_table.print();
    mem_table.write_csv("fig5_mem");

    println!("\nshape vs paper (Fig 5):");
    for (name, s48, s816) in speedups {
        println!(
            "  {name}: 4->8 GPUs {s48:.2}x, 8->16 GPUs {s816:.2}x \
             (paper papers: 1.9x; mag240c: 1.75x then 1.45x; scaling tapers as \
             per-epoch time shrinks and pipeline fill dominates)"
        );
    }
    println!(
        "  memory stays at ~(1 + alpha) instead of full replication's K(x) — \
     the paper's central storage claim"
    );
}
