//! Compute-kernel microbenchmark: cache-blocked vectorized kernels vs
//! the seed scalar loops, plus quantized feature-tier byte accounting.
//!
//! Measures GFLOP/s for the three matmul variants (`A·B`, `Aᵀ·B`,
//! `A·Bᵀ`) in three forms — the seed's branchy zero-skip scalar loops
//! (inlined here verbatim as the reference), the blocked dense kernels
//! in `spp_tensor::kernels`, and the sparsity-aware dispatch — together
//! with VIP sweep and quantized feature-decode throughput, and the
//! bytes-on-the-wire an epoch of distributed training moves under each
//! wire codec (`f32`/`f16`/`i8`).
//!
//! Hard assertions (exit 1 on failure): each blocked dense matmul
//! kernel clears **2x** the seed scalar's GFLOP/s on the same shapes,
//! and quantized wire codecs shrink epoch bytes by their nominal
//! ratios. Emits `results/BENCH_kernels.json`.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::needless_range_loop
)]

use spp_bench::{BenchReport, Cli, Table};
use spp_core::VipModel;
use spp_graph::dataset::SyntheticSpec;
use spp_graph::{FeatureMatrix, QuantScheme, QuantizedFeatures};
use spp_runtime::{DistTrainConfig, DistributedSetup, DistributedTrainer, SetupConfig};
use spp_sampler::Fanouts;
use spp_tensor::kernels;
use std::hint::black_box;
use std::time::Instant;

/// Matmul shapes: M×K @ K×N. Sized so every operand fits in L2 (the
/// regime the training loop runs in: activation panels, not huge GEMMs).
const M: usize = 192;
const K: usize = 160;
const N: usize = 176;
/// The CI floor: blocked dense kernels must clear this multiple of the
/// seed scalar's GFLOP/s.
const MIN_SPEEDUP: f64 = 2.0;

fn check(ok: bool, what: &str) {
    if ok {
        println!("check ok: {what}");
    } else {
        eprintln!("CHECK FAILED: {what}");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------
// Seed reference kernels (the scalar zero-skip loops this PR replaced;
// kept verbatim so the speedup baseline cannot drift with the library).
// ---------------------------------------------------------------------

/// Seed `A·B`: i-k-j accumulation with the branchy `av == 0.0` skip.
#[inline(never)]
fn seed_matmul(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    out.iter_mut().for_each(|o| *o = 0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Seed `Aᵀ·B`: r-outer streaming accumulation with the zero skip.
#[inline(never)]
fn seed_t_matmul(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    out.iter_mut().for_each(|o| *o = 0.0);
    for r in 0..rows {
        let a_row = &a[r * k..(r + 1) * k];
        let b_row = &b[r * n..(r + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Seed `A·Bᵀ`: one sequential dot product per output element.
#[inline(never)]
fn seed_matmul_t(a: &[f32], m: usize, k: usize, b: &[f32], b_rows: usize, out: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..b_rows {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out[i * b_rows + j] = acc;
        }
    }
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Deterministic pseudo-random fill in [-1, 1] (splitmix64 bits).
fn fill(data: &mut [f32], mut state: u64) {
    for v in data.iter_mut() {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        *v = ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0;
    }
}

struct KernelResult {
    name: &'static str,
    seed_gflops: f64,
    blocked_gflops: f64,
    sparse_gflops: f64,
}

fn main() {
    let cli = Cli::parse();
    let reps = if cli.quick { 20 } else { 60 };

    let mut a = vec![0.0f32; M * K];
    let mut b_mm = vec![0.0f32; K * N]; // K×N, for A·B
    let mut b_nk = vec![0.0f32; N * K]; // N×K, for A·Bᵀ
    let mut b_mn = vec![0.0f32; M * N]; // M×N, for Aᵀ·B
    fill(&mut a, 1);
    fill(&mut b_mm, 2);
    fill(&mut b_nk, 3);
    fill(&mut b_mn, 4);
    let mut out_mm = vec![0.0f32; M * N];
    let mut out_tm = vec![0.0f32; K * N];
    let mut out_mt = vec![0.0f32; M * N];

    let gflop_mm = 2.0 * (M * K * N) as f64 / 1e9;

    // A·B — seed scalar, blocked dense, sparsity dispatch on dense data.
    let t_seed = time_best(reps, || {
        seed_matmul(black_box(&a), M, K, black_box(&b_mm), N, &mut out_mm);
        black_box(&out_mm);
    });
    let t_blocked = time_best(reps, || {
        kernels::matmul_rows_dense(black_box(&a), K, black_box(&b_mm), N, &mut out_mm);
        black_box(&out_mm);
    });
    let t_sparse = time_best(reps, || {
        out_mm.iter_mut().for_each(|o| *o = 0.0);
        kernels::matmul_rows_sparse(black_box(&a), K, black_box(&b_mm), N, &mut out_mm);
        black_box(&out_mm);
    });
    let matmul = KernelResult {
        name: "matmul",
        seed_gflops: gflop_mm / t_seed,
        blocked_gflops: gflop_mm / t_blocked,
        sparse_gflops: gflop_mm / t_sparse,
    };

    // Aᵀ·B over the full column range (M×K)ᵀ @ (M×N).
    let gflop_tm = 2.0 * (M * K * N) as f64 / 1e9;
    let t_seed = time_best(reps, || {
        seed_t_matmul(black_box(&a), M, K, black_box(&b_mn), N, &mut out_tm);
        black_box(&out_tm);
    });
    let t_blocked = time_best(reps, || {
        out_tm.iter_mut().for_each(|o| *o = 0.0);
        kernels::t_matmul_cols_dense(black_box(&a), K, black_box(&b_mn), N, M, 0, &mut out_tm);
        black_box(&out_tm);
    });
    let t_sparse = time_best(reps, || {
        out_tm.iter_mut().for_each(|o| *o = 0.0);
        kernels::t_matmul_cols_sparse(black_box(&a), K, black_box(&b_mn), N, M, 0, &mut out_tm);
        black_box(&out_tm);
    });
    let t_matmul = KernelResult {
        name: "t_matmul",
        seed_gflops: gflop_tm / t_seed,
        blocked_gflops: gflop_tm / t_blocked,
        sparse_gflops: gflop_tm / t_sparse,
    };

    // A·Bᵀ — (M×K) @ (N×K)ᵀ; the blocked form is the partitioned dot.
    let gflop_mt = 2.0 * (M * K * N) as f64 / 1e9;
    let t_seed = time_best(reps, || {
        seed_matmul_t(black_box(&a), M, K, black_box(&b_nk), N, &mut out_mt);
        black_box(&out_mt);
    });
    let t_blocked = time_best(reps, || {
        kernels::matmul_t_rows_dense(black_box(&a), K, black_box(&b_nk), N, &mut out_mt);
        black_box(&out_mt);
    });
    let matmul_t = KernelResult {
        name: "matmul_t",
        seed_gflops: gflop_mt / t_seed,
        blocked_gflops: gflop_mt / t_blocked,
        sparse_gflops: gflop_mt / t_blocked, // no sparse variant: dots skip nothing
    };

    let mut table = Table::new(
        "compute kernels (best-of-reps)",
        &[
            "kernel",
            "seed GFLOP/s",
            "blocked GFLOP/s",
            "sparse GFLOP/s",
            "speedup",
        ],
    );
    let results = [&matmul, &t_matmul, &matmul_t];
    for r in results {
        table.row(vec![
            r.name.to_string(),
            format!("{:.2}", r.seed_gflops),
            format!("{:.2}", r.blocked_gflops),
            format!("{:.2}", r.sparse_gflops),
            format!("{:.2}x", r.blocked_gflops / r.seed_gflops),
        ]);
    }
    table.print();

    // VIP sweep throughput (the hop_update kernel, through the public
    // scores API) in millions of edge visits per second per hop.
    let ds = SyntheticSpec::new("kernels-sim", 4_000, 12.0, 16, 8)
        .split_fractions(0.2, 0.05, 0.05)
        .seed(cli.seed)
        .build();
    let vip = VipModel::new(Fanouts::new(vec![10, 5]), 32);
    let edges = ds.graph.num_edges() as f64;
    let hops = 2.0;
    let t_vip = time_best(reps.min(10), || {
        black_box(vip.scores(&ds.graph, &ds.split.train));
    });
    let vip_medges = edges * hops / t_vip / 1e6;
    println!("vip sweep: {vip_medges:.1} Medge-visits/s");

    // Quantized feature-decode throughput (the serving gather path).
    let feats = FeatureMatrix::from_flat(
        {
            let mut d = vec![0.0f32; 4096 * 64];
            fill(&mut d, 7);
            d
        },
        64,
    );
    let mut row_buf = vec![0.0f32; 64];
    let mut decode = Vec::new();
    for scheme in [QuantScheme::F32, QuantScheme::F16, QuantScheme::I8] {
        let q = QuantizedFeatures::from_matrix(&feats, scheme);
        let t = time_best(reps, || {
            for r in 0..q.num_rows() {
                q.read_row_into(r, &mut row_buf);
                black_box(&row_buf);
            }
        });
        let melems = (q.num_rows() * q.dim()) as f64 / t / 1e6;
        println!(
            "decode {}: {melems:.0} Melem/s ({} bytes/row)",
            scheme.name(),
            q.row_bytes()
        );
        decode.push((scheme, melems));
    }

    // Bytes on the wire for one epoch of distributed training under
    // each wire codec. Fetch *counts* are codec-independent (tier
    // membership is id-driven), so the byte ratio is exactly the
    // per-row encoding ratio.
    let setup = DistributedSetup::build(
        &ds,
        SetupConfig {
            num_machines: 2,
            fanouts: Fanouts::new(vec![10, 5]),
            batch_size: 32,
            alpha: 0.1,
            ..SetupConfig::default()
        },
    );
    let dim = ds.features.dim();
    let mut epoch_bytes = Vec::new();
    let mut fetches = None;
    for scheme in [QuantScheme::F32, QuantScheme::F16, QuantScheme::I8] {
        let (report, _) = DistributedTrainer::new(
            &setup,
            DistTrainConfig {
                hidden_dim: 16,
                epochs: 1,
                seed: cli.seed,
                wire_scheme: scheme,
                ..DistTrainConfig::default()
            },
        )
        .train();
        let f = *fetches.get_or_insert(report.remote_fetches);
        assert_eq!(
            f, report.remote_fetches,
            "fetch counts must be codec-independent"
        );
        let bytes = report.remote_fetches * scheme.row_bytes(dim);
        println!(
            "epoch wire bytes ({}): {bytes} ({} fetches x {} bytes/row)",
            scheme.name(),
            report.remote_fetches,
            scheme.row_bytes(dim)
        );
        epoch_bytes.push((scheme, bytes));
    }

    for r in results {
        check(
            r.blocked_gflops >= MIN_SPEEDUP * r.seed_gflops,
            &format!(
                "{}: blocked {:.2} GFLOP/s >= {MIN_SPEEDUP}x seed scalar {:.2}",
                r.name, r.blocked_gflops, r.seed_gflops
            ),
        );
    }
    check(
        epoch_bytes[1].1 * 2 == epoch_bytes[0].1,
        "f16 wire halves epoch bytes exactly",
    );
    check(
        epoch_bytes[2].1 < epoch_bytes[1].1,
        "i8 wire beats f16 epoch bytes",
    );

    let mut report = BenchReport::new("kernels");
    report
        .string("shape", &format!("{M}x{K}x{N}"))
        .field("reps", reps.to_string())
        .field("min_speedup", format!("{MIN_SPEEDUP}"))
        .field("vip_medge_visits_per_s", format!("{vip_medges:.1}"));
    for r in results {
        report.field(
            &format!("{}_gflops", r.name),
            format!(
                "{{\"seed\": {:.3}, \"blocked\": {:.3}, \"sparse\": {:.3}, \"speedup\": {:.3}}}",
                r.seed_gflops,
                r.blocked_gflops,
                r.sparse_gflops,
                r.blocked_gflops / r.seed_gflops
            ),
        );
    }
    for (scheme, melems) in &decode {
        report.field(
            &format!("decode_{}_melems_per_s", scheme.name()),
            format!("{melems:.0}"),
        );
    }
    for (scheme, bytes) in &epoch_bytes {
        report.field(
            &format!("epoch_wire_bytes_{}", scheme.name()),
            bytes.to_string(),
        );
    }
    if let Some(path) = report.write() {
        println!("wrote {}", path.display());
    }
}
