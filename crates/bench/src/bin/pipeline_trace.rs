//! Traced end-to-end epoch: the telemetry smoke driver.
//!
//! Runs with the recorder on: one simulated Appendix-D pipeline epoch
//! (virtual-time spans for all ten stages plus train/all-reduce on the
//! simulated-time trace process) and one short distributed-training run
//! (wall-clock engine spans, per-machine-pair comm byte counters,
//! sampler/pool metrics). Per-stage latency is summarised by mergeable
//! HDR sketches built from the simulated spans (p50/p99/p999 per
//! stage), and the engine's per-epoch comm matrix is embedded as a
//! CommReport attribution section. Prints the metrics summary and
//! writes `results/trace_pipeline.{json,jsonl}` — the files CI
//! validates with `cargo xtask validate-trace --stages --attrib` —
//! plus headline numbers to `results/BENCH_pipeline_trace.json`. Load
//! the Chrome trace at ui.perfetto.dev (see README).

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::{papers_sim, BenchReport, Cli};
use spp_core::policies::CachePolicy;
use spp_runtime::{
    CostModel, DistTrainConfig, DistributedSetup, DistributedTrainer, PipelineSim, SetupConfig,
};
use spp_sampler::Fanouts;
use spp_telemetry as tel;

fn main() {
    let cli = Cli::parse();
    // Honour SPP_TRACE when present; otherwise force the recorder on —
    // producing a trace is this harness's whole purpose.
    if !tel::init_from_env() {
        tel::set_enabled(true);
    }

    let ds = papers_sim(cli.scale, cli.seed);
    let k = 4usize;
    let setup = DistributedSetup::build(
        &ds,
        SetupConfig {
            num_machines: k,
            fanouts: Fanouts::new(vec![15, 10, 5]),
            batch_size: 8,
            policy: CachePolicy::VipAnalytic,
            alpha: 0.32,
            beta: 0.5,
            vip_reorder: true,
            seed: cli.seed,
            ..SetupConfig::default()
        },
    );

    // Virtual-time epoch: the DES replays every stage task as a
    // simulated span (its own trace process, one track per resource).
    let epoch = PipelineSim::new(&setup, CostModel::mini_calibrated(), 256, 4).simulate_epoch(0);
    println!(
        "simulated pipeline epoch: makespan {:.2} ms over {} rounds",
        epoch.makespan * 1e3,
        epoch.rounds
    );

    // Wall-clock epochs: engine spans + comm byte counters + sampler
    // and pool metrics from the real hot paths.
    let trainer = DistributedTrainer::new(
        &setup,
        DistTrainConfig {
            hidden_dim: 16,
            epochs: cli.epochs_or(1),
            seed: cli.seed,
            ..DistTrainConfig::default()
        },
    );
    let (train_report, _) = trainer.train();
    let final_loss = train_report.epoch_losses.last().copied().unwrap_or(0.0);
    println!(
        "trained {} epoch(s): final mean loss {final_loss:.4}, remote fetches {}, \
         comm total {} bytes",
        train_report.epoch_losses.len(),
        train_report.remote_fetches,
        train_report.comm.total_bytes(),
    );

    // Per-stage latency sketches from the simulated spans: every DES
    // task carries its stage short-name as the span label, so grouping
    // by name yields one mergeable sketch per pipeline stage.
    let mut stage_sketches: std::collections::BTreeMap<String, tel::QuantileSketch> =
        std::collections::BTreeMap::new();
    for e in tel::events_snapshot() {
        if e.sim {
            stage_sketches
                .entry(e.name.to_string())
                .or_default()
                .observe(e.dur_ns);
        }
    }
    for (stage, s) in &stage_sketches {
        println!(
            "stage {stage}: n {} p50 {} ns p99 {} ns p999 {} ns",
            s.count(),
            s.quantile(0.5),
            s.quantile(0.99),
            s.quantile(0.999),
        );
    }

    print!("{}", tel::summary());
    match tel::write_trace_files(std::path::Path::new("results"), "pipeline") {
        Ok(paths) => {
            for p in &paths {
                println!("trace written: {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("cannot write trace files: {e}");
            std::process::exit(1);
        }
    }

    let mut report = BenchReport::new("pipeline_trace");
    report
        .field("scale", format!("{}", cli.scale))
        .field("seed", cli.seed.to_string())
        .field("machines", k.to_string())
        .field("sim_makespan_secs", format!("{:.6}", epoch.makespan))
        .field("sim_rounds", epoch.rounds.to_string())
        .field("train_epochs", train_report.epoch_losses.len().to_string())
        .field("final_loss", format!("{final_loss:.6}"))
        .field("remote_fetches", train_report.remote_fetches.to_string());
    let stages_json = stage_sketches
        .iter()
        .map(|(stage, s)| format!("\"{stage}\": {}", s.to_json()))
        .collect::<Vec<_>>()
        .join(", ");
    report.field("stage_sketches", format!("{{{stages_json}}}"));
    // The engine's per-epoch comm matrix (one window per epoch,
    // bytes[src][dst]); the same report the Chrome trace embeds.
    report.field("comm_report", train_report.comm.to_json());
    if let Some(path) = report.write() {
        println!("wrote {}", path.display());
    }
}
