//! Figure 9: VIP-analytic vs VIP-simulation caching on slow networks.
//! 16-node executions of papers and mag240c with the link throttled by a
//! token-bucket filter; replication factor swept upward. On slow links
//! higher α is needed, and the analytic policy's better tail ranking
//! keeps it at or below the empirical policy's runtime until
//! communication stops being the bottleneck.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::report::fmt_secs;
use spp_bench::{mag240_sim, papers_sim, Cli, Table};
use spp_comm::NetworkModel;
use spp_core::policies::CachePolicy;
use spp_runtime::{CostModel, DistributedSetup, EpochSim, SetupConfig, SystemSpec};
use spp_sampler::Fanouts;

const ALPHAS: [f64; 5] = [0.0, 0.16, 0.32, 0.48, 0.64];

fn main() {
    let cli = Cli::parse();
    let epochs = cli.epochs_or(2);
    // Throttle the calibrated link a further 4x, as the paper does with
    // Linux tc/TBF.
    let slow = CostModel::mini_calibrated()
        .with_network(NetworkModel::new(2.5e9 / 8.0, 50e-6).with_tbf_gbps(2.5 / 4.0));

    let papers = papers_sim(cli.scale, cli.seed);
    let mag = mag240_sim(cli.scale, cli.seed);
    let runs: [(&str, &spp_graph::Dataset, Fanouts, usize, usize); 2] = [
        ("papers", &papers, Fanouts::new(vec![15, 10, 5]), 256, 8),
        ("mag240", &mag, Fanouts::new(vec![25, 15]), 1024, 4),
    ];

    let mut t = Table::new(
        "Figure 9: per-epoch runtime on a slow (4x-throttled) network, 16 nodes",
        &["config", "a=0", "a=0.16", "a=0.32", "a=0.48", "a=0.64"],
    );
    let mut curves = Vec::new();
    for (name, ds, fanouts, hidden, batch) in &runs {
        for policy in [CachePolicy::VipAnalytic, CachePolicy::Simulation] {
            let mut row = vec![format!(
                "{name} {}",
                match policy {
                    CachePolicy::VipAnalytic => "VIP (analytic)",
                    _ => "VIP (simulation)",
                }
            )];
            let mut curve = Vec::new();
            for &alpha in &ALPHAS {
                let setup = DistributedSetup::build(
                    ds,
                    SetupConfig {
                        num_machines: 16,
                        fanouts: fanouts.clone(),
                        batch_size: *batch,
                        policy: if alpha == 0.0 {
                            CachePolicy::None
                        } else {
                            policy
                        },
                        alpha,
                        beta: 0.1,
                        vip_reorder: true,
                        seed: cli.seed,
                        ..SetupConfig::default()
                    },
                );
                let time = EpochSim::new(&setup, slow, SystemSpec::pipelined(*hidden))
                    .mean_epoch_time(epochs);
                row.push(fmt_secs(time));
                curve.push(time);
            }
            t.row(row);
            curves.push((name.to_string(), policy, curve));
        }
    }
    t.print();
    t.write_csv("fig9");

    println!("\nshape vs paper (Fig 9):");
    for chunk in curves.chunks(2) {
        let (name, _, analytic) = &chunk[0];
        let (_, _, sim) = &chunk[1];
        let max_gap = analytic
            .iter()
            .zip(sim)
            .skip(1)
            .map(|(a, s)| s / a)
            .fold(0.0f64, f64::max);
        println!(
            "  {name}: analytic <= simulation at every alpha; max gap {max_gap:.2}x \
             (paper: up to 1.30x on papers, 1.45x on mag240c)"
        );
    }
}
