//! Table 1: per-epoch runtime of progressively more sophisticated
//! distributed GNN training systems (papers benchmark, 3-layer GraphSAGE,
//! fanouts (15,10,5), hidden 256) on 1/2/4/8 machines. Cache replication
//! factors follow the paper: 8% (2 machines), 16% (4), 32% (8).

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::report::fmt_secs;
use spp_bench::{papers_sim, Cli, Table};
use spp_core::policies::CachePolicy;
use spp_runtime::{CostModel, DistributedSetup, EpochSim, SetupConfig, SystemSpec};
use spp_sampler::Fanouts;

fn main() {
    let cli = Cli::parse();
    let ds = papers_sim(cli.scale, cli.seed);
    let hidden = 256usize;
    let batch = 8usize;
    let fanouts = Fanouts::new(vec![15, 10, 5]);
    let machines = [1usize, 2, 4, 8];
    let alpha_of = |k: usize| match k {
        2 => 0.08,
        4 => 0.16,
        _ => 0.32,
    };
    let epochs = cli.epochs_or(3);
    let cost = CostModel::mini_calibrated();

    let mut results: Vec<Vec<Option<f64>>> = vec![vec![None; machines.len()]; 4];
    for (ki, &k) in machines.iter().enumerate() {
        let base_cfg = SetupConfig {
            num_machines: k,
            fanouts: fanouts.clone(),
            batch_size: batch,
            policy: CachePolicy::None,
            alpha: 0.0,
            beta: 0.0,
            vip_reorder: true,
            seed: cli.seed,
            ..SetupConfig::default()
        };
        let bare = DistributedSetup::build(&ds, base_cfg.clone());
        results[0][ki] =
            Some(EpochSim::new(&bare, cost, SystemSpec::salient(hidden)).mean_epoch_time(epochs));
        if k >= 2 {
            results[1][ki] = Some(
                EpochSim::new(&bare, cost, SystemSpec::partitioned(hidden)).mean_epoch_time(epochs),
            );
            results[2][ki] = Some(
                EpochSim::new(&bare, cost, SystemSpec::pipelined(hidden)).mean_epoch_time(epochs),
            );
            let cached = DistributedSetup::build(
                &ds,
                SetupConfig {
                    policy: CachePolicy::VipAnalytic,
                    alpha: alpha_of(k),
                    ..base_cfg
                },
            );
            results[3][ki] = Some(
                EpochSim::new(&cached, cost, SystemSpec::pipelined(hidden)).mean_epoch_time(epochs),
            );
        }
    }

    let labels = [
        "SALIENT (full replication)",
        "+ Partitioned features",
        "+ Pipeline communication",
        "+ Feature caching",
    ];
    let mut t = Table::new(
        &format!(
            "Table 1: per-epoch runtime, {} ({} vertices), simulated",
            ds.name,
            ds.num_vertices()
        ),
        &["System", "K=1", "K=2", "K=4", "K=8"],
    );
    for (li, label) in labels.iter().enumerate() {
        let mut row = vec![label.to_string()];
        for cell in &results[li] {
            row.push(match cell {
                Some(s) => fmt_secs(*s),
                None => "-".to_string(),
            });
        }
        t.row(row);
    }
    t.print();
    t.write_csv("table1");

    // Shape checks against the paper's qualitative claims.
    let r = |li: usize, ki: usize| results[li][ki].unwrap();
    println!("\nshape vs paper (papers100M, Table 1):");
    println!(
        "  partitioned slowdown vs full-repl at K=8: {:.2}x (paper 3.5x)",
        r(1, 3) / r(0, 3)
    );
    println!(
        "  pipelining speedup over partitioned at K=8: {:.2}x (paper 2.0x)",
        r(1, 3) / r(2, 3)
    );
    println!(
        "  caching vs full-repl at K=8: {:.2}x (paper 0.94x — parity)",
        r(3, 3) / r(0, 3)
    );
    println!(
        "  full-repl scaling K=1 -> K=8: {:.2}x (paper 6.7x)",
        r(0, 0) / r(0, 3)
    );
}
