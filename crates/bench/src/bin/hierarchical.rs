//! Ablation for the paper's §6 future work: hierarchical (machine × GPU)
//! partitioning. Measures real sampled traffic between GPUs and splits it
//! into same-GPU / intra-machine / inter-machine, then estimates the
//! communication time under a two-tier interconnect (NVLink-class
//! intra-machine links ~10x faster than the network).

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_bench::{papers_sim, Cli, Table};
use spp_graph::VertexId;
use spp_partition::hierarchical::hierarchical_partition;
use spp_partition::multilevel::MultilevelPartitioner;
use spp_partition::{Partitioning, VertexWeights};
use spp_sampler::{Fanouts, MinibatchIter, NodeWiseSampler};

/// Counts sampled accesses by locality class for each partitioning.
fn traffic(
    ds: &spp_graph::Dataset,
    part: &Partitioning,
    machine_of: &dyn Fn(u32) -> u32,
    fanouts: &Fanouts,
    batch: usize,
    epochs: usize,
    seed: u64,
) -> (f64, f64) {
    let total_parts = part.num_parts();
    let mut train: Vec<Vec<VertexId>> = vec![Vec::new(); total_parts];
    for &v in &ds.split.train {
        train[part.part_of(v) as usize].push(v);
    }
    let mut intra = 0u64;
    let mut inter = 0u64;
    for (p, t) in train.iter().enumerate() {
        let sampler = NodeWiseSampler::new(&ds.graph, fanouts.clone());
        let mut rng = StdRng::seed_from_u64(seed ^ (p as u64) << 7);
        for e in 0..epochs {
            for b in MinibatchIter::new(t, batch, seed ^ p as u64, e as u64) {
                let mfg = sampler.sample(&b, &mut rng);
                for &v in &mfg.nodes {
                    let vp = part.part_of(v);
                    if vp == p as u32 {
                        continue;
                    }
                    if machine_of(vp) == machine_of(p as u32) {
                        intra += 1;
                    } else {
                        inter += 1;
                    }
                }
            }
        }
    }
    (intra as f64 / epochs as f64, inter as f64 / epochs as f64)
}

fn main() {
    let cli = Cli::parse();
    let ds = papers_sim(cli.scale, cli.seed);
    let machines = 4usize;
    let gpus = 2usize;
    let fanouts = Fanouts::new(vec![15, 10, 5]);
    let epochs = cli.epochs_or(2);
    let w = VertexWeights::from_dataset(&ds);

    let hier = hierarchical_partition(&ds.graph, &w, machines, gpus, cli.seed);
    let flat = MultilevelPartitioner::new(machines * gpus)
        .seed(cli.seed)
        .partition(&ds.graph, &w);

    // Two-tier interconnect: intra-machine links 10x the network rate.
    let net_cost = |intra: f64, inter: f64| inter + intra / 10.0;

    let mut t = Table::new(
        "Hierarchical partitioning: remote accesses/epoch by locality (4 machines x 2 GPUs)",
        &[
            "partitioning",
            "intra-machine",
            "inter-machine",
            "weighted comm cost",
        ],
    );
    let mut costs = Vec::new();
    for (name, part) in [("flat 8-way", &flat), ("hierarchical 4x2", &hier.flat)] {
        let (intra, inter) = traffic(
            &ds,
            part,
            &|p| p / gpus as u32,
            &fanouts,
            8,
            epochs,
            cli.seed ^ 9,
        );
        costs.push(net_cost(intra, inter));
        t.row(vec![
            name.to_string(),
            format!("{intra:.0}"),
            format!("{inter:.0}"),
            format!("{:.0}", net_cost(intra, inter)),
        ]);
    }
    t.print();
    t.write_csv("hierarchical");
    println!(
        "\nhierarchical vs flat weighted comm cost: {:.2}x better\n\
         (paper §6: 'a hierarchical graph partitioning may better leverage the higher\n\
         intra-machine bandwidth among GPUs than inter-machine communication')",
        costs[0] / costs[1]
    );
}
