//! Figure 1: computation profiles of one machine under the system ladder,
//! rendered as ASCII Gantt lanes (CPU / copy / NIC / GPU) from the DES
//! trace. The paper's figure shows exactly these four lanes: partitioned
//! execution leaves long NIC gaps between GPU bursts; pipelining packs
//! them; caching shrinks the NIC lane until it hides under the GPU lane.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::{papers_sim, Cli};
use spp_core::policies::CachePolicy;
use spp_runtime::{CostModel, DistributedSetup, EpochSim, SetupConfig, SystemSpec};
use spp_sampler::Fanouts;

const LANES: [(&str, &str); 5] = [
    ("cpu0", "CPU (sample/slice)"),
    ("copy0", "PCIe copy"),
    ("nic0", "NIC (features)"),
    ("nic-grad0", "NIC (gradients)"),
    ("gpu0", "GPU (train)"),
];
const WIDTH: usize = 100;

fn render(trace: &[(String, String, f64, f64)], t0: f64, t1: f64) {
    let span = t1 - t0;
    for (resource, label) in LANES {
        let mut lane = vec![' '; WIDTH];
        for (res, stage, s, e) in trace {
            if res != resource || *e <= t0 || *s >= t1 {
                continue;
            }
            let a = (((s - t0) / span) * WIDTH as f64).floor().max(0.0) as usize;
            let b = (((e - t0) / span) * WIDTH as f64).ceil().min(WIDTH as f64) as usize;
            let ch = stage.chars().next().unwrap_or('?');
            for c in lane.iter_mut().take(b.max(a + 1)).skip(a) {
                *c = ch;
            }
        }
        println!("{label:>20} |{}|", lane.iter().collect::<String>());
    }
}

fn main() {
    let cli = Cli::parse();
    let ds = papers_sim(cli.scale, cli.seed);
    let cost = CostModel::mini_calibrated();
    let k = 8usize;
    let base = SetupConfig {
        num_machines: k,
        fanouts: Fanouts::new(vec![15, 10, 5]),
        batch_size: 8,
        policy: CachePolicy::None,
        alpha: 0.0,
        beta: 0.5,
        vip_reorder: true,
        seed: cli.seed,
        ..SetupConfig::default()
    };
    let bare = DistributedSetup::build(&ds, base.clone());
    let cached = DistributedSetup::build(
        &ds,
        SetupConfig {
            policy: CachePolicy::VipAnalytic,
            alpha: 0.32,
            ..base
        },
    );

    println!(
        "Figure 1 profile: machine 0's resource lanes over a mid-epoch window.\n\
         glyphs: s=sample, l=slice+serve, c=comm, h=h2d, t=train, a=allreduce\n"
    );
    for (title, setup, spec) in [
        (
            "partitioned features (no pipeline, no cache)",
            &bare,
            SystemSpec::partitioned(256),
        ),
        ("+ pipelining", &bare, SystemSpec::pipelined(256)),
        (
            "+ VIP caching (SALIENT++)",
            &cached,
            SystemSpec::pipelined(256),
        ),
    ] {
        let (time, trace) = EpochSim::new(setup, cost, spec).simulate_epoch_traced(0);
        // Window: the middle 20% of the epoch (steady state).
        let (t0, t1) = (time.makespan * 0.4, time.makespan * 0.6);
        println!(
            "== {title}: epoch {:.1} ms, window {:.1}-{:.1} ms ==",
            time.makespan * 1e3,
            t0 * 1e3,
            t1 * 1e3
        );
        render(&trace, t0, t1);
        println!();
    }
    println!(
        "shape vs paper (Fig 1): without pipelining, GPU bursts are separated by\n\
         long NIC/comm intervals; pipelining packs all lanes; caching empties most\n\
         of the feature-NIC lane so the GPU lane runs nearly back-to-back."
    );
}
