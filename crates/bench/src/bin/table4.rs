//! Table 4: SALIENT++ vs a DistDGL-like baseline on the papers benchmark
//! (8 machines, 3-layer GraphSAGE, fanouts (15,10,5), hidden 256). The
//! baseline models DistDGL's architecture: per-hop RPC sampling against
//! remote graph servers, bulk-synchronous feature fetching, no caching,
//! no pipelining, heavier communication software.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::report::fmt_secs;
use spp_bench::{papers_sim, Cli, Table};
use spp_core::policies::CachePolicy;
use spp_runtime::{CostModel, DistributedSetup, EpochSim, SetupConfig, SystemSpec};
use spp_sampler::Fanouts;

fn main() {
    let cli = Cli::parse();
    let ds = papers_sim(cli.scale, cli.seed);
    let epochs = cli.epochs_or(3);
    let cost = CostModel::mini_calibrated();
    let base_cfg = SetupConfig {
        num_machines: 8,
        fanouts: Fanouts::new(vec![15, 10, 5]),
        batch_size: 8,
        policy: CachePolicy::None,
        alpha: 0.0,
        beta: 0.1,
        vip_reorder: true,
        seed: cli.seed,
        ..SetupConfig::default()
    };
    let bare = DistributedSetup::build(&ds, base_cfg.clone());
    let cached = DistributedSetup::build(
        &ds,
        SetupConfig {
            policy: CachePolicy::VipAnalytic,
            alpha: 0.32,
            ..base_cfg
        },
    );

    let t_spp = EpochSim::new(&cached, cost, SystemSpec::pipelined(256)).mean_epoch_time(epochs);
    let t_dgl = EpochSim::new(&bare, cost, SystemSpec::distdgl(256)).mean_epoch_time(epochs);

    let mut t = Table::new(
        "Table 4: per-epoch time, papers benchmark, 8 machines (simulated)",
        &["system", "time", "notes"],
    );
    t.row(vec![
        "SALIENT++".into(),
        fmt_secs(t_spp),
        "VIP cache a=0.32, 10-deep pipeline".into(),
    ]);
    t.row(vec![
        "DistDGL-like".into(),
        fmt_secs(t_dgl),
        "per-hop RPC sampling, synchronous, no cache".into(),
    ]);
    t.print();
    t.write_csv("table4");

    println!(
        "\nshape vs paper (Table 4): DistDGL-like is {:.1}x slower (paper: 12.7x on 8 GPUs)",
        t_dgl / t_spp
    );
}
