//! Table 2: summary of the (synthetic stand-in) data sets, with the
//! paper's originals for comparison.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::{mag240_sim, papers_sim, products_sim, Cli, Table};

fn main() {
    let cli = Cli::parse();
    let sets = [
        products_sim(cli.scale, cli.seed),
        papers_sim(cli.scale, cli.seed),
        mag240_sim(cli.scale, cli.seed),
    ];
    let paper = [
        ("ogbn-products", "2.4M", "123M", 100, "197K/39K/2.2M"),
        ("ogbn-papers100M", "111M", "3.2B", 128, "1.2M/125K/214K"),
        ("mag240c", "121M", "2.6B", 768, "1.1M/134K/88K"),
    ];
    let mut t = Table::new(
        "Table 2: data sets (stand-in vs paper)",
        &[
            "data set",
            "#vertices",
            "#edges",
            "#feat",
            "train/val/test",
            "paper original",
        ],
    );
    for (ds, p) in sets.iter().zip(&paper) {
        t.row(vec![
            ds.name.clone(),
            format!("{}", ds.num_vertices()),
            format!("{}", ds.graph.num_edges() / 2),
            format!("{}", ds.features.dim()),
            format!(
                "{}/{}/{}",
                ds.split.train.len(),
                ds.split.val.len(),
                ds.split.test.len()
            ),
            format!("{}: {} v, {} e, {} feat, {}", p.0, p.1, p.2, p.3, p.4),
        ]);
    }
    t.print();
    t.write_csv("table2_datasets");

    println!("\nstructural statistics (degree skew drives the paper's access skew):");
    for ds in &sets {
        println!(
            "  {}: {}",
            ds.name,
            spp_graph::stats::GraphStats::compute(&ds.graph)
        );
    }
}
