//! Ablation (beyond the paper's figures): distributed minibatch
//! *inference* (paper §2.4 — SALIENT++ reuses the training forward path
//! with sampling at inference time, fanouts (20,20,20)). Shows that VIP
//! caching benefits inference epochs just like training epochs, and that
//! inference rounds need no gradient synchronization.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::report::fmt_secs;
use spp_bench::{papers_sim, Cli, Table};
use spp_core::policies::CachePolicy;
use spp_graph::VertexId;
use spp_runtime::{CostModel, DistributedSetup, EpochSim, SetupConfig, SystemSpec};
use spp_sampler::Fanouts;

fn main() {
    let cli = Cli::parse();
    let ds = papers_sim(cli.scale, cli.seed);
    let k = 8usize;
    let cost = CostModel::mini_calibrated();

    let mut t = Table::new(
        "Distributed inference epoch, papers 8 GPUs, inference fanouts (20,20,20)",
        &[
            "config",
            "train epoch",
            "inference epoch",
            "infer comm busy",
        ],
    );
    for (label, policy, alpha) in [
        ("no cache", CachePolicy::None, 0.0),
        ("VIP a=0.32", CachePolicy::VipAnalytic, 0.32),
    ] {
        let setup = DistributedSetup::build(
            &ds,
            SetupConfig {
                num_machines: k,
                fanouts: Fanouts::new(vec![20, 20, 20]),
                batch_size: 8,
                policy,
                alpha,
                beta: 0.5,
                vip_reorder: true,
                seed: cli.seed,
                ..SetupConfig::default()
            },
        );
        // Inference covers all labeled vertices, routed to their owners.
        let mut streams: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        for &v in setup
            .dataset
            .split
            .val
            .iter()
            .chain(&setup.dataset.split.test)
            .chain(&setup.dataset.split.train)
        {
            streams[setup.layout.owner_of(v) as usize].push(v);
        }
        for s in streams.iter_mut() {
            s.sort_unstable();
        }
        let sim = EpochSim::new(&setup, cost, SystemSpec::pipelined(256));
        let train = sim.simulate_epoch(0);
        let infer = sim.simulate_inference_epoch(&streams, 0);
        t.row(vec![
            label.to_string(),
            fmt_secs(train.makespan),
            fmt_secs(infer.makespan),
            fmt_secs(infer.breakdown.comm / k as f64),
        ]);
    }
    t.print();
    t.write_csv("inference");
    println!(
        "\ntakeaway: inference epochs skip gradient synchronization entirely and use a\n\
         forward-only GPU pass; VIP caching cuts their communication identically, since\n\
         the sampled access pattern is what the analysis models — not the backward pass."
    );
}
