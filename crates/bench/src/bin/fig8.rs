//! Figure 8: performance breakdown for SALIENT++ on an 8-GPU papers run
//! with all local features on GPU (β = 1), for pipelining on/off ×
//! α ∈ {0, 0.32}. Without caching, communication dominates and remains
//! the bottleneck even when pipelined; with caching, communication is
//! small enough to overlap almost perfectly.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::report::fmt_secs;
use spp_bench::{papers_sim, Cli, Table};
use spp_core::policies::CachePolicy;
use spp_runtime::{CostModel, DistributedSetup, EpochSim, SetupConfig, SystemSpec};
use spp_sampler::Fanouts;

fn main() {
    let cli = Cli::parse();
    let ds = papers_sim(cli.scale, cli.seed);
    let cost = CostModel::mini_calibrated();
    let k = 8usize;

    let mut t = Table::new(
        "Figure 8: stage breakdown, papers 8 GPUs, beta=1 (per-machine busy time per epoch)",
        &[
            "config",
            "batch prep (comp)",
            "batch prep (comm)",
            "train (GPU)",
            "allreduce",
            "startup",
            "epoch",
        ],
    );
    let mut rows = Vec::new();
    for (pipelined, alpha) in [(false, 0.0), (false, 0.32), (true, 0.0), (true, 0.32)] {
        let setup = DistributedSetup::build(
            &ds,
            SetupConfig {
                num_machines: k,
                fanouts: Fanouts::new(vec![15, 10, 5]),
                batch_size: 8,
                policy: if alpha == 0.0 {
                    CachePolicy::None
                } else {
                    CachePolicy::VipAnalytic
                },
                alpha,
                beta: 1.0,
                vip_reorder: true,
                seed: cli.seed,
                ..SetupConfig::default()
            },
        );
        let spec = if pipelined {
            SystemSpec::pipelined(256)
        } else {
            SystemSpec::partitioned(256)
        };
        let e = EpochSim::new(&setup, cost, spec).simulate_epoch(0);
        let b = e.breakdown;
        let kf = k as f64;
        t.row(vec![
            format!(
                "pipelining {} a={alpha}",
                if pipelined { "on" } else { "off" }
            ),
            fmt_secs((b.sample + b.slice + b.serve) / kf),
            fmt_secs(b.comm / kf),
            fmt_secs(b.train / kf),
            fmt_secs(b.allreduce / kf),
            fmt_secs(e.startup),
            fmt_secs(e.makespan),
        ]);
        rows.push((pipelined, alpha, e));
    }
    t.print();
    t.write_csv("fig8");

    let find = |p: bool, a: f64| {
        rows.iter()
            .find(|(pp, aa, _)| *pp == p && *aa == a)
            .map(|(_, _, e)| e)
            .unwrap()
    };
    let off0 = find(false, 0.0);
    let on0 = find(true, 0.0);
    let on32 = find(true, 0.32);
    println!("\nshape vs paper (Fig 8):");
    println!(
        "  pipelining-off a=0: comm is {:.0}% of total busy time — the dominant cost",
        100.0 * off0.breakdown.comm / off0.breakdown.total()
    );
    println!(
        "  a=0 pipelined epoch {} is still comm-bound: comm busy/machine {} vs makespan/machine-round budget",
        fmt_secs(on0.makespan),
        fmt_secs(on0.breakdown.comm / k as f64)
    );
    println!(
        "  a=0.32 pipelined epoch {} — comm busy {} now hides under compute ({} train)",
        fmt_secs(on32.makespan),
        fmt_secs(on32.breakdown.comm / k as f64),
        fmt_secs(on32.breakdown.train / k as f64)
    );
}
