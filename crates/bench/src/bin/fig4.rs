//! Figure 4: impact of pipelining and VIP optimizations across the three
//! benchmarks — products (4 partitions), papers (8 partitions), mag240c
//! (16 partitions) — with the paper's replication factors (0.16, 0.32,
//! 0.32) and architectures (Table 3: 3-layer/hidden-256 for products and
//! papers, 2-layer/hidden-1024 fanouts (25,15) for mag240c).

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::report::fmt_secs;
use spp_bench::{mag240_sim, papers_sim, products_sim, Cli, Table};
use spp_core::policies::CachePolicy;
use spp_graph::Dataset;
use spp_runtime::{CostModel, DistributedSetup, EpochSim, SetupConfig, SystemSpec};
use spp_sampler::Fanouts;

struct Bench {
    ds: Dataset,
    machines: usize,
    alpha: f64,
    fanouts: Fanouts,
    hidden: usize,
    batch: usize,
}

fn main() {
    let cli = Cli::parse();
    let benches = [
        Bench {
            ds: products_sim(cli.scale, cli.seed),
            machines: 4,
            alpha: 0.16,
            fanouts: Fanouts::new(vec![15, 10, 5]),
            hidden: 256,
            batch: 16,
        },
        Bench {
            ds: papers_sim(cli.scale, cli.seed),
            machines: 8,
            alpha: 0.32,
            fanouts: Fanouts::new(vec![15, 10, 5]),
            hidden: 256,
            batch: 8,
        },
        Bench {
            ds: mag240_sim(cli.scale, cli.seed),
            machines: 16,
            alpha: 0.32,
            fanouts: Fanouts::new(vec![25, 15]),
            hidden: 1024,
            batch: 4,
        },
    ];
    let epochs = cli.epochs_or(3);
    let cost = CostModel::mini_calibrated();

    let mut t = Table::new(
        "Figure 4: per-epoch runtime under successive optimizations (simulated)",
        &["system", "products K=4", "papers K=8", "mag240 K=16"],
    );
    let mut rows: Vec<Vec<String>> = vec![
        vec!["partitioned (no pipeline, no cache)".into()],
        vec!["+ pipelining".into()],
        vec!["+ VIP caching (SALIENT++)".into()],
    ];
    let mut ratios = Vec::new();
    for b in &benches {
        let base_cfg = SetupConfig {
            num_machines: b.machines,
            fanouts: b.fanouts.clone(),
            batch_size: b.batch,
            policy: CachePolicy::None,
            alpha: 0.0,
            beta: 0.0,
            vip_reorder: true,
            seed: cli.seed,
            ..SetupConfig::default()
        };
        let bare = DistributedSetup::build(&b.ds, base_cfg.clone());
        let cached = DistributedSetup::build(
            &b.ds,
            SetupConfig {
                policy: CachePolicy::VipAnalytic,
                alpha: b.alpha,
                ..base_cfg
            },
        );
        let t_part =
            EpochSim::new(&bare, cost, SystemSpec::partitioned(b.hidden)).mean_epoch_time(epochs);
        let t_pipe =
            EpochSim::new(&bare, cost, SystemSpec::pipelined(b.hidden)).mean_epoch_time(epochs);
        let t_spp =
            EpochSim::new(&cached, cost, SystemSpec::pipelined(b.hidden)).mean_epoch_time(epochs);
        rows[0].push(fmt_secs(t_part));
        rows[1].push(fmt_secs(t_pipe));
        rows[2].push(fmt_secs(t_spp));
        ratios.push((b.ds.name.clone(), t_part / t_pipe, t_pipe / t_spp));
    }
    for r in rows {
        t.row(r);
    }
    t.print();
    t.write_csv("fig4");

    println!("\nshape vs paper (Fig 4): pipelining and caching each contribute;");
    for (name, pipe_gain, cache_gain) in ratios {
        println!(
            "  {name}: pipelining {pipe_gain:.2}x, caching on top {cache_gain:.2}x \
             (paper: papers benefits equally from both; mag240c slightly more from caching)"
        );
    }
}
