//! Figure 7: replication-factor impact on per-epoch runtime. Papers on
//! 4 and 8 partitions (90% of local features on GPU), mag240c on 8 and
//! 16 partitions (10% on GPU), α from 0 to 0.32. Modest replication
//! factors should be sufficient to minimize per-epoch runtime.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::report::fmt_secs;
use spp_bench::{mag240_sim, papers_sim, Cli, Table};
use spp_core::policies::CachePolicy;
use spp_runtime::{CostModel, DistributedSetup, EpochSim, SetupConfig, SystemSpec};
use spp_sampler::Fanouts;

const ALPHAS: [f64; 5] = [0.0, 0.04, 0.08, 0.16, 0.32];

fn main() {
    let cli = Cli::parse();
    let epochs = cli.epochs_or(3);
    let cost = CostModel::mini_calibrated();

    let papers = papers_sim(cli.scale, cli.seed);
    let mag = mag240_sim(cli.scale, cli.seed);
    let runs: [(&str, &spp_graph::Dataset, usize, f64, Fanouts, usize, usize); 4] = [
        (
            "papers K=4",
            &papers,
            4,
            0.9,
            Fanouts::new(vec![15, 10, 5]),
            256,
            8,
        ),
        (
            "papers K=8",
            &papers,
            8,
            0.9,
            Fanouts::new(vec![15, 10, 5]),
            256,
            8,
        ),
        (
            "mag240 K=8",
            &mag,
            8,
            0.1,
            Fanouts::new(vec![25, 15]),
            1024,
            4,
        ),
        (
            "mag240 K=16",
            &mag,
            16,
            0.1,
            Fanouts::new(vec![25, 15]),
            1024,
            4,
        ),
    ];

    let mut t = Table::new(
        "Figure 7: per-epoch runtime vs replication factor (simulated)",
        &["config", "a=0", "a=0.04", "a=0.08", "a=0.16", "a=0.32"],
    );
    let mut curves = Vec::new();
    for (label, ds, k, beta, fanouts, hidden, batch) in &runs {
        let mut row = vec![label.to_string()];
        let mut curve = Vec::new();
        for &alpha in &ALPHAS {
            let setup = DistributedSetup::build(
                ds,
                SetupConfig {
                    num_machines: *k,
                    fanouts: fanouts.clone(),
                    batch_size: *batch,
                    policy: if alpha == 0.0 {
                        CachePolicy::None
                    } else {
                        CachePolicy::VipAnalytic
                    },
                    alpha,
                    beta: *beta,
                    vip_reorder: true,
                    seed: cli.seed,
                    ..SetupConfig::default()
                },
            );
            let time =
                EpochSim::new(&setup, cost, SystemSpec::pipelined(*hidden)).mean_epoch_time(epochs);
            row.push(fmt_secs(time));
            curve.push(time);
        }
        t.row(row);
        curves.push((label.to_string(), curve));
    }
    t.print();
    t.write_csv("fig7");

    println!("\nshape vs paper (Fig 7): runtime falls with alpha and flattens at modest");
    println!("replication (paper: 0.08-0.16 suffices at K=4, 0.16-0.32 at K=8/16):");
    for (label, c) in &curves {
        let knee = c
            .iter()
            .position(|&t| t <= c.last().unwrap() * 1.05)
            .unwrap_or(ALPHAS.len() - 1);
        println!(
            "  {label}: a=0 {} -> a=0.32 {} ({:.2}x), within 5% of best at a={}",
            fmt_secs(c[0]),
            fmt_secs(*c.last().unwrap()),
            c[0] / c.last().unwrap(),
            ALPHAS[knee]
        );
    }
}
