//! Ablation for the paper's §6 future-work proposal: fold VIP analysis
//! into the partitioning itself. A greedy VIP-aware re-homing pass moves
//! non-training vertices toward the partition that accesses them most,
//! under the same balance constraints; we then *measure* per-epoch
//! communication with real sampling, with and without caching on top.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::{papers_sim, Cli, Table};
use spp_core::policies::{CachePolicy, PolicyContext};
use spp_core::vip_partition::VipRefiner;
use spp_core::{CacheBuilder, StaticCache, VipModel};
use spp_graph::VertexId;
use spp_partition::{Partitioning, VertexWeights};
use spp_runtime::{AccessCounts, DistributedSetup, SetupConfig};
use spp_sampler::Fanouts;

fn measure(
    ds: &spp_graph::Dataset,
    part: &Partitioning,
    train: &[Vec<VertexId>],
    fanouts: &Fanouts,
    alpha: f64,
    epochs: usize,
    seed: u64,
) -> (f64, f64) {
    let counts = AccessCounts::measure(&ds.graph, train, fanouts, 8, epochs, seed);
    let none = counts.no_cache_volume(part);
    if alpha == 0.0 {
        return (none, none);
    }
    let builder = CacheBuilder::new(alpha, ds.num_vertices(), part.num_parts());
    let caches: Vec<StaticCache> = (0..part.num_parts() as u32)
        .map(|p| {
            let ranking = PolicyContext {
                graph: &ds.graph,
                partitioning: part,
                part: p,
                local_train: &train[p as usize],
                fanouts: fanouts.clone(),
                batch_size: 8,
                seed,
                oracle_counts: &[],
            }
            .rank(CachePolicy::VipAnalytic);
            builder.build(&ranking)
        })
        .collect();
    (none, counts.total_volume(part, &caches))
}

fn main() {
    let cli = Cli::parse();
    let ds = papers_sim(cli.scale, cli.seed);
    let k = 8usize;
    let fanouts = Fanouts::new(vec![15, 10, 5]);
    let epochs = cli.epochs_or(2);

    let cfg = SetupConfig {
        num_machines: k,
        fanouts: fanouts.clone(),
        batch_size: 8,
        ..SetupConfig::default()
    };
    let (base_part, train) = DistributedSetup::partition(&ds, &cfg);
    let weights = VertexWeights::from_dataset(&ds);
    let vip = VipModel::new(fanouts.clone(), 8).partition_scores(&ds.graph, &train);
    let epoch_weight: Vec<f64> = train.iter().map(|t| t.len().div_ceil(8) as f64).collect();
    let mut protected = vec![false; ds.num_vertices()];
    for t in &train {
        for &v in t {
            protected[v as usize] = true;
        }
    }
    for &v in ds.split.val.iter().chain(&ds.split.test) {
        protected[v as usize] = true;
    }

    let (refined, moves) = VipRefiner::new().balance_tolerance(1.10).refine(
        &base_part,
        &weights,
        &vip,
        &epoch_weight,
        &protected,
    );
    println!(
        "VIP-aware re-homing applied {moves} moves; edge cut {:.1}% -> {:.1}%",
        100.0 * spp_partition::metrics::edge_cut_fraction(&ds.graph, &base_part),
        100.0 * spp_partition::metrics::edge_cut_fraction(&ds.graph, &refined)
    );

    let mut t = Table::new(
        "VIP-aware partitioning ablation: measured remote vertices/epoch (papers, K=8)",
        &["partitioning", "no cache", "VIP cache a=0.16"],
    );
    for (name, part) in [("multilevel", &base_part), ("+ VIP re-homing", &refined)] {
        let (none, cached) = measure(&ds, part, &train, &fanouts, 0.16, epochs, cli.seed ^ 5);
        t.row(vec![
            name.to_string(),
            format!("{none:.0}"),
            format!("{cached:.0}"),
        ]);
    }
    t.print();
    t.write_csv("vip_partition_ablation");
    println!(
        "\ntakeaway: access-pattern-aware placement reduces communication before any\n\
         cache exists and composes with caching — evidence for the paper's §6 proposal."
    );
}
