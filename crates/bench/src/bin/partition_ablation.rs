//! Ablation (beyond the paper's figures): how much does partition quality
//! matter for communication volume? Compares random, hash, streaming LDG,
//! and the multilevel partitioner at equal replication factor.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::{papers_sim, Cli, Table};
use spp_core::policies::{CachePolicy, PolicyContext};
use spp_core::{CacheBuilder, StaticCache};
use spp_partition::multilevel::MultilevelPartitioner;
use spp_partition::{simple, Partitioning, VertexWeights};
use spp_runtime::AccessCounts;
use spp_sampler::Fanouts;

fn main() {
    let cli = Cli::parse();
    let ds = papers_sim(cli.scale, cli.seed);
    let k = 8usize;
    let batch = 8usize;
    let fanouts = Fanouts::new(vec![15, 10, 5]);
    let epochs = cli.epochs_or(2);
    let w = VertexWeights::from_dataset(&ds);

    let parts: Vec<(&str, Partitioning)> = vec![
        (
            "random",
            simple::random_partition(ds.num_vertices(), k, cli.seed),
        ),
        ("hash", simple::hash_partition(ds.num_vertices(), k)),
        ("LDG", simple::ldg_partition(&ds.graph, k, &w)),
        (
            "multilevel",
            MultilevelPartitioner::new(k)
                .seed(cli.seed)
                .partition(&ds.graph, &w),
        ),
    ];

    let mut t = Table::new(
        "Partition ablation: edge cut and per-epoch remote volume (papers, K=8)",
        &[
            "partitioner",
            "edge cut",
            "no cache",
            "VIP a=0.16",
            "VIP a=0.32",
        ],
    );
    for (name, part) in &parts {
        let mut train: Vec<Vec<spp_graph::VertexId>> = vec![Vec::new(); k];
        for &v in &ds.split.train {
            train[part.part_of(v) as usize].push(v);
        }
        let counts = AccessCounts::measure(&ds.graph, &train, &fanouts, batch, epochs, cli.seed);
        let none = counts.no_cache_volume(part);
        let mut row = vec![
            name.to_string(),
            format!(
                "{:.1}%",
                100.0 * spp_partition::metrics::edge_cut_fraction(&ds.graph, part)
            ),
            format!("{none:.0}"),
        ];
        for alpha in [0.16, 0.32] {
            let builder = CacheBuilder::new(alpha, ds.num_vertices(), k);
            let caches: Vec<StaticCache> = (0..k as u32)
                .map(|p| {
                    let ranking = PolicyContext {
                        graph: &ds.graph,
                        partitioning: part,
                        part: p,
                        local_train: &train[p as usize],
                        fanouts: fanouts.clone(),
                        batch_size: batch,
                        seed: cli.seed,
                        oracle_counts: &[],
                    }
                    .rank(CachePolicy::VipAnalytic);
                    builder.build(&ranking)
                })
                .collect();
            row.push(format!("{:.0}", counts.total_volume(part, &caches)));
        }
        t.row(row);
    }
    t.print();
    t.write_csv("partition_ablation");
    println!(
        "\ntakeaway: a structure-aware partitioner cuts the no-cache volume by itself;\n\
         VIP caching then removes most of what remains — the two compose (the paper's\n\
         future-work §6 proposes folding VIP into the partitioning objective)."
    );
}
