//! §5.3 preprocessing overheads: wall-clock time for each preprocessing
//! step of a SALIENT++ deployment, mirroring the paper's accounting —
//! dataset load, graph partitioning (METIS: ~2 h serial on papers100M),
//! VIP computation (paper: 11.8 s), reordering + feature store
//! construction, and cache fill (paper: ~22 s for remote features).

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::report::fmt_secs;
use spp_bench::{papers_sim, Cli, Table};
use spp_core::policies::{CachePolicy, PolicyContext};
use spp_core::{CacheBuilder, ReorderedLayout, VipModel};
use spp_graph::Dataset;
use spp_partition::multilevel::MultilevelPartitioner;
use spp_partition::VertexWeights;
use spp_runtime::{DistributedSetup, SetupConfig};
use spp_sampler::Fanouts;
use std::time::Instant;

fn main() {
    let cli = Cli::parse();
    let k = 8usize;
    let fanouts = Fanouts::new(vec![15, 10, 5]);
    let batch = 8usize;

    let mut t = Table::new(
        "Preprocessing overheads (papers benchmark, K=8)",
        &["step", "measured", "paper (papers100M)"],
    );

    // Dataset generation stands in for "loading from disk".
    let t0 = Instant::now();
    let ds = papers_sim(cli.scale, cli.seed);
    t.row(vec![
        "dataset generation/load".into(),
        fmt_secs(t0.elapsed().as_secs_f64()),
        "~10 s (disk load)".into(),
    ]);

    // Save + load round trip (the artifact's preprocessed-dataset path).
    let tmp = std::env::temp_dir().join("spp-preproc-bench.sppd");
    let t0 = Instant::now();
    ds.save(&tmp).expect("save dataset");
    let saved = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let _ = Dataset::load(&tmp).expect("load dataset");
    t.row(vec![
        "binary save + load".into(),
        format!(
            "{} + {}",
            fmt_secs(saved),
            fmt_secs(t0.elapsed().as_secs_f64())
        ),
        "n/a (conda/OGB tooling)".into(),
    ]);
    std::fs::remove_file(&tmp).ok();

    // Partitioning.
    let w = VertexWeights::from_dataset(&ds);
    let t0 = Instant::now();
    let partitioning = MultilevelPartitioner::new(k)
        .seed(cli.seed)
        .partition(&ds.graph, &w);
    t.row(vec![
        format!("{k}-way multilevel partitioning"),
        fmt_secs(t0.elapsed().as_secs_f64()),
        "~2 h serial METIS".into(),
    ]);
    let mut train: Vec<Vec<spp_graph::VertexId>> = vec![Vec::new(); k];
    for &v in &ds.split.train {
        train[partitioning.part_of(v) as usize].push(v);
    }

    // VIP computation for all partitions.
    let t0 = Instant::now();
    let vip = VipModel::new(fanouts.clone(), batch).partition_scores(&ds.graph, &train);
    t.row(vec![
        format!("VIP analysis, {k} partitions, fanouts {fanouts}"),
        fmt_secs(t0.elapsed().as_secs_f64()),
        "11.8 s (GPU-streamed)".into(),
    ]);

    // Reordering.
    let t0 = Instant::now();
    let layout = ReorderedLayout::build(&partitioning, Some(&vip));
    let reordered = ds.permuted(layout.perm());
    t.row(vec![
        "two-level reorder + dataset permute".into(),
        fmt_secs(t0.elapsed().as_secs_f64()),
        "~30 min (disk-bound workflow)".into(),
    ]);
    let _ = reordered;

    // Cache ranking + fill (the remote-feature communication the paper
    // times at ~22 s).
    let t0 = Instant::now();
    let builder = CacheBuilder::new(0.32, ds.num_vertices(), k);
    for p in 0..k as u32 {
        let ranking = PolicyContext {
            graph: &ds.graph,
            partitioning: &partitioning,
            part: p,
            local_train: &train[p as usize],
            fanouts: fanouts.clone(),
            batch_size: batch,
            seed: cli.seed,
            oracle_counts: &[],
        }
        .rank(CachePolicy::VipAnalytic);
        let _cache = builder.build(&ranking);
    }
    t.row(vec![
        "cache ranking + fill (a=0.32, all machines)".into(),
        fmt_secs(t0.elapsed().as_secs_f64()),
        "~22 s (feature exchange)".into(),
    ]);

    // Full setup via the library entry point (everything combined).
    let t0 = Instant::now();
    let _setup = DistributedSetup::build(
        &ds,
        SetupConfig {
            num_machines: k,
            fanouts,
            batch_size: batch,
            policy: CachePolicy::VipAnalytic,
            alpha: 0.32,
            beta: 0.5,
            vip_reorder: true,
            seed: cli.seed,
            ..SetupConfig::default()
        },
    );
    t.row(vec![
        "DistributedSetup::build (end to end)".into(),
        fmt_secs(t0.elapsed().as_secs_f64()),
        "-".into(),
    ]);

    t.print();
    t.write_csv("preprocessing");
    println!(
        "\nnote: absolute times are on a ~1/1000-scale dataset; the point (as in the\n\
         paper) is that VIP analysis is cheap relative to partitioning and amortizes\n\
         over many training runs."
    );
}
