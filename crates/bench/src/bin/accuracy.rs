//! §5.3 model accuracy: end-to-end distributed training on the three
//! benchmarks with the cached, partitioned feature stores (real feature
//! exchange over machine threads), reporting validation and test
//! accuracy. The paper's claim under test: SALIENT++'s optimizations do
//! not impact model accuracy — gathered features are bit-identical to
//! full replication, so accuracy matches the single-machine trainer.

// Harness binaries may abort on setup errors; the workspace
// panic-family denies gate the library crates, not the harnesses
// (mirrors the bin/ exemption in `cargo xtask lint`).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use spp_bench::{Cli, Table};
use spp_core::policies::CachePolicy;
use spp_gnn::{TrainConfig, Trainer};
use spp_graph::dataset::SyntheticSpec;
use spp_runtime::{DistTrainConfig, DistributedSetup, DistributedTrainer, SetupConfig};
use spp_sampler::Fanouts;

fn main() {
    let cli = Cli::parse();
    let epochs = cli.epochs_or(8);

    // Accuracy variants keep each benchmark's graph family and feature
    // dimension but use a learnable split (30/10/20) — at mini scale the
    // paper's raw splits leave only tens of labeled vertices, far too few
    // to train on. The claim under test is distributed == single-machine,
    // which is split-independent.
    let acc = |name: &str, n: usize, deg: f64, dim: usize| {
        SyntheticSpec::new(
            name,
            ((n as f64 * cli.scale * 0.25) as usize).max(1000),
            deg,
            dim,
            8,
        )
        .split_fractions(0.3, 0.1, 0.2)
        .homophily(0.9)
        .feature_signal(1.5)
        .seed(cli.seed)
        .build()
    };
    let runs: [(&str, spp_graph::Dataset, usize, Fanouts); 3] = [
        (
            "products",
            acc("products-acc", 24_000, 51.0, 50),
            4,
            Fanouts::new(vec![10, 10]),
        ),
        (
            "papers",
            acc("papers-acc", 110_000, 29.0, 64),
            4,
            Fanouts::new(vec![10, 10]),
        ),
        (
            "mag240",
            acc("mag240-acc", 24_000, 21.5, 384),
            4,
            Fanouts::new(vec![15, 10]),
        ),
    ];

    let mut t = Table::new(
        "Model accuracy: distributed (cached) vs single-machine training",
        &[
            "dataset",
            "dist val",
            "dist test",
            "single-machine test",
            "paper test",
        ],
    );
    let paper_acc = [0.785, 0.646, 0.651];
    for (i, (name, ds, k, fanouts)) in runs.iter().enumerate() {
        let setup = DistributedSetup::build(
            ds,
            SetupConfig {
                num_machines: *k,
                fanouts: fanouts.clone(),
                batch_size: 64,
                policy: CachePolicy::VipAnalytic,
                alpha: 0.32,
                beta: 0.5,
                vip_reorder: true,
                seed: cli.seed,
                ..SetupConfig::default()
            },
        );
        let trainer = DistributedTrainer::new(
            &setup,
            DistTrainConfig {
                hidden_dim: 32,
                lr: 0.005,
                epochs,
                seed: cli.seed,
                ..DistTrainConfig::default()
            },
        );
        let (report, _) = trainer.train();

        // Single-machine reference on the same dataset.
        let mut single = Trainer::new(
            ds,
            TrainConfig {
                hidden_dim: 32,
                fanouts: fanouts.clone(),
                eval_fanouts: fanouts.clone(),
                batch_size: 64,
                lr: 0.005,
                epochs,
                seed: cli.seed,
                ..TrainConfig::default()
            },
        );
        let sr = single.train();

        t.row(vec![
            name.to_string(),
            format!("{:.3}", report.val_accuracy),
            format!("{:.3}", report.test_accuracy),
            format!("{:.3}", sr.test_accuracy),
            format!("{:.3}", paper_acc[i]),
        ]);
    }
    t.print();
    t.write_csv("accuracy");
    println!(
        "\nshape vs paper (§5.3): distributed training with partitioned + cached features\n\
         reaches the same accuracy as single-machine training on the same data (the\n\
         paper's optimizations are storage-level only). Absolute accuracies differ from\n\
         the paper because the datasets are synthetic stand-ins."
    );
}
