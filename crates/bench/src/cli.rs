//! A tiny flag parser for the harness binaries.

/// Parsed command-line options shared by all harnesses.
///
/// Supported flags: `--scale <f64>` (dataset scale, default 1.0),
/// `--seed <u64>` (default 0), `--epochs <usize>` (measurement epochs,
/// default depends on the harness), `--quick` (shrink everything for a
/// smoke run).
#[derive(Clone, Debug)]
pub struct Cli {
    /// Dataset scale multiplier.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Measurement epochs (None = harness default).
    pub epochs: Option<usize>,
    /// Quick smoke-run mode.
    pub quick: bool,
}

impl Cli {
    /// Parses `std::env::args`. Malformed or unknown flags print a
    /// message to stderr and exit with status 2.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!("error: {e} (try --help)");
            std::process::exit(2);
        })
    }

    /// Parses from an iterator (testable).
    ///
    /// # Errors
    ///
    /// Returns a usage message on malformed or unknown flags.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut cli = Cli {
            scale: 1.0,
            seed: 0,
            epochs: None,
            quick: false,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => cli.scale = flag_value(&mut it, "--scale", "a number")?,
                "--seed" => cli.seed = flag_value(&mut it, "--seed", "an integer")?,
                "--epochs" => {
                    cli.epochs = Some(flag_value(&mut it, "--epochs", "an integer")?);
                }
                "--quick" => cli.quick = true,
                "--help" | "-h" => {
                    println!("flags: --scale <f64> --seed <u64> --epochs <n> --quick");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if cli.quick {
            cli.scale *= 0.2;
        }
        Ok(cli)
    }

    /// The effective epoch count, given a harness default.
    pub fn epochs_or(&self, default: usize) -> usize {
        self.epochs.unwrap_or(if self.quick { 1 } else { default })
    }
}

/// Pulls and parses the value following `flag`, with a uniform error.
fn flag_value<T: std::str::FromStr, I: Iterator<Item = String>>(
    it: &mut I,
    flag: &str,
    kind: &str,
) -> Result<T, String> {
    let raw = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag} must be {kind}, got {raw:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        Cli::from_args(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn defaults() {
        let c = parse(&[]);
        assert_eq!(c.scale, 1.0);
        assert_eq!(c.seed, 0);
        assert_eq!(c.epochs_or(5), 5);
    }

    #[test]
    fn flags_parse() {
        let c = parse(&["--scale", "0.5", "--seed", "7", "--epochs", "3"]);
        assert_eq!(c.scale, 0.5);
        assert_eq!(c.seed, 7);
        assert_eq!(c.epochs_or(5), 3);
    }

    #[test]
    fn quick_shrinks_scale() {
        let c = parse(&["--quick"]);
        assert!(c.quick);
        assert!((c.scale - 0.2).abs() < 1e-12);
        assert_eq!(c.epochs_or(5), 1);
    }

    #[test]
    fn unknown_flag_errors() {
        let e = Cli::from_args(["--bogus".to_string()]).unwrap_err();
        assert!(e.contains("unknown flag"), "{e}");
    }

    #[test]
    fn missing_and_malformed_values_error() {
        assert!(Cli::from_args(["--seed".to_string()])
            .unwrap_err()
            .contains("needs a value"));
        let e = Cli::from_args(["--scale".to_string(), "x".to_string()]).unwrap_err();
        assert!(e.contains("must be a number"), "{e}");
    }
}
