//! A tiny flag parser for the harness binaries.

/// Parsed command-line options shared by all harnesses.
///
/// Supported flags: `--scale <f64>` (dataset scale, default 1.0),
/// `--seed <u64>` (default 0), `--epochs <usize>` (measurement epochs,
/// default depends on the harness), `--quick` (shrink everything for a
/// smoke run).
#[derive(Clone, Debug)]
pub struct Cli {
    /// Dataset scale multiplier.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Measurement epochs (None = harness default).
    pub epochs: Option<usize>,
    /// Quick smoke-run mode.
    pub quick: bool,
}

impl Cli {
    /// Parses `std::env::args`. Unknown flags abort with a usage message.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an iterator (testable).
    ///
    /// # Panics
    ///
    /// Panics on malformed flags.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut cli = Cli {
            scale: 1.0,
            seed: 0,
            epochs: None,
            quick: false,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    cli.scale = it
                        .next()
                        .expect("--scale needs a value")
                        .parse()
                        .expect("--scale must be a number");
                }
                "--seed" => {
                    cli.seed = it
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed must be an integer");
                }
                "--epochs" => {
                    cli.epochs = Some(
                        it.next()
                            .expect("--epochs needs a value")
                            .parse()
                            .expect("--epochs must be an integer"),
                    );
                }
                "--quick" => cli.quick = true,
                "--help" | "-h" => {
                    println!(
                        "flags: --scale <f64> --seed <u64> --epochs <n> --quick"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other} (try --help)"),
            }
        }
        if cli.quick {
            cli.scale *= 0.2;
        }
        cli
    }

    /// The effective epoch count, given a harness default.
    pub fn epochs_or(&self, default: usize) -> usize {
        self.epochs.unwrap_or(if self.quick { 1 } else { default })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        Cli::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let c = parse(&[]);
        assert_eq!(c.scale, 1.0);
        assert_eq!(c.seed, 0);
        assert_eq!(c.epochs_or(5), 5);
    }

    #[test]
    fn flags_parse() {
        let c = parse(&["--scale", "0.5", "--seed", "7", "--epochs", "3"]);
        assert_eq!(c.scale, 0.5);
        assert_eq!(c.seed, 7);
        assert_eq!(c.epochs_or(5), 3);
    }

    #[test]
    fn quick_shrinks_scale() {
        let c = parse(&["--quick"]);
        assert!(c.quick);
        assert!((c.scale - 0.2).abs() < 1e-12);
        assert_eq!(c.epochs_or(5), 1);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }
}
