//! The dynamic second cache tier: an LRU overlay that learns request
//! skew online.
//!
//! The static tier (`spp_core::StaticCache`) is pinned — built offline
//! from VIP rankings, never evicted at serving time. The overlay sits
//! on top and caches *remote-fetched* feature rows, evicting in strict
//! least-recently-used order. Division of labor (BGL-style): the static
//! tier captures the probability mass the VIP analysis predicts, the
//! overlay captures the request skew the offline ranking cannot see.
//!
//! Concurrency contract: [`DynamicOverlay::probe`] is read-only (hit and
//! miss tallies are relaxed atomics) and safe to call from the worker
//! pool's classification sweep; all mutation — [`DynamicOverlay::touch`],
//! [`DynamicOverlay::insert`] — takes `&mut self` and happens on the
//! control thread in deterministic batch order. Eviction order is
//! therefore a pure function of the operation sequence, never of timing.

use spp_graph::{QuantScheme, QuantizedFeatures, VertexId};
use spp_sync::AtomicU64;
use std::collections::HashMap;

/// Linked-list sentinel ("no slot").
const NONE: u32 = u32::MAX;

/// Counter snapshot for one overlay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverlayCounters {
    /// Probes that found the vertex.
    pub hits: u64,
    /// Probes that did not.
    pub misses: u64,
    /// Entries displaced to make room.
    pub evictions: u64,
    /// Rows admitted (insertions of new vertices).
    pub insertions: u64,
}

impl OverlayCounters {
    /// Total probes (`hits + misses` by construction).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// What an [`DynamicOverlay::insert`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// New entry stored in a free slot.
    Inserted,
    /// Vertex was already cached; its recency was refreshed.
    Refreshed,
    /// New entry stored after evicting the returned LRU vertex.
    Evicted(VertexId),
    /// Overlay has zero capacity; nothing stored.
    Disabled,
}

/// A fixed-capacity LRU cache of remote feature rows.
#[derive(Debug)]
pub struct DynamicOverlay {
    capacity: usize,
    slot_of: HashMap<VertexId, u32>,
    /// Slot -> vertex for occupied slots.
    vertex_of: Vec<VertexId>,
    /// Feature rows, aligned with slots (capacity × dim); optionally
    /// quantized (DESIGN.md §14) so equal RAM holds ~2× (`f16`) or ~4×
    /// (`i8`) the rows.
    feats: QuantizedFeatures,
    /// Intrusive MRU..LRU list over slots.
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: u64,
    insertions: u64,
}

impl DynamicOverlay {
    /// An overlay holding up to `capacity` rows of dimension `dim`.
    /// Capacity zero disables the tier (probes always miss).
    pub fn new(capacity: usize, dim: usize) -> Self {
        Self::with_scheme(capacity, dim, QuantScheme::F32)
    }

    /// [`DynamicOverlay::new`] with an explicit row storage scheme.
    /// `F32` reproduces the seed behavior bit-for-bit; `F16`/`I8` rows
    /// are encoded on insert and decoded on read. Recency, eviction
    /// order, and counters are storage-independent, so a quantized
    /// overlay keeps the deterministic-eviction contract unchanged.
    pub fn with_scheme(capacity: usize, dim: usize, scheme: QuantScheme) -> Self {
        Self {
            capacity,
            slot_of: HashMap::with_capacity(capacity),
            vertex_of: Vec::with_capacity(capacity),
            feats: QuantizedFeatures::with_rows(capacity, dim, scheme),
            prev: Vec::with_capacity(capacity),
            next: Vec::with_capacity(capacity),
            head: NONE,
            tail: NONE,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: 0,
            insertions: 0,
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.feats.dim()
    }

    /// Read-only lookup, counting a hit or miss (relaxed atomics — safe
    /// under concurrent pool access; tallies are exact because every
    /// probe increments exactly one counter).
    // spp-hot(overlay.probe)
    #[inline]
    pub fn probe(&self, v: VertexId) -> Option<u32> {
        match self.slot_of.get(&v) {
            Some(&s) => {
                self.hits.fetch_add_relaxed(1); // spp-sync: relaxed(exactness comes from the RMW; readers need no ordering with cache state)
                Some(s)
            }
            None => {
                self.misses.fetch_add_relaxed(1); // spp-sync: relaxed(exactness comes from the RMW; readers need no ordering with cache state)
                None
            }
        }
    }

    /// Lookup without touching the counters (accounting happens once,
    /// at classification; the gather pass re-reads via `peek`).
    #[inline]
    pub fn peek(&self, v: VertexId) -> Option<u32> {
        self.slot_of.get(&v).copied()
    }

    /// Row storage scheme.
    pub fn scheme(&self) -> QuantScheme {
        self.feats.scheme()
    }

    /// Feature bytes the row storage occupies (codes plus codebook).
    pub fn memory_bytes(&self) -> usize {
        self.feats.memory_bytes()
    }

    /// Decodes the cached feature row in `slot` into `out`
    /// (allocation-free; a plain row copy under the `F32` scheme).
    ///
    /// # Panics
    ///
    /// Panics if `out` has the wrong dimension.
    pub fn read_row_into(&self, slot: u32, out: &mut [f32]) {
        self.feats.read_row_into(slot as usize, out);
    }

    /// The cached feature row in `slot`, decoded into a fresh buffer
    /// (test/debug convenience; hot paths use
    /// [`DynamicOverlay::read_row_into`]).
    // spp-hot: stop(test/debug convenience; serving decodes via read_row_into, linked to hot gathers only by name overlap with the matrix `row` accessors)
    pub fn row(&self, slot: u32) -> Vec<f32> {
        let mut out = vec![0.0; self.feats.dim()];
        self.feats.read_row_into(slot as usize, &mut out);
        out
    }

    /// Marks `v` most-recently-used (no-op if absent).
    pub fn touch(&mut self, v: VertexId) {
        if let Some(&slot) = self.slot_of.get(&v) {
            self.detach(slot);
            self.push_front(slot);
        }
    }

    /// Admits `row` for `v`, evicting the LRU entry if full. Existing
    /// entries are refreshed, not duplicated.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong dimension.
    pub fn insert(&mut self, v: VertexId, row: &[f32]) -> InsertOutcome {
        assert_eq!(row.len(), self.feats.dim(), "feature dim mismatch");
        if self.capacity == 0 {
            return InsertOutcome::Disabled;
        }
        if let Some(&slot) = self.slot_of.get(&v) {
            self.detach(slot);
            self.push_front(slot);
            return InsertOutcome::Refreshed;
        }
        let (slot, outcome) = if self.vertex_of.len() < self.capacity {
            // Fresh slot.
            let slot = self.vertex_of.len() as u32;
            self.vertex_of.push(v);
            self.prev.push(NONE);
            self.next.push(NONE);
            (slot, InsertOutcome::Inserted)
        } else {
            // Evict the LRU tail and reuse its slot.
            let slot = self.tail;
            debug_assert_ne!(slot, NONE, "full overlay must have a tail");
            let old = self.vertex_of[slot as usize];
            self.slot_of.remove(&old);
            self.detach(slot);
            self.vertex_of[slot as usize] = v;
            self.evictions += 1;
            (slot, InsertOutcome::Evicted(old))
        };
        self.slot_of.insert(v, slot);
        self.feats.set_row(slot as usize, row);
        self.push_front(slot);
        self.insertions += 1;
        outcome
    }

    /// Counter snapshot.
    pub fn counters(&self) -> OverlayCounters {
        OverlayCounters {
            hits: self.hits.load_relaxed(), // spp-sync: relaxed(statistical snapshot; tallies are monotonic)
            misses: self.misses.load_relaxed(), // spp-sync: relaxed(statistical snapshot; tallies are monotonic)
            evictions: self.evictions,
            insertions: self.insertions,
        }
    }

    /// Cached vertices from most- to least-recently used (test/debug
    /// visibility into the eviction order).
    pub fn members_mru_order(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.slot_of.len());
        let mut s = self.head;
        while s != NONE {
            out.push(self.vertex_of[s as usize]);
            s = self.next[s as usize];
        }
        out
    }

    /// Unlinks `slot` from the recency list.
    fn detach(&mut self, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p == NONE {
            if self.head == slot {
                self.head = n;
            }
        } else {
            self.next[p as usize] = n;
        }
        if n == NONE {
            if self.tail == slot {
                self.tail = p;
            }
        } else {
            self.prev[n as usize] = p;
        }
        self.prev[slot as usize] = NONE;
        self.next[slot as usize] = NONE;
    }

    /// Links `slot` at the MRU head.
    fn push_front(&mut self, slot: u32) {
        self.prev[slot as usize] = NONE;
        self.next[slot as usize] = self.head;
        if self.head != NONE {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: VertexId, dim: usize) -> Vec<f32> {
        vec![v as f32; dim]
    }

    #[test]
    fn insert_probe_roundtrip() {
        let mut o = DynamicOverlay::new(2, 3);
        assert_eq!(o.insert(7, &row(7, 3)), InsertOutcome::Inserted);
        let slot = o.probe(7).unwrap();
        assert_eq!(o.row(slot), &[7.0, 7.0, 7.0]);
        assert!(o.probe(8).is_none());
        let c = o.counters();
        assert_eq!((c.hits, c.misses), (1, 1));
        assert_eq!(c.lookups(), 2);
    }

    #[test]
    fn evicts_in_lru_order() {
        let mut o = DynamicOverlay::new(2, 1);
        o.insert(1, &row(1, 1));
        o.insert(2, &row(2, 1));
        // Touch 1 -> 2 becomes LRU.
        o.touch(1);
        assert_eq!(o.insert(3, &row(3, 1)), InsertOutcome::Evicted(2));
        assert_eq!(o.members_mru_order(), vec![3, 1]);
        assert_eq!(o.insert(4, &row(4, 1)), InsertOutcome::Evicted(1));
        assert_eq!(o.counters().evictions, 2);
        // Evicted rows really are gone; survivors keep their features.
        assert!(o.peek(1).is_none());
        assert_eq!(o.row(o.peek(3).unwrap()), &[3.0]);
    }

    #[test]
    fn reinsert_refreshes_recency_without_duplication() {
        let mut o = DynamicOverlay::new(2, 1);
        o.insert(1, &row(1, 1));
        o.insert(2, &row(2, 1));
        assert_eq!(o.insert(1, &row(1, 1)), InsertOutcome::Refreshed);
        assert_eq!(o.len(), 2);
        assert_eq!(o.insert(3, &row(3, 1)), InsertOutcome::Evicted(2));
    }

    #[test]
    fn zero_capacity_disables_tier() {
        let mut o = DynamicOverlay::new(0, 4);
        assert_eq!(o.insert(1, &row(1, 4)), InsertOutcome::Disabled);
        assert!(o.probe(1).is_none());
        assert_eq!(o.counters().misses, 1);
        assert_eq!(o.len(), 0);
    }

    #[test]
    fn peek_does_not_count() {
        let mut o = DynamicOverlay::new(2, 1);
        o.insert(5, &row(5, 1));
        assert!(o.peek(5).is_some());
        assert!(o.peek(6).is_none());
        assert_eq!(o.counters().lookups(), 0);
    }

    #[test]
    fn quantized_overlay_evicts_identically_and_rows_stay_close() {
        // Same operation sequence on f32 and f16 overlays: recency and
        // eviction decisions must be identical (storage-independent);
        // row payloads agree within the f16 error bound.
        let ops: Vec<VertexId> = vec![1, 2, 3, 1, 4, 2, 5, 3, 1, 6];
        let mut exact = DynamicOverlay::new(3, 4);
        let mut lossy = DynamicOverlay::with_scheme(3, 4, QuantScheme::F16);
        assert_eq!(lossy.scheme(), QuantScheme::F16);
        assert_eq!(lossy.memory_bytes(), exact.memory_bytes() / 2);
        for &v in &ops {
            let payload: Vec<f32> = (0..4).map(|i| v as f32 / 3.0 + i as f32 / 7.0).collect();
            let a = exact.insert(v, &payload);
            let b = lossy.insert(v, &payload);
            assert_eq!(a, b, "outcome diverged at v={v}");
        }
        assert_eq!(exact.members_mru_order(), lossy.members_mru_order());
        assert_eq!(exact.counters().evictions, lossy.counters().evictions);
        for &v in &exact.members_mru_order() {
            let ra = exact.row(exact.peek(v).unwrap());
            let rb = lossy.row(lossy.peek(v).unwrap());
            for (a, b) in ra.iter().zip(&rb) {
                assert!((a - b).abs() <= a.abs().max(1.0) * 2.0f32.powi(-11));
            }
        }
    }

    #[test]
    fn touch_of_absent_vertex_is_noop() {
        let mut o = DynamicOverlay::new(2, 1);
        o.insert(1, &row(1, 1));
        o.touch(99);
        assert_eq!(o.members_mru_order(), vec![1]);
    }
}
