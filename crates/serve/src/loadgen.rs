//! Seeded request-trace generation for serving experiments.
//!
//! Online inference load is heavily skewed in practice — a small set of
//! entities (users, items, accounts) receives most queries. The
//! generator models this with a Pareto-style popularity law: draw
//! `u ~ U[0,1)` and map it to popularity rank `⌊n·u^shape⌋` over a
//! *seeded random permutation* of the vertex ids. The permutation is
//! deliberately decoupled from the VIP ranking used to build the static
//! cache, so the request-time hot set is something the offline analysis
//! could not have predicted — exactly the regime where the dynamic
//! overlay tier earns its capacity.
//!
//! Static popularity alone is the *easy* case for an offline cache: an
//! IID draw from a fixed law is exactly what a top-k static tier is
//! optimal for. Real request streams additionally show *temporal
//! locality* — flash crowds and sessions re-reference what was just
//! queried — which no cache frozen at deployment time can track. The
//! [`TraceConfig::burstiness`] knob models this: with that probability
//! a request re-targets one of the last [`BURST_WINDOW`] requests
//! (self-reinforcing, like a trending item), otherwise it draws fresh
//! from the popularity law.
//!
//! Everything is a pure function of the config's seed: the same
//! [`TraceConfig`] yields the same trace, byte for byte, on every run.

use crate::queue::InferenceRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spp_graph::VertexId;

/// Seed-stream separator for the popularity permutation.
const PERM_STREAM: u64 = 0x9e37_79b9_7f4a_7c15;

/// Number of trailing requests a bursty re-reference can target.
pub const BURST_WINDOW: usize = 32;

/// Maps uniform draws to vertices under a Pareto-style popularity law.
#[derive(Clone, Debug)]
pub struct PopularitySampler {
    /// Rank → vertex: `perm[0]` is the most popular vertex.
    perm: Vec<VertexId>,
    shape: f64,
}

impl PopularitySampler {
    /// A sampler over `num_vertices` ids with skew exponent `shape`
    /// (`1.0` = uniform; larger = more concentrated on the hot ranks),
    /// ranking vertices by a permutation seeded from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices` is zero or `shape` is not positive.
    pub fn new(num_vertices: usize, shape: f64, seed: u64) -> Self {
        assert!(num_vertices > 0, "popularity needs at least one vertex");
        assert!(shape > 0.0, "skew shape must be positive");
        let mut perm: Vec<VertexId> = (0..num_vertices as VertexId).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ PERM_STREAM);
        for i in (1..perm.len()).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        Self { perm, shape }
    }

    /// Number of vertices in the id space.
    pub fn num_vertices(&self) -> usize {
        self.perm.len()
    }

    /// The `rank`-th most popular vertex.
    pub fn vertex_at_rank(&self, rank: usize) -> VertexId {
        self.perm[rank]
    }

    /// Draws one vertex: rank `⌊n·u^shape⌋` for `u ~ U[0,1)`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> VertexId {
        let u: f64 = rng.gen();
        let n = self.perm.len() as f64;
        let rank = ((n * u.powf(self.shape)) as usize).min(self.perm.len() - 1);
        self.perm[rank]
    }
}

/// Configuration for an open-loop Poisson request trace.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Requests to generate.
    pub num_requests: usize,
    /// Vertex id space (requests target `0..num_vertices`).
    pub num_vertices: usize,
    /// Mean arrival rate (requests per virtual second; exponential
    /// inter-arrivals).
    pub arrival_rate: f64,
    /// Popularity skew exponent (see [`PopularitySampler`]; `1.0` =
    /// uniform).
    pub skew: f64,
    /// Probability that a request re-references one of the last
    /// [`BURST_WINDOW`] requests instead of drawing fresh from the
    /// popularity law (`0.0` = pure IID popularity).
    pub burstiness: f64,
    /// Master seed for both arrivals and vertex choices.
    pub seed: u64,
}

/// Generates an open-loop trace: Poisson arrivals, Pareto-skewed
/// vertex popularity with optional bursty re-references, all streams
/// derived from `cfg.seed`.
///
/// # Panics
///
/// Panics if `arrival_rate` is not positive, `num_vertices` is zero,
/// or `burstiness` is outside `[0, 1]`.
// spp-det(serve.loadgen)
pub fn generate_open_loop(cfg: &TraceConfig) -> Vec<InferenceRequest> {
    assert!(cfg.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(
        (0.0..=1.0).contains(&cfg.burstiness),
        "burstiness must be a probability"
    );
    let sampler = PopularitySampler::new(cfg.num_vertices, cfg.skew, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = 0.0;
    // Ring of the last BURST_WINDOW requested vertices (with repeats —
    // a vertex re-referenced often occupies more slots and so attracts
    // further re-references, the flash-crowd dynamic).
    let mut recent: Vec<VertexId> = Vec::with_capacity(BURST_WINDOW);
    let mut next_slot = 0usize;
    (0..cfg.num_requests)
        .map(|i| {
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / cfg.arrival_rate;
            let bursty = !recent.is_empty() && rng.gen::<f64>() < cfg.burstiness;
            let vertex = if bursty {
                recent[rng.gen_range(0..recent.len())]
            } else {
                sampler.sample(&mut rng)
            };
            if recent.len() < BURST_WINDOW {
                recent.push(vertex);
            } else {
                recent[next_slot] = vertex;
                next_slot = (next_slot + 1) % BURST_WINDOW;
            }
            InferenceRequest {
                id: i as u64,
                vertex,
                arrival: t,
                client: 0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn cfg(skew: f64, seed: u64) -> TraceConfig {
        TraceConfig {
            num_requests: 4000,
            num_vertices: 1000,
            arrival_rate: 100.0,
            skew,
            burstiness: 0.0,
            seed,
        }
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let a = generate_open_loop(&cfg(3.0, 7));
        let b = generate_open_loop(&cfg(3.0, 7));
        assert_eq!(a, b);
        let c = generate_open_loop(&cfg(3.0, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_nondecreasing_with_sequential_ids() {
        let trace = generate_open_loop(&cfg(2.0, 1));
        for (i, w) in trace.windows(2).enumerate() {
            assert!(w[1].arrival >= w[0].arrival);
            assert_eq!(w[0].id, i as u64);
        }
        assert!(trace.iter().all(|r| (r.vertex as usize) < 1000));
    }

    #[test]
    fn skew_concentrates_mass_on_few_vertices() {
        let count_top = |skew: f64| {
            let trace = generate_open_loop(&cfg(skew, 5));
            let mut freq: HashMap<u32, usize> = HashMap::new();
            for r in &trace {
                *freq.entry(r.vertex).or_insert(0) += 1;
            }
            let mut counts: Vec<usize> = freq.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            // Requests landing on the 10 hottest vertices.
            counts.iter().take(10).sum::<usize>()
        };
        let uniform = count_top(1.0);
        let skewed = count_top(4.0);
        assert!(
            skewed > uniform * 5,
            "skew=4 top-10 mass {skewed} should dwarf uniform {uniform}"
        );
    }

    #[test]
    fn rank_zero_is_hottest_under_skew() {
        let sampler = PopularitySampler::new(100, 4.0, 3);
        let mut rng = StdRng::seed_from_u64(11);
        let hot = sampler.vertex_at_rank(0);
        let hits = (0..2000)
            .filter(|_| sampler.sample(&mut rng) == hot)
            .count();
        // rank 0 gets P(u^4 < 1/100) = (1/100)^(1/4) ≈ 31.6% of draws.
        assert!(hits > 400, "rank-0 vertex drew only {hits}/2000");
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn empty_id_space_rejected() {
        PopularitySampler::new(0, 1.0, 0);
    }

    #[test]
    fn burstiness_concentrates_short_window_reuse() {
        // Fraction of requests whose vertex appeared in the previous
        // BURST_WINDOW requests.
        let reuse = |burstiness: f64| {
            let trace = generate_open_loop(&TraceConfig {
                burstiness,
                ..cfg(2.0, 13)
            });
            let hits = trace
                .windows(BURST_WINDOW + 1)
                .filter(|w| {
                    w[..BURST_WINDOW]
                        .iter()
                        .any(|r| r.vertex == w[BURST_WINDOW].vertex)
                })
                .count();
            hits as f64 / (trace.len() - BURST_WINDOW) as f64
        };
        let iid = reuse(0.0);
        let bursty = reuse(0.5);
        assert!(
            bursty > iid + 0.3,
            "burstiness=0.5 reuse {bursty:.3} should far exceed IID {iid:.3}"
        );
        // Bursty traces are still deterministic per seed.
        let a = generate_open_loop(&TraceConfig {
            burstiness: 0.4,
            ..cfg(3.0, 5)
        });
        let b = generate_open_loop(&TraceConfig {
            burstiness: 0.4,
            ..cfg(3.0, 5)
        });
        assert_eq!(a, b);
    }
}
