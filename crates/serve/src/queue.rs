//! Inference requests, the bounded admission queue, and reject reasons.
//!
//! Every request entering the server passes through [`AdmissionQueue`],
//! which enforces one hard invariant: the number of *admitted but not
//! yet completed* requests — waiting in the micro-batcher plus riding in
//! batches still in flight through the pipeline — never exceeds the
//! configured capacity. Requests beyond it are rejected immediately with
//! an explicit [`RejectReason`]; nothing is silently dropped and no
//! internal buffer can grow without bound (the workspace L4 invariant,
//! applied to the serving ingress).

use spp_graph::VertexId;
use std::collections::VecDeque;

/// One per-vertex inference request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InferenceRequest {
    /// Caller-assigned request id (unique within a trace).
    pub id: u64,
    /// Target vertex, in the deployment's reordered id space.
    pub vertex: VertexId,
    /// Virtual arrival time (seconds).
    pub arrival: f64,
    /// Issuing client (loadgen stream id; 0 for open-loop traces).
    pub client: u32,
}

/// Why a request was turned away at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The admitted-but-unfinished backlog is at capacity: the server is
    /// not keeping up with the offered load (backpressure).
    QueueFull,
    /// The target vertex id is outside the graph.
    InvalidVertex,
}

impl RejectReason {
    /// Stable lowercase name for reports and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::InvalidVertex => "invalid_vertex",
        }
    }
}

/// A rejected request with its reason — the server's reject-with-reason
/// contract: every request not completed appears in exactly one of these.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rejection {
    /// The rejected request.
    pub request: InferenceRequest,
    /// Why it was rejected.
    pub reason: RejectReason,
    /// Virtual time of the decision (== the request's arrival).
    pub time: f64,
}

/// The bounded ingress queue.
///
/// Holds requests admitted but not yet drained into a micro-batch; the
/// capacity check additionally counts `inflight` requests (drained into
/// batches whose pipeline work has not completed), which the server
/// reports at each admission decision.
#[derive(Clone, Debug)]
pub struct AdmissionQueue {
    pending: VecDeque<InferenceRequest>,
    capacity: usize,
    num_vertices: usize,
    admitted: u64,
    rejected: u64,
}

impl AdmissionQueue {
    /// A queue bounding admitted-but-unfinished requests to `capacity`,
    /// validating vertex ids against `num_vertices`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, num_vertices: usize) -> Self {
        assert!(capacity > 0, "admission queue needs nonzero capacity");
        Self {
            pending: VecDeque::new(),
            capacity,
            num_vertices,
            admitted: 0,
            rejected: 0,
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently waiting to be batched.
    pub fn depth(&self) -> usize {
        self.pending.len()
    }

    /// Total admitted so far.
    pub fn total_admitted(&self) -> u64 {
        self.admitted
    }

    /// Total rejected so far.
    pub fn total_rejected(&self) -> u64 {
        self.rejected
    }

    /// Admission decision for `req`, given `inflight` requests already
    /// drained into in-flight batches. On success the request is queued;
    /// on failure a [`Rejection`] records the reason.
    ///
    /// # Errors
    ///
    /// [`RejectReason::InvalidVertex`] for out-of-range vertices,
    /// [`RejectReason::QueueFull`] when `depth + inflight` is at capacity.
    pub fn offer(&mut self, req: InferenceRequest, inflight: usize) -> Result<(), Box<Rejection>> {
        let reason = if (req.vertex as usize) >= self.num_vertices {
            Some(RejectReason::InvalidVertex)
        } else if self.pending.len() + inflight >= self.capacity {
            Some(RejectReason::QueueFull)
        } else {
            None
        };
        match reason {
            Some(reason) => {
                self.rejected += 1;
                Err(Box::new(Rejection {
                    request: req,
                    reason,
                    time: req.arrival,
                }))
            }
            None => {
                self.admitted += 1;
                self.pending.push_back(req);
                Ok(())
            }
        }
    }

    /// Arrival time of the oldest waiting request.
    pub fn oldest_arrival(&self) -> Option<f64> {
        self.pending.front().map(|r| r.arrival)
    }

    /// Drains up to `max` requests from the head, in admission order.
    pub fn drain(&mut self, max: usize) -> Vec<InferenceRequest> {
        let take = max.min(self.pending.len());
        self.pending.drain(..take).collect() // spp-hot: alloc(batch hand-off buffer, owned by the MicroBatch; bounded by max_batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, vertex: VertexId, arrival: f64) -> InferenceRequest {
        InferenceRequest {
            id,
            vertex,
            arrival,
            client: 0,
        }
    }

    #[test]
    fn admits_until_capacity_including_inflight() {
        let mut q = AdmissionQueue::new(3, 100);
        assert!(q.offer(req(0, 1, 0.0), 0).is_ok());
        assert!(q.offer(req(1, 2, 0.1), 0).is_ok());
        // depth 2 + inflight 1 == capacity -> reject.
        let r = q.offer(req(2, 3, 0.2), 1).unwrap_err();
        assert_eq!(r.reason, RejectReason::QueueFull);
        assert_eq!(r.time, 0.2);
        // Without the inflight load it fits.
        assert!(q.offer(req(3, 4, 0.3), 0).is_ok());
        assert_eq!(q.depth(), 3);
        assert_eq!(q.total_admitted(), 3);
        assert_eq!(q.total_rejected(), 1);
    }

    #[test]
    fn invalid_vertex_rejected_regardless_of_load() {
        let mut q = AdmissionQueue::new(8, 10);
        let r = q.offer(req(0, 10, 0.0), 0).unwrap_err();
        assert_eq!(r.reason, RejectReason::InvalidVertex);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn drain_preserves_admission_order() {
        let mut q = AdmissionQueue::new(8, 100);
        for i in 0..5 {
            q.offer(req(i, i as VertexId, i as f64), 0).unwrap();
        }
        assert_eq!(q.oldest_arrival(), Some(0.0));
        let batch = q.drain(3);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.oldest_arrival(), Some(3.0));
        assert_eq!(q.drain(10).len(), 2);
        assert_eq!(q.oldest_arrival(), None);
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn zero_capacity_rejected() {
        AdmissionQueue::new(0, 10);
    }

    #[test]
    fn reject_reasons_have_stable_names() {
        assert_eq!(RejectReason::QueueFull.as_str(), "queue_full");
        assert_eq!(RejectReason::InvalidVertex.as_str(), "invalid_vertex");
    }
}
