//! The micro-batching scheduler.
//!
//! Admitted requests coalesce into micro-batches under a two-sided
//! policy: a batch closes the moment it reaches `max_batch_size`
//! requests, or when the *oldest* waiting request has been queued for
//! `max_delay` seconds of virtual time — whichever comes first. Both
//! triggers are pure functions of request arrival times, so batch
//! composition is bit-identical across runs and worker counts
//! (DESIGN.md §11 determinism contract).

use crate::queue::{AdmissionQueue, InferenceRequest};

/// The two-sided batching policy.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Close a batch as soon as this many requests are waiting.
    pub max_batch_size: usize,
    /// Close a batch when its oldest request has waited this long
    /// (virtual seconds), even if it is not full.
    pub max_delay: f64,
}

impl BatchPolicy {
    /// Creates a policy.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch_size` is zero or `max_delay` is negative.
    pub fn new(max_batch_size: usize, max_delay: f64) -> Self {
        assert!(max_batch_size > 0, "batch size must be positive");
        assert!(max_delay >= 0.0, "max delay must be non-negative");
        Self {
            max_batch_size,
            max_delay,
        }
    }
}

/// What made a batch close.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseTrigger {
    /// Reached `max_batch_size`.
    Size,
    /// The oldest request hit its `max_delay` deadline.
    Deadline,
    /// End of trace: remaining requests flushed.
    Flush,
}

/// One closed micro-batch, ready for the serving pipeline.
#[derive(Clone, Debug)]
pub struct MicroBatch {
    /// Sequential batch id (0-based close order).
    pub id: u64,
    /// Virtual close time: the batch's pipeline release time.
    pub close_time: f64,
    /// The coalesced requests, in admission order.
    pub requests: Vec<InferenceRequest>,
    /// Which policy edge closed the batch.
    pub trigger: CloseTrigger,
}

impl MicroBatch {
    /// The seed vertices, in request order (duplicates preserved — two
    /// requests for one vertex produce two result rows).
    pub fn seeds(&self) -> Vec<spp_graph::VertexId> {
        self.requests.iter().map(|r| r.vertex).collect()
    }
}

/// The scheduler: drains the admission queue into [`MicroBatch`]es.
#[derive(Clone, Debug)]
pub struct MicroBatcher {
    policy: BatchPolicy,
    next_id: u64,
}

impl MicroBatcher {
    /// A batcher with the given policy.
    pub fn new(policy: BatchPolicy) -> Self {
        Self { policy, next_id: 0 }
    }

    /// The policy in effect.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Batches closed so far.
    pub fn batches_closed(&self) -> u64 {
        self.next_id
    }

    /// The deadline at which the current queue contents must close:
    /// oldest waiting arrival + `max_delay`. `None` when empty.
    pub fn deadline_for(&self, q: &AdmissionQueue) -> Option<f64> {
        q.oldest_arrival().map(|a| a + self.policy.max_delay)
    }

    /// Closes a batch at `now` if the queue has reached the size
    /// trigger (call after each admission).
    pub fn try_close_on_size(&mut self, q: &mut AdmissionQueue, now: f64) -> Option<MicroBatch> {
        if q.depth() >= self.policy.max_batch_size {
            Some(self.close(q, now, CloseTrigger::Size))
        } else {
            None
        }
    }

    /// Closes a batch at its deadline if `deadline_for(q) <= now`
    /// (call before processing an arrival later than the deadline).
    pub fn try_close_on_deadline(
        &mut self,
        q: &mut AdmissionQueue,
        now: f64,
    ) -> Option<MicroBatch> {
        match self.deadline_for(q) {
            Some(d) if d <= now => Some(self.close(q, d, CloseTrigger::Deadline)),
            _ => None,
        }
    }

    /// Flushes whatever is waiting (end of trace) at its deadline — the
    /// virtual timer still fires even with no further arrivals.
    pub fn flush(&mut self, q: &mut AdmissionQueue) -> Option<MicroBatch> {
        let deadline = self.deadline_for(q)?;
        Some(self.close(q, deadline, CloseTrigger::Flush))
    }

    // spp-hot(batcher.close)
    fn close(&mut self, q: &mut AdmissionQueue, at: f64, trigger: CloseTrigger) -> MicroBatch {
        let requests = q.drain(self.policy.max_batch_size);
        debug_assert!(!requests.is_empty(), "closed an empty batch");
        let id = self.next_id;
        self.next_id += 1;
        MicroBatch {
            id,
            close_time: at,
            requests,
            trigger,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival: f64) -> InferenceRequest {
        InferenceRequest {
            id,
            vertex: id as u32,
            arrival,
            client: 0,
        }
    }

    fn queue() -> AdmissionQueue {
        AdmissionQueue::new(64, 1000)
    }

    #[test]
    fn closes_on_size_before_deadline() {
        let mut q = queue();
        let mut b = MicroBatcher::new(BatchPolicy::new(3, 10.0));
        for i in 0..2 {
            q.offer(req(i, i as f64 * 0.1), 0).unwrap();
            assert!(b.try_close_on_size(&mut q, i as f64 * 0.1).is_none());
        }
        q.offer(req(2, 0.2), 0).unwrap();
        let batch = b.try_close_on_size(&mut q, 0.2).unwrap();
        assert_eq!(batch.trigger, CloseTrigger::Size);
        assert_eq!(batch.close_time, 0.2);
        assert_eq!(batch.requests.len(), 3);
        assert_eq!(batch.id, 0);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn closes_on_deadline_when_underfull() {
        let mut q = queue();
        let mut b = MicroBatcher::new(BatchPolicy::new(8, 0.5));
        q.offer(req(0, 1.0), 0).unwrap();
        q.offer(req(1, 1.2), 0).unwrap();
        assert_eq!(b.deadline_for(&q), Some(1.5));
        // An arrival before the deadline does not close.
        assert!(b.try_close_on_deadline(&mut q, 1.4).is_none());
        // The next arrival is past the deadline: the timer fires first,
        // and the batch closes at the deadline, not at `now`.
        let batch = b.try_close_on_deadline(&mut q, 2.0).unwrap();
        assert_eq!(batch.trigger, CloseTrigger::Deadline);
        assert_eq!(batch.close_time, 1.5);
        assert_eq!(batch.requests.len(), 2);
    }

    #[test]
    fn flush_closes_remainder_at_deadline() {
        let mut q = queue();
        let mut b = MicroBatcher::new(BatchPolicy::new(8, 0.25));
        assert!(b.flush(&mut q).is_none());
        q.offer(req(0, 3.0), 0).unwrap();
        let batch = b.flush(&mut q).unwrap();
        assert_eq!(batch.trigger, CloseTrigger::Flush);
        assert_eq!(batch.close_time, 3.25);
        assert_eq!(b.batches_closed(), 1);
    }

    #[test]
    fn seeds_preserve_duplicates_and_order() {
        let mut q = queue();
        let mut b = MicroBatcher::new(BatchPolicy::new(3, 1.0));
        for (id, v) in [(0u64, 7u32), (1, 7), (2, 3)] {
            q.offer(
                InferenceRequest {
                    id,
                    vertex: v,
                    arrival: 0.0,
                    client: 0,
                },
                0,
            )
            .unwrap();
        }
        let batch = b.try_close_on_size(&mut q, 0.0).unwrap();
        assert_eq!(batch.seeds(), vec![7, 7, 3]);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        BatchPolicy::new(0, 1.0);
    }
}
