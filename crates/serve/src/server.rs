//! The online inference server: admission → micro-batching → sampling →
//! two-tier gather → virtual-time pipeline → forward pass.
//!
//! One [`InferenceServer`] models a single machine of a SALIENT++
//! deployment answering per-vertex inference queries. Time is *virtual*:
//! request arrivals carry virtual timestamps, batch deadlines fire in
//! virtual time, and pipeline latency comes from the `spp-comm` DES with
//! `spp-runtime`'s calibrated cost model — so every latency number is a
//! pure function of the trace and the configuration, never of the host
//! machine's load.
//!
//! # Determinism contract (DESIGN.md §11)
//!
//! Given a fixed request trace and config, the following are bit-identical
//! across runs and across worker-pool sizes: batch composition and close
//! times, cache tier classification and overlay eviction order, every
//! completion's latency, label, and logits checksum. The load-bearing
//! rules: batching triggers are pure functions of arrival times; each
//! batch samples from its own [`batch_stream_seed`] stream; tier
//! classification runs on the worker pool but merges in node order, and
//! all overlay mutation happens sequentially afterwards (touches in node
//! order, admissions in fetch order, deferred until the gather finished).

use crate::batcher::{BatchPolicy, CloseTrigger, MicroBatch, MicroBatcher};
use crate::loadgen::PopularitySampler;
use crate::overlay::DynamicOverlay;
use crate::queue::{AdmissionQueue, InferenceRequest, Rejection};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_comm::{DesEngine, ResourceId};
use spp_core::{PartitionedFeatureStore, ReorderedLayout, StaticCache};
use spp_gnn::GnnModel;
use spp_graph::{quant, FeatureMatrix, QuantScheme, VertexId};
use spp_pool::WorkerPool;
use spp_runtime::{CostModel, DistributedSetup};
use spp_sampler::{batch_stream_seed, Fanouts, NodeWiseSampler};
use spp_store::FeatureStore;
use spp_telemetry as tel;
use spp_telemetry::metrics::{Counter, Gauge, Histogram};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::OnceLock;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Batch size trigger (requests per micro-batch).
    pub max_batch_size: usize,
    /// Batch delay trigger (virtual seconds the oldest request may wait).
    pub max_delay: f64,
    /// Bound on admitted-but-unfinished requests (queued + in flight).
    pub queue_capacity: usize,
    /// Dynamic LRU overlay capacity in feature rows (0 disables the tier).
    pub overlay_capacity: usize,
    /// Storage precision of the dynamic overlay tier. Quantized schemes
    /// hold more rows per byte at a bounded per-element error.
    pub overlay_scheme: QuantScheme,
    /// Precision of feature rows on the wire. Non-`F32` schemes shrink
    /// `bytes_fetched` (and the DES network leg) and round fetched rows
    /// through the codec before use.
    pub wire_scheme: QuantScheme,
    /// Inference sampling fanouts (length must match the model depth).
    pub fanouts: Fanouts,
    /// Master seed for per-batch sampling streams.
    pub seed: u64,
    /// Worker pool for batch classification.
    pub pool: WorkerPool,
    /// Cost model driving the virtual-time pipeline.
    pub cost: CostModel,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch_size: 16,
            max_delay: 0.02,
            queue_capacity: 256,
            overlay_capacity: 0,
            overlay_scheme: QuantScheme::F32,
            wire_scheme: QuantScheme::F32,
            fanouts: Fanouts::new(vec![10, 5]),
            seed: 0,
            pool: WorkerPool::global(),
            cost: CostModel::mini_calibrated(),
        }
    }
}

/// Aggregate feature-access accounting across both cache tiers.
///
/// Invariant: `static_hits + overlay_hits + misses == lookups`, where a
/// *lookup* is one non-local MFG node classified against the tiers
/// (local vertices never consult a cache and are counted in `local`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Non-local nodes classified (tier probes).
    pub lookups: u64,
    /// Local nodes (GPU- or CPU-resident partition rows).
    pub local: u64,
    /// Lookups answered by the pinned VIP static tier.
    pub static_hits: u64,
    /// Lookups answered by the dynamic LRU overlay.
    pub overlay_hits: u64,
    /// Lookups that went to the network.
    pub misses: u64,
    /// Overlay entries evicted.
    pub evictions: u64,
    /// Overlay rows admitted.
    pub insertions: u64,
    /// Feature bytes fetched from remote machines.
    pub bytes_fetched: u64,
}

impl CacheStats {
    /// Fraction of lookups answered by either tier.
    pub fn combined_hit_rate(&self) -> f64 {
        self.rate(self.static_hits + self.overlay_hits)
    }

    /// Fraction of lookups answered by the static tier.
    pub fn static_hit_rate(&self) -> f64 {
        self.rate(self.static_hits)
    }

    /// Fraction of lookups answered by the overlay tier.
    pub fn overlay_hit_rate(&self) -> f64 {
        self.rate(self.overlay_hits)
    }

    fn rate(&self, n: u64) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            n as f64 / self.lookups as f64
        }
    }
}

/// One answered request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Completion {
    /// Request id.
    pub id: u64,
    /// Target vertex.
    pub vertex: VertexId,
    /// Micro-batch that carried it.
    pub batch_id: u64,
    /// Virtual arrival time.
    pub arrival: f64,
    /// Issuing client (copied from the request).
    pub client: u32,
    /// Virtual completion time (its batch's GPU task finished).
    pub finish: f64,
    /// End-to-end virtual latency (`finish - arrival`): queueing +
    /// batching delay + pipeline time.
    pub latency: f64,
    /// Predicted class (argmax of the logits row; ties to the lowest
    /// index).
    pub label: usize,
    /// Order-sensitive checksum of the raw logits bits — equal checksums
    /// mean bit-identical logits (the determinism test's witness).
    pub checksum: u64,
}

/// One executed micro-batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchRecord {
    /// Batch id (close order).
    pub id: u64,
    /// Requests carried.
    pub size: usize,
    /// What closed the batch.
    pub trigger: CloseTrigger,
    /// Virtual close time (pipeline release).
    pub close_time: f64,
    /// Virtual completion time.
    pub finish: f64,
    /// Distinct vertices in the sampled MFG.
    pub mfg_nodes: usize,
    /// Sampled edges.
    pub mfg_edges: usize,
    /// Feature rows fetched over the network.
    pub remote_fetched: usize,
}

/// Everything a serving run produced.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Answered requests, in batch-completion order.
    pub completions: Vec<Completion>,
    /// Rejected requests with reasons.
    pub rejections: Vec<Rejection>,
    /// Executed micro-batches.
    pub batches: Vec<BatchRecord>,
    /// Two-tier cache accounting.
    pub cache: CacheStats,
    /// Virtual makespan (last pipeline completion).
    pub makespan: f64,
    /// End-to-end latency sketch (virtual nanoseconds, completion
    /// order). Virtual time makes this bit-identical across runs and
    /// worker counts (§11).
    pub latency_sketch: tel::QuantileSketch,
    /// Per-pipeline-stage duration sketches (`serve.sample`,
    /// `serve.fetch`, `serve.copy`, `serve.infer`), folded from the DES
    /// trace in stage-name order. Empty when telemetry was off at
    /// server construction (the DES trace is not recorded then).
    pub stage_sketches: Vec<(String, tel::QuantileSketch)>,
    /// Wire precision the run used (labels the cache report).
    pub wire_scheme: QuantScheme,
    /// Overlay storage precision (sizes the overlay tier's bytes).
    pub overlay_scheme: QuantScheme,
    /// Feature dimension (sizes per-tier byte accounting).
    pub feature_dim: usize,
    /// This server's machine id.
    pub part: u32,
    /// Machines in the deployment (comm-matrix side length).
    pub machines: usize,
    /// Per-batch remote-fetch events `(batch close time, owner machine,
    /// wire bytes)`, in batch order — the raw material of
    /// [`ServeReport::comm_report`].
    pub fetch_events: Vec<(f64, u32, u64)>,
}

impl ServeReport {
    /// Requests that entered admission (completed + rejected).
    pub fn total_requests(&self) -> usize {
        self.completions.len() + self.rejections.len()
    }

    /// Completed requests per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.makespan > 0.0 {
            self.completions.len() as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Latency quantile `q` in `[0,1]` (virtual seconds; 0 when empty).
    pub fn latency_quantile(&self, q: f64) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        let mut lat: Vec<f64> = self.completions.iter().map(|c| c.latency).collect();
        lat.sort_by(f64::total_cmp);
        let idx = ((lat.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        lat[idx]
    }

    /// Mean latency (virtual seconds; 0 when empty).
    pub fn mean_latency(&self) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        self.completions.iter().map(|c| c.latency).sum::<f64>() / self.completions.len() as f64
    }

    /// Structured per-tier cache attribution for this run (DESIGN.md
    /// §15). Tier hit counts partition `lookups` (the `remote` tier
    /// counts every fetch as a hit — the network always answers), and
    /// per-tier bytes reflect each tier's storage precision: the static
    /// tier is device-resident `f32`, the overlay holds
    /// [`Self::overlay_scheme`] rows, and the remote tier moves
    /// [`Self::wire_scheme`] rows. Built from deterministic accounting,
    /// so `to_json()` is bit-identical across runs and worker counts.
    pub fn cache_report(&self, label: &str) -> tel::CacheReport {
        let dim = self.feature_dim;
        let mut st = tel::TierStats::named("static");
        st.hits = self.cache.static_hits;
        st.misses = self.cache.lookups - self.cache.static_hits;
        st.bytes = self.cache.static_hits * (dim * 4) as u64;
        let mut ov = tel::TierStats::named("overlay");
        ov.hits = self.cache.overlay_hits;
        ov.misses = self.cache.misses;
        ov.evictions = self.cache.evictions;
        ov.insertions = self.cache.insertions;
        ov.bytes = self.cache.overlay_hits * self.overlay_scheme.row_bytes(dim) as u64;
        let mut re = tel::TierStats::named("remote");
        re.hits = self.cache.misses;
        re.insertions = self.cache.misses;
        re.bytes = self.cache.bytes_fetched;
        tel::CacheReport {
            label: label.to_string(),
            scheme: self.wire_scheme.name().to_string(),
            lookups: self.cache.lookups,
            local: self.cache.local,
            tiers: vec![st, ov, re],
            latency_ns: self.latency_sketch.clone(),
        }
    }

    /// Windowed communication-matrix view of this run's remote fetches:
    /// the virtual makespan is cut into `windows` equal slices and each
    /// fetch's wire bytes are attributed `owner → this machine` in the
    /// slice holding its batch's close time. Deterministic for the same
    /// reason the cache report is.
    pub fn comm_report(&self, label: &str, windows: usize) -> tel::CommReport {
        let windows = windows.max(1);
        let mut r = tel::CommReport::with_windows(label, self.machines.max(1), windows, |w| {
            format!("w{w}")
        });
        let span = self.makespan.max(f64::MIN_POSITIVE);
        for &(t, owner, bytes) in &self.fetch_events {
            let w = (((t / span) * windows as f64) as usize).min(windows - 1);
            r.record(w, owner as usize, self.part as usize, bytes);
        }
        r
    }
}

/// Closed-loop load configuration for
/// [`InferenceServer::run_closed_loop`].
#[derive(Clone, Debug)]
pub struct ClosedLoopConfig {
    /// Concurrent clients.
    pub clients: usize,
    /// Virtual think time between a client's response and its next
    /// request (also the retry delay after a rejection).
    pub think_time: f64,
    /// Total requests to issue across all clients.
    pub total_requests: usize,
    /// Popularity skew exponent (see [`PopularitySampler`]).
    pub skew: f64,
    /// Seed for vertex choices (independent of the server seed).
    pub seed: u64,
}

/// Where a batch node's features come from (serving-time view: the
/// static tier plus the overlay).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tier {
    LocalGpu,
    LocalCpu,
    Static,
    Overlay,
    Fetch,
}

/// Classifies one MFG node against local storage and both cache tiers.
/// Per-node kernel of the batch classification pass; runs under
/// [`WorkerPool::par_map`], so it must stay allocation- and lock-free.
// spp-hot(serve.classify)
// spp-det(serve.classify)
#[inline]
fn classify_node(
    layout: &ReorderedLayout,
    part: u32,
    gpu_rows: usize,
    cache: &StaticCache,
    overlay: &DynamicOverlay,
    v: VertexId,
) -> Tier {
    if layout.is_local(v, part) {
        if layout.local_index(v) < gpu_rows {
            Tier::LocalGpu
        } else {
            Tier::LocalCpu
        }
    } else if cache.contains(v) {
        Tier::Static
    } else if overlay.probe(v).is_some() {
        Tier::Overlay
    } else {
        Tier::Fetch
    }
}

/// Telemetry handles, resolved once (no-ops while telemetry is off).
struct ServeMetrics {
    queue_depth: Gauge,
    batch_size: Histogram,
    latency_ns: Histogram,
    admitted: Counter,
    rejected: Counter,
    completed: Counter,
    static_hits: Counter,
    overlay_hits: Counter,
    overlay_evictions: Counter,
    misses: Counter,
    net_bytes: Counter,
}

fn serve_metrics() -> Option<&'static ServeMetrics> {
    if !tel::enabled() {
        return None;
    }
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    Some(METRICS.get_or_init(|| ServeMetrics {
        queue_depth: tel::gauge("serve.queue_depth"),
        batch_size: tel::histogram("serve.batch_size"),
        latency_ns: tel::histogram("serve.latency_ns"),
        admitted: tel::counter("serve.requests.admitted"),
        rejected: tel::counter("serve.requests.rejected"),
        completed: tel::counter("serve.requests.completed"),
        static_hits: tel::counter("serve.cache.static_hits"),
        overlay_hits: tel::counter("serve.cache.overlay_hits"),
        overlay_evictions: tel::counter("serve.cache.overlay_evictions"),
        misses: tel::counter("serve.cache.misses"),
        net_bytes: tel::counter("serve.net.bytes"),
    }))
}

/// Order-sensitive checksum over raw `f32` bit patterns.
fn logits_checksum(row: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in row {
        h ^= u64::from(x.to_bits());
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Argmax with ties to the lowest index.
fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in row.iter().enumerate() {
        if x > row[best] {
            best = i;
        }
    }
    best
}

/// One machine's online inference server. Single-use: build, call one
/// `run_*` method, read the report.
pub struct InferenceServer<'a> {
    model: &'a GnnModel,
    store: &'a PartitionedFeatureStore,
    peers: &'a [PartitionedFeatureStore],
    /// Optional out-of-core source for remote-fetch rows (new-id
    /// addressed). When set, cache/overlay misses read the owner's rows
    /// through this store instead of the peer's resident
    /// [`PartitionedFeatureStore`]; wire-byte accounting is unchanged.
    remote_store: Option<&'a dyn FeatureStore>,
    cfg: ServeConfig,
    /// Dense-indexed clone of the store's static cache for O(1)
    /// membership in the per-node classification loop.
    static_cache: StaticCache,
    overlay: DynamicOverlay,
    sampler: NodeWiseSampler<'a>,
    queue: AdmissionQueue,
    batcher: MicroBatcher,
    des: DesEngine,
    res_cpu: ResourceId,
    res_net: ResourceId,
    res_copy: ResourceId,
    res_gpu: ResourceId,
    /// In-flight batches as `(finish, size)`, finish-ordered (the GPU is
    /// a serial DES resource, so completions are monotone in batch id).
    inflight: VecDeque<(f64, usize)>,
    local: u64,
    static_hits: u64,
    bytes_fetched: u64,
    /// `(batch close time, owner machine, wire bytes)` per remote
    /// fetch, in batch order (feeds [`ServeReport::comm_report`]).
    fetch_events: Vec<(f64, u32, u64)>,
    /// Overlay evictions already forwarded to telemetry.
    reported_evictions: u64,
    completions: Vec<Completion>,
    rejections: Vec<Rejection>,
    batches: Vec<BatchRecord>,
}

impl<'a> InferenceServer<'a> {
    /// A server for machine `part` of `setup`, answering with `model`.
    ///
    /// # Panics
    ///
    /// Panics if the model's input dim does not match the features, its
    /// depth does not match `cfg.fanouts`, or config bounds are invalid
    /// (zero batch size / queue capacity, negative delay).
    pub fn new(
        setup: &'a DistributedSetup,
        model: &'a GnnModel,
        part: u32,
        cfg: ServeConfig,
    ) -> Self {
        let store = &setup.stores[part as usize];
        assert_eq!(
            model.dims().first().copied(),
            Some(setup.dataset.features.dim()),
            "model input dim must match feature dim"
        );
        assert_eq!(
            model.num_layers(),
            cfg.fanouts.num_hops(),
            "model depth must match serving fanouts"
        );
        let num_vertices = store.layout().num_vertices();
        let static_cache = store.cache().clone().with_dense_index(num_vertices);
        let policy = BatchPolicy::new(cfg.max_batch_size, cfg.max_delay);
        let mut des = DesEngine::new();
        if tel::enabled() {
            des.enable_trace();
        }
        let res_cpu = des.add_resource("serve-cpu");
        let res_net = des.add_resource("serve-net");
        let res_copy = des.add_resource("serve-copy");
        let res_gpu = des.add_resource("serve-gpu");
        Self {
            model,
            store,
            peers: &setup.stores,
            remote_store: None,
            overlay: DynamicOverlay::with_scheme(
                cfg.overlay_capacity,
                store.dim(),
                cfg.overlay_scheme,
            ),
            sampler: NodeWiseSampler::new(&setup.dataset.graph, cfg.fanouts.clone()),
            queue: AdmissionQueue::new(cfg.queue_capacity, num_vertices),
            batcher: MicroBatcher::new(policy),
            cfg,
            static_cache,
            des,
            res_cpu,
            res_net,
            res_copy,
            res_gpu,
            inflight: VecDeque::new(),
            local: 0,
            static_hits: 0,
            bytes_fetched: 0,
            fetch_events: Vec::new(),
            reported_evictions: 0,
            completions: Vec::new(),
            rejections: Vec::new(),
            batches: Vec::new(),
        }
    }

    /// Serves remote-fetch rows from an out-of-core [`FeatureStore`]
    /// (addressed by the deployment's reordered ids) instead of peer
    /// machines' resident stores — modeling owners that page features
    /// from disk (DESIGN.md §16). Tier classification, wire-byte
    /// accounting, and the DES timeline are unchanged; an f32 store
    /// serves bit-identical rows.
    ///
    /// # Panics
    ///
    /// Panics if the store's shape disagrees with the deployment.
    pub fn with_remote_store(mut self, remote: &'a dyn FeatureStore) -> Self {
        assert_eq!(
            remote.num_rows(),
            self.store.layout().num_vertices(),
            "remote store row count must match the deployment"
        );
        assert_eq!(
            remote.dim(),
            self.store.dim(),
            "remote store dim must match the feature dim"
        );
        self.remote_store = Some(remote);
        self
    }

    /// Replays an open-loop trace (arrivals must be time-ordered).
    ///
    /// # Panics
    ///
    /// Panics if the trace's arrival times are not non-decreasing.
    pub fn run(mut self, trace: &[InferenceRequest]) -> ServeReport {
        let mut last = 0.0f64;
        for req in trace {
            assert!(req.arrival >= last, "trace must be time-ordered");
            last = req.arrival;
            self.handle_arrival(*req);
        }
        self.flush_all();
        self.finish()
    }

    /// Runs a closed loop: `cl.clients` clients each issue a request,
    /// wait for its response (or rejection), think, repeat — until
    /// `cl.total_requests` have been issued. Offered load adapts to
    /// service capacity, so rejections only occur when the queue bound is
    /// tighter than the client count.
    ///
    /// # Panics
    ///
    /// Panics if `cl.clients` is zero or `cl.think_time` is negative.
    pub fn run_closed_loop(mut self, cl: &ClosedLoopConfig) -> ServeReport {
        assert!(cl.clients > 0, "closed loop needs at least one client");
        assert!(cl.think_time >= 0.0, "think time must be non-negative");
        let sampler = PopularitySampler::new(self.store.layout().num_vertices(), cl.skew, cl.seed);
        let mut rng = StdRng::seed_from_u64(cl.seed);
        let mut issued = 0u64;
        // Min-heap of pending client wake-ups. Times are non-negative, so
        // the `to_bits` order matches numeric order; client id breaks ties
        // deterministically.
        let mut wakeups: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = (0..cl.clients as u32)
            .map(|c| {
                let t = cl.think_time * c as f64 / cl.clients as f64;
                std::cmp::Reverse((t.to_bits(), c))
            })
            .collect();
        loop {
            while let Some(&std::cmp::Reverse((bits, client))) = wakeups.peek() {
                let now = f64::from_bits(bits);
                // A batch deadline before this wake-up fires first; its
                // completions may schedule earlier wake-ups.
                if self
                    .batcher
                    .deadline_for(&self.queue)
                    .is_some_and(|d| d <= now)
                {
                    let from = self.completions.len();
                    self.fire_deadlines_until(now);
                    Self::requeue(&mut wakeups, &self.completions[from..], cl);
                    continue;
                }
                wakeups.pop();
                if issued >= cl.total_requests as u64 {
                    continue; // client retires
                }
                let req = InferenceRequest {
                    id: issued,
                    vertex: sampler.sample(&mut rng),
                    arrival: now,
                    client,
                };
                issued += 1;
                let from = self.completions.len();
                let admitted = self.handle_arrival(req);
                Self::requeue(&mut wakeups, &self.completions[from..], cl);
                if !admitted {
                    // Rejected: the client backs off one think time.
                    let t = now + cl.think_time;
                    wakeups.push(std::cmp::Reverse((t.to_bits(), client)));
                }
            }
            if self.queue.depth() == 0 {
                break;
            }
            let from = self.completions.len();
            if let Some(b) = self.batcher.flush(&mut self.queue) {
                self.process_batch(&b);
            }
            Self::requeue(&mut wakeups, &self.completions[from..], cl);
        }
        self.finish()
    }

    /// Schedules the issuing clients of fresh completions to wake after
    /// their think time.
    fn requeue(
        wakeups: &mut BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
        fresh: &[Completion],
        cl: &ClosedLoopConfig,
    ) {
        for c in fresh {
            let t = c.finish + cl.think_time;
            wakeups.push(std::cmp::Reverse((t.to_bits(), c.client)));
        }
    }

    /// Admits one arrival (after settling earlier deadlines and
    /// completions); returns whether it was admitted.
    fn handle_arrival(&mut self, req: InferenceRequest) -> bool {
        self.fire_deadlines_until(req.arrival);
        self.drain_inflight(req.arrival);
        let inflight = self.inflight_requests();
        let admitted = match self.queue.offer(req, inflight) {
            Ok(()) => {
                if let Some(m) = serve_metrics() {
                    m.admitted.inc();
                }
                if let Some(b) = self.batcher.try_close_on_size(&mut self.queue, req.arrival) {
                    self.process_batch(&b);
                }
                true
            }
            Err(rej) => {
                if let Some(m) = serve_metrics() {
                    m.rejected.inc();
                }
                self.rejections.push(*rej);
                false
            }
        };
        if let Some(m) = serve_metrics() {
            m.queue_depth.set(self.queue.depth() as u64);
        }
        admitted
    }

    /// Fires every batch deadline at or before `now`, oldest first.
    fn fire_deadlines_until(&mut self, now: f64) {
        while let Some(b) = self.batcher.try_close_on_deadline(&mut self.queue, now) {
            self.process_batch(&b);
        }
    }

    /// Drops in-flight batches that completed at or before `now`.
    fn drain_inflight(&mut self, now: f64) {
        while self.inflight.front().is_some_and(|&(t, _)| t <= now) {
            self.inflight.pop_front();
        }
    }

    /// Requests riding in not-yet-completed batches.
    fn inflight_requests(&self) -> usize {
        self.inflight.iter().map(|&(_, n)| n).sum()
    }

    /// Runs one micro-batch through sampling, the two-tier gather, the
    /// virtual-time pipeline, and the forward pass.
    fn process_batch(&mut self, batch: &MicroBatch) {
        // Deduplicate seeds (first-occurrence order): a minibatch is a
        // set, but two requests for one vertex still get two result rows.
        let mut seed_row: Vec<usize> = Vec::with_capacity(batch.requests.len());
        let mut seeds: Vec<VertexId> = Vec::with_capacity(batch.requests.len());
        for req in &batch.requests {
            match seeds.iter().position(|&s| s == req.vertex) {
                Some(i) => seed_row.push(i),
                None => {
                    seed_row.push(seeds.len());
                    seeds.push(req.vertex);
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(batch_stream_seed(self.cfg.seed, 0, batch.id));
        let mfg = self.sampler.sample(&seeds, &mut rng);

        // Classify every MFG node against local storage and both cache
        // tiers. Runs on the worker pool; the merge is index-ordered and
        // the overlay's hit/miss tallies are per-probe atomics, so the
        // result is independent of the worker count.
        let layout = self.store.layout();
        let part = self.store.part();
        let gpu_rows = self.store.gpu_rows();
        let cache = &self.static_cache;
        let overlay = &self.overlay;
        let tiers: Vec<Tier> = self.cfg.pool.par_map(&mfg.nodes, 512, |_, &v| {
            classify_node(layout, part, gpu_rows, cache, overlay, v)
        });
        let (mut n_gpu, mut n_cpu, mut n_static, mut n_overlay, mut n_fetch) =
            (0usize, 0usize, 0usize, 0usize, 0usize);
        for t in &tiers {
            match t {
                Tier::LocalGpu => n_gpu += 1,
                Tier::LocalCpu => n_cpu += 1,
                Tier::Static => n_static += 1,
                Tier::Overlay => n_overlay += 1,
                Tier::Fetch => n_fetch += 1,
            }
        }
        let n_local = n_gpu + n_cpu;

        // Recency maintenance: overlay hits become most-recently-used,
        // in node order (sequential — part of the eviction-order
        // determinism contract).
        for (&v, t) in mfg.nodes.iter().zip(&tiers) {
            if *t == Tier::Overlay {
                self.overlay.touch(v);
            }
        }

        // Gather the feature tensor. The store's own plan knows only the
        // static tier; the overlay interposes inside the fetch callback,
        // serving hits from memory and batching true misses to the
        // owner's store. Admissions are deferred until the gather is
        // done, so the overlay the callback reads is exactly the overlay
        // classification probed.
        let dim = self.store.dim();
        let store = self.store;
        let peers = self.peers;
        let remote_store = self.remote_store;
        let overlay = &self.overlay;
        let wire = self.cfg.wire_scheme;
        let wire_row_bytes = self.cfg.wire_scheme.row_bytes(dim);
        let mut to_admit: Vec<(VertexId, Vec<f32>)> = Vec::new();
        let mut owner_bytes: Vec<(u32, u64)> = Vec::new();
        let x = store.gather(&mfg.nodes, |owner, ids| {
            let mut m = FeatureMatrix::zeros(ids.len(), dim);
            let mut need: Vec<(usize, VertexId)> = Vec::new();
            for (i, &v) in ids.iter().enumerate() {
                if let Some(slot) = overlay.peek(v) {
                    overlay.read_row_into(slot, m.row_mut(i as u32));
                } else {
                    need.push((i, v));
                }
            }
            if !need.is_empty() {
                let req_ids: Vec<VertexId> = need.iter().map(|&(_, v)| v).collect();
                owner_bytes.push((owner, (req_ids.len() * wire_row_bytes) as u64));
                let served = match remote_store {
                    Some(rs) => {
                        // The owner pages the rows from its out-of-core
                        // store; same ids, same wire accounting.
                        let mut sm = FeatureMatrix::zeros(req_ids.len(), dim);
                        for (r, &v) in req_ids.iter().enumerate() {
                            rs.read_row_into(v, sm.row_mut(r as u32));
                        }
                        sm
                    }
                    None => peers[owner as usize].serve(&req_ids),
                };
                for (r, &(i, v)) in need.iter().enumerate() {
                    let out = m.row_mut(i as u32);
                    out.copy_from_slice(served.row(r as VertexId));
                    // The wire codec is applied at the requester: the row
                    // the model (and the overlay admission) sees is what
                    // survived the quantized transfer.
                    quant::wire_roundtrip(out, wire);
                    to_admit.push((v, out.to_vec()));
                }
            }
            m
        });
        debug_assert_eq!(to_admit.len(), n_fetch, "classification/gather drift");
        for (v, row) in &to_admit {
            self.overlay.insert(*v, row);
        }
        for (owner, bytes) in owner_bytes {
            self.fetch_events.push((batch.close_time, owner, bytes));
        }

        // Virtual-time pipeline: sample (CPU, released at the batch's
        // close time) → remote fetch (NIC) → slice + host-to-device copy
        // (copy engine) → forward (GPU). Serial DES resources pipeline
        // consecutive batches exactly like the training simulator.
        let bytes = (n_fetch * wire_row_bytes) as f64;
        // Rows staged through host RAM before the device copy: CPU-resident
        // locals, overlay rows (host memory), and freshly fetched rows.
        // Static-tier and GPU-resident rows are already on device.
        let host_rows = n_cpu + n_overlay + n_fetch;
        let l = mfg.num_hops();
        let layer_rows: Vec<usize> = (1..=l).map(|layer| mfg.sizes[l - layer + 1]).collect();
        let cost = &self.cfg.cost;
        let label = |s: &str| format!("serve.{s} b{}", batch.id);
        let t_sample = self.des.submit_labeled_released(
            self.res_cpu,
            cost.sample_time(mfg.num_edges()),
            &[],
            &label("sample"),
            batch.close_time,
        );
        let mut dep = t_sample;
        if bytes > 0.0 {
            dep = self.des.submit_labeled(
                self.res_net,
                cost.network.transfer_time(bytes),
                &[dep],
                &label("fetch"),
            );
        }
        let t_copy = self.des.submit_labeled(
            self.res_copy,
            cost.slice_time(mfg.num_nodes(), dim) + cost.pcie_time((host_rows * dim * 4) as f64),
            &[dep],
            &label("copy"),
        );
        let t_gpu = self.des.submit_labeled(
            self.res_gpu,
            cost.infer_time(&layer_rows, self.model.dims()),
            &[t_copy],
            &label("infer"),
        );
        let finish = self.des.completion(t_gpu);
        debug_assert!(
            self.inflight.back().is_none_or(|&(t, _)| t <= finish),
            "serial GPU completions must be monotone"
        );
        self.inflight.push_back((finish, batch.requests.len()));

        // Forward pass; map each request to its (deduplicated) seed row.
        let logits = self.model.infer(x, &mfg);
        for (req, &row_idx) in batch.requests.iter().zip(&seed_row) {
            let row = logits.row(row_idx);
            self.completions.push(Completion {
                id: req.id,
                vertex: req.vertex,
                batch_id: batch.id,
                arrival: req.arrival,
                client: req.client,
                finish,
                latency: finish - req.arrival,
                label: argmax(row),
                checksum: logits_checksum(row),
            });
        }

        // Accounting.
        self.local += n_local as u64;
        self.static_hits += n_static as u64;
        self.bytes_fetched += (n_fetch * wire_row_bytes) as u64;
        self.batches.push(BatchRecord {
            id: batch.id,
            size: batch.requests.len(),
            trigger: batch.trigger,
            close_time: batch.close_time,
            finish,
            mfg_nodes: mfg.num_nodes(),
            mfg_edges: mfg.num_edges(),
            remote_fetched: n_fetch,
        });
        if let Some(m) = serve_metrics() {
            m.batch_size.observe(batch.requests.len() as u64);
            m.completed.add(batch.requests.len() as u64);
            m.static_hits.add(n_static as u64);
            m.overlay_hits.add(n_overlay as u64);
            let evictions = self.overlay.counters().evictions;
            m.overlay_evictions.add(evictions - self.reported_evictions);
            self.reported_evictions = evictions;
            m.misses.add(n_fetch as u64);
            m.net_bytes.add((n_fetch * dim * 4) as u64);
            for req in &batch.requests {
                let lat_ns = ((finish - req.arrival) * 1e9).max(0.0) as u64;
                m.latency_ns.observe(lat_ns);
            }
        }
    }

    /// Closes and runs every remaining batch (end of trace).
    fn flush_all(&mut self) {
        while let Some(b) = self.batcher.flush(&mut self.queue) {
            self.process_batch(&b);
        }
    }

    /// Final accounting and (when telemetry is on) sim-span export.
    fn finish(self) -> ServeReport {
        if tel::enabled() {
            for e in self.des.trace() {
                let track = tel::sim_track(self.des.resource_name(e.resource));
                tel::record_sim_span(track, e.label.clone(), e.start, e.end - e.start);
            }
        }
        // Fold the virtual-time pipeline stages into per-stage duration
        // sketches. Stage = the span label minus its ` b<id>` suffix;
        // names are collected in first-appearance order then sorted, so
        // the result is a pure function of the (deterministic) DES
        // trace.
        let mut stage_sketches: Vec<(String, tel::QuantileSketch)> = Vec::new();
        for e in self.des.trace() {
            let stage = e.label.split(" b").next().unwrap_or(&e.label);
            if !stage_sketches.iter().any(|(n, _)| n == stage) {
                stage_sketches.push((stage.to_string(), tel::QuantileSketch::new()));
            }
            if let Some((_, sk)) = stage_sketches.iter_mut().find(|(n, _)| n == stage) {
                sk.observe_secs(e.end - e.start);
            }
        }
        stage_sketches.sort_by(|a, b| a.0.cmp(&b.0));
        let mut latency_sketch = tel::QuantileSketch::new();
        for c in &self.completions {
            latency_sketch.observe_secs(c.latency);
        }
        let oc = self.overlay.counters();
        let cache = CacheStats {
            lookups: self.static_hits + oc.hits + oc.misses,
            local: self.local,
            static_hits: self.static_hits,
            overlay_hits: oc.hits,
            misses: oc.misses,
            evictions: oc.evictions,
            insertions: oc.insertions,
            bytes_fetched: self.bytes_fetched,
        };
        debug_assert_eq!(
            cache.static_hits + cache.overlay_hits + cache.misses,
            cache.lookups,
            "tier accounting must partition lookups"
        );
        ServeReport {
            completions: self.completions,
            rejections: self.rejections,
            batches: self.batches,
            cache,
            makespan: self.des.makespan(),
            latency_sketch,
            stage_sketches,
            wire_scheme: self.cfg.wire_scheme,
            overlay_scheme: self.cfg.overlay_scheme,
            feature_dim: self.store.dim(),
            part: self.store.part(),
            machines: self.peers.len(),
            fetch_events: self.fetch_events,
        }
    }
}
