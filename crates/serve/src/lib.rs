//! Online GNN inference serving on a SALIENT++ deployment.
//!
//! Training-time SALIENT++ amortizes communication with VIP-ranked
//! static caches; this crate asks the serving-time question: what
//! happens when per-vertex inference requests arrive online, with a
//! popularity skew the offline VIP analysis never saw? The answer is a
//! deterministic, virtual-time serving simulator:
//!
//! - [`queue`] — bounded admission with explicit backpressure: every
//!   request is either completed or rejected with a [`RejectReason`];
//!   the admitted-but-unfinished backlog never exceeds a hard bound.
//! - [`batcher`] — micro-batching: a batch closes when it reaches
//!   `max_batch_size` or when its oldest request has waited `max_delay`
//!   virtual seconds, whichever comes first.
//! - [`overlay`] — the dynamic second cache tier: an LRU overlay on top
//!   of the pinned VIP static cache that learns request skew online,
//!   with per-tier hit/miss/eviction counters.
//! - [`server`] — the event loop tying it together: per-batch L-hop
//!   sampling (`spp-sampler`), two-tier feature gather with remote-byte
//!   accounting, a virtual-time pipeline on the `spp-comm` DES (sample →
//!   fetch → copy → infer), and the `spp-gnn` forward pass.
//! - [`loadgen`] — seeded Pareto-skewed trace generation (open loop)
//!   and the popularity sampler the closed-loop driver reuses.
//!
//! Determinism is a hard contract (DESIGN.md §11): given a trace and a
//! config, batch composition, cache state, latencies, and output logits
//! are bit-identical across runs and across worker-pool sizes.
//!
//! # Example
//!
//! ```
//! use spp_graph::dataset::SyntheticSpec;
//! use spp_runtime::{DistributedSetup, SetupConfig};
//! use spp_sampler::Fanouts;
//! use spp_serve::{generate_open_loop, InferenceServer, ServeConfig, TraceConfig};
//!
//! let ds = SyntheticSpec::new("d", 300, 8.0, 8, 4)
//!     .split_fractions(0.2, 0.05, 0.05)
//!     .seed(1)
//!     .build();
//! let setup = DistributedSetup::build(&ds, SetupConfig {
//!     num_machines: 2,
//!     fanouts: Fanouts::new(vec![4, 3]),
//!     alpha: 0.2,
//!     ..SetupConfig::default()
//! });
//! let model = spp_gnn::GnnModel::new(spp_gnn::Arch::Sage, &[8, 16, 4], 7);
//! let cfg = ServeConfig {
//!     fanouts: Fanouts::new(vec![4, 3]),
//!     overlay_capacity: 16,
//!     ..ServeConfig::default()
//! };
//! let trace = generate_open_loop(&TraceConfig {
//!     num_requests: 64,
//!     num_vertices: 300,
//!     arrival_rate: 500.0,
//!     skew: 2.0,
//!     burstiness: 0.3,
//!     seed: 3,
//! });
//! let report = InferenceServer::new(&setup, &model, 0, cfg).run(&trace);
//! assert_eq!(report.total_requests(), 64);
//! assert!(report.makespan > 0.0);
//! ```

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

pub mod batcher;
pub mod loadgen;
pub mod overlay;
pub mod queue;
pub mod server;

pub use batcher::{BatchPolicy, CloseTrigger, MicroBatch, MicroBatcher};
pub use loadgen::{generate_open_loop, PopularitySampler, TraceConfig, BURST_WINDOW};
pub use overlay::{DynamicOverlay, InsertOutcome, OverlayCounters};
pub use queue::{AdmissionQueue, InferenceRequest, RejectReason, Rejection};
pub use server::{
    BatchRecord, CacheStats, ClosedLoopConfig, Completion, InferenceServer, ServeConfig,
    ServeReport,
};
