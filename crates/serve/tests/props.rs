//! Property and integration tests for the serving subsystem: two-tier
//! invariants, exact counter accounting under concurrency, and the
//! worker-count determinism contract (DESIGN.md §11).

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_core::StaticCache;
use spp_gnn::{Arch, GnnModel};
use spp_graph::dataset::SyntheticSpec;
use spp_graph::{quant, Dataset, QuantScheme, VertexId};
use spp_pool::WorkerPool;
use spp_runtime::{DistributedSetup, SetupConfig};
use spp_sampler::{Fanouts, NodeWiseSampler};
use spp_serve::{
    generate_open_loop, DynamicOverlay, InferenceServer, InsertOutcome, RejectReason, ServeConfig,
    ServeReport, TraceConfig,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The serving discipline checks the static tier before the overlay
    /// and only admits vertices that missed it. Under that discipline —
    /// for any static membership, overlay capacity, and access trace —
    /// the overlay never contains (and therefore never evicts) a pinned
    /// static entry, and its occupancy respects capacity.
    #[test]
    fn overlay_stays_disjoint_from_static_tier(
        num_static in 1usize..40,
        capacity in 0usize..24,
        trace in proptest::collection::vec(0u32..120, 1..300),
    ) {
        let members: Vec<VertexId> = (0..num_static as u32).map(|i| i * 3).collect();
        let cache = StaticCache::from_members(&members).with_dense_index(512);
        let mut overlay = DynamicOverlay::new(capacity, 4);
        for &v in &trace {
            if cache.contains(v) {
                continue; // static tier answers first; overlay untouched
            }
            if overlay.probe(v).is_some() {
                overlay.touch(v);
            } else {
                let out = overlay.insert(v, &[v as f32; 4]);
                if let InsertOutcome::Evicted(old) = out {
                    prop_assert!(!cache.contains(old));
                }
            }
            prop_assert!(overlay.len() <= capacity);
        }
        for v in overlay.members_mru_order() {
            prop_assert!(!cache.contains(v));
        }
        let c = overlay.counters();
        prop_assert_eq!(c.hits + c.misses, c.lookups());
    }

    /// Quantized features can only flip a classification when the f32
    /// logit margin is smaller than twice the worst per-logit
    /// perturbation the quantization induced — a margin above that bound
    /// guarantees the argmax is unchanged. Checked end-to-end through
    /// the GNN forward pass for both `F16` and `I8` input codecs.
    #[test]
    fn quantization_below_logit_margin_never_flips_classification(
        seed in 0u64..64,
        scheme_i8 in any::<bool>(),
    ) {
        let scheme = if scheme_i8 { QuantScheme::I8 } else { QuantScheme::F16 };
        let ds = SyntheticSpec::new("quant-margin", 200, 6.0, 6, 3)
            .split_fractions(0.3, 0.1, 0.1)
            .seed(seed)
            .build();
        let model = GnnModel::new(Arch::Sage, &[6, 12, 3], seed ^ 0xabc);
        let sampler = NodeWiseSampler::new(&ds.graph, Fanouts::new(vec![4, 3]));
        let seeds: Vec<VertexId> = (0..8).map(|i| (i * 23) % 200).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mfg = sampler.sample(&seeds, &mut rng);

        let dim = ds.features.dim();
        let mut exact = spp_tensor::Matrix::zeros(mfg.nodes.len(), dim);
        for (i, &v) in mfg.nodes.iter().enumerate() {
            exact.row_mut(i).copy_from_slice(ds.features.row(v));
        }
        let mut coded = exact.clone();
        for i in 0..mfg.nodes.len() {
            quant::wire_roundtrip(coded.row_mut(i), scheme);
        }

        let logits_exact = model.infer(exact, &mfg);
        let logits_coded = model.infer(coded, &mfg);
        for r in 0..seeds.len() {
            let le = logits_exact.row(r);
            let lc = logits_coded.row(r);
            let worst = le
                .iter()
                .zip(lc)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            let mut sorted = le.to_vec();
            sorted.sort_by(|a, b| b.total_cmp(a));
            let margin = sorted[0] - sorted[1];
            let argmax = |row: &[f32]| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
            };
            if margin > 2.0 * worst {
                prop_assert_eq!(
                    argmax(le),
                    argmax(lc),
                    "margin {} > 2*{} yet label flipped",
                    margin,
                    worst
                );
            }
        }
    }

    /// Replaying the same operation sequence twice yields the same
    /// eviction sequence and the same final recency order: eviction is a
    /// pure function of the trace.
    #[test]
    fn eviction_order_is_deterministic(
        capacity in 1usize..16,
        trace in proptest::collection::vec(0u32..64, 1..200),
    ) {
        let run = || {
            let mut overlay = DynamicOverlay::new(capacity, 2);
            let mut evicted = Vec::new();
            for &v in &trace {
                match overlay.insert(v, &[v as f32, -(v as f32)]) {
                    InsertOutcome::Evicted(old) => evicted.push(old),
                    InsertOutcome::Refreshed | InsertOutcome::Inserted => {}
                    InsertOutcome::Disabled => unreachable!("capacity >= 1"),
                }
            }
            (evicted, overlay.members_mru_order())
        };
        prop_assert_eq!(run(), run());
    }
}

/// `hits + misses == lookups` holds *exactly* when probes run
/// concurrently on the worker pool: every probe increments exactly one
/// relaxed counter, so no interleaving can lose a count.
#[test]
fn probe_counters_exact_under_concurrent_pool_access() {
    let mut overlay = DynamicOverlay::new(64, 2);
    for v in 0..64u32 {
        overlay.insert(v, &[v as f32, 0.0]);
    }
    let pool = WorkerPool::new(8);
    let jobs = 16usize;
    let probes_per_job = 1000usize;
    let hits: u64 = pool
        .run_jobs(jobs, |j| {
            let mut h = 0u64;
            for i in 0..probes_per_job {
                // Half the probed ids are present (0..64), half absent.
                let v = ((j * probes_per_job + i) % 128) as u32;
                if overlay.probe(v).is_some() {
                    h += 1;
                }
            }
            h
        })
        .iter()
        .sum();
    let c = overlay.counters();
    assert_eq!(c.lookups(), (jobs * probes_per_job) as u64);
    assert_eq!(c.hits, hits);
    assert_eq!(c.hits + c.misses, c.lookups());
}

fn fixture() -> (Dataset, GnnModel) {
    let ds = SyntheticSpec::new("serve-test", 400, 8.0, 8, 4)
        .split_fractions(0.3, 0.1, 0.1)
        .seed(11)
        .build();
    let model = GnnModel::new(Arch::Sage, &[8, 16, 4], 5);
    (ds, model)
}

fn deployment(ds: &Dataset) -> DistributedSetup {
    DistributedSetup::build(
        ds,
        SetupConfig {
            num_machines: 2,
            fanouts: Fanouts::new(vec![4, 3]),
            alpha: 0.1,
            ..SetupConfig::default()
        },
    )
}

fn serve_with_pool(setup: &DistributedSetup, model: &GnnModel, workers: usize) -> ServeReport {
    let cfg = ServeConfig {
        max_batch_size: 8,
        max_delay: 0.01,
        queue_capacity: 64,
        overlay_capacity: 24,
        fanouts: Fanouts::new(vec![4, 3]),
        seed: 3,
        pool: WorkerPool::new(workers),
        ..ServeConfig::default()
    };
    let trace = generate_open_loop(&TraceConfig {
        num_requests: 300,
        num_vertices: 400,
        arrival_rate: 2000.0,
        skew: 3.0,
        burstiness: 0.3,
        seed: 17,
    });
    InferenceServer::new(setup, model, 0, cfg).run(&trace)
}

/// The §11 determinism contract: completions (latencies, labels, logits
/// checksums), batch records, and cache accounting are identical at 1,
/// 2, and 8 workers.
#[test]
fn serving_is_bit_identical_across_worker_counts() {
    let (ds, model) = fixture();
    let setup = deployment(&ds);
    let one = serve_with_pool(&setup, &model, 1);
    let two = serve_with_pool(&setup, &model, 2);
    let eight = serve_with_pool(&setup, &model, 8);
    assert!(!one.completions.is_empty());
    assert_eq!(one.completions, two.completions);
    assert_eq!(one.completions, eight.completions);
    assert_eq!(one.batches, two.batches);
    assert_eq!(one.batches, eight.batches);
    assert_eq!(one.cache, two.cache);
    assert_eq!(one.cache, eight.cache);
    assert_eq!(one.rejections, eight.rejections);
    // Tier accounting partitions lookups.
    let c = one.cache;
    assert_eq!(c.static_hits + c.overlay_hits + c.misses, c.lookups);
    assert!(c.overlay_hits > 0, "skewed trace must warm the overlay");
}

/// Quantized overlay + wire tiers change row *contents*, never tier
/// membership: classification against the tiers, batch composition,
/// and eviction order are driven by vertex ids alone, so cache
/// accounting is identical to the f32 run while `bytes_fetched` is
/// exactly halved (f16) and labels stay overwhelmingly stable.
#[test]
fn quantized_tiers_halve_wire_bytes_without_touching_cache_accounting() {
    let (ds, model) = fixture();
    let setup = deployment(&ds);
    let run = |scheme: QuantScheme| {
        let cfg = ServeConfig {
            max_batch_size: 8,
            max_delay: 0.01,
            queue_capacity: 256,
            overlay_capacity: 24,
            overlay_scheme: scheme,
            wire_scheme: scheme,
            fanouts: Fanouts::new(vec![4, 3]),
            seed: 3,
            pool: WorkerPool::new(2),
            ..ServeConfig::default()
        };
        let trace = generate_open_loop(&TraceConfig {
            num_requests: 300,
            num_vertices: 400,
            arrival_rate: 2000.0,
            skew: 3.0,
            burstiness: 0.3,
            seed: 17,
        });
        InferenceServer::new(&setup, &model, 0, cfg).run(&trace)
    };
    let full = run(QuantScheme::F32);
    let half = run(QuantScheme::F16);
    // Same lookups, hits, misses, evictions, insertions — only bytes move.
    assert_eq!(full.cache.lookups, half.cache.lookups);
    assert_eq!(full.cache.static_hits, half.cache.static_hits);
    assert_eq!(full.cache.overlay_hits, half.cache.overlay_hits);
    assert_eq!(full.cache.misses, half.cache.misses);
    assert_eq!(full.cache.evictions, half.cache.evictions);
    assert_eq!(full.cache.insertions, half.cache.insertions);
    assert!(full.cache.bytes_fetched > 0, "trace must fetch remotely");
    assert_eq!(full.cache.bytes_fetched, 2 * half.cache.bytes_fetched);
    // Batch composition is id-driven and identical.
    assert_eq!(full.batches.len(), half.batches.len());
    for (a, b) in full.batches.iter().zip(&half.batches) {
        assert_eq!((a.id, a.size, a.mfg_nodes), (b.id, b.size, b.mfg_nodes));
    }
    // f16 keeps ~11 bits of mantissa; almost every label survives.
    assert_eq!(full.completions.len(), half.completions.len());
    let agree = full
        .completions
        .iter()
        .zip(&half.completions)
        .filter(|(a, b)| a.label == b.label)
        .count();
    assert!(
        agree * 10 >= full.completions.len() * 9,
        "only {agree}/{} labels survived f16 quantization",
        full.completions.len()
    );
}

/// Backpressure: with a tight queue bound every request still gets an
/// explicit outcome — completed or rejected with `queue_full` — and the
/// admitted backlog never silently grows.
#[test]
fn overload_rejects_with_reason_and_loses_nothing() {
    let (ds, model) = fixture();
    let setup = deployment(&ds);
    let cfg = ServeConfig {
        max_batch_size: 4,
        max_delay: 0.005,
        queue_capacity: 8,
        overlay_capacity: 8,
        fanouts: Fanouts::new(vec![4, 3]),
        seed: 1,
        pool: WorkerPool::new(2),
        ..ServeConfig::default()
    };
    // Arrival rate far above service capacity forces queue_full.
    let trace = generate_open_loop(&TraceConfig {
        num_requests: 400,
        num_vertices: 400,
        arrival_rate: 100_000.0,
        skew: 2.0,
        burstiness: 0.0,
        seed: 9,
    });
    let report = InferenceServer::new(&setup, &model, 0, cfg).run(&trace);
    assert_eq!(report.total_requests(), 400);
    assert!(!report.rejections.is_empty(), "overload must shed load");
    for r in &report.rejections {
        assert_eq!(r.reason, RejectReason::QueueFull);
    }
    // Every batch respects the size bound.
    assert!(report.batches.iter().all(|b| b.size <= 4 && b.size > 0));
    let carried: usize = report.batches.iter().map(|b| b.size).sum();
    assert_eq!(carried, report.completions.len());
}

/// Closed-loop driving: all issued requests resolve, load adapts to
/// capacity (no rejections when clients fit the queue bound), and the
/// run is deterministic across worker counts.
#[test]
fn closed_loop_resolves_every_request_deterministically() {
    let (ds, model) = fixture();
    let setup = deployment(&ds);
    let run = |workers: usize| {
        let cfg = ServeConfig {
            max_batch_size: 8,
            max_delay: 0.002,
            queue_capacity: 64,
            overlay_capacity: 16,
            fanouts: Fanouts::new(vec![4, 3]),
            seed: 2,
            pool: WorkerPool::new(workers),
            ..ServeConfig::default()
        };
        InferenceServer::new(&setup, &model, 0, cfg).run_closed_loop(&spp_serve::ClosedLoopConfig {
            clients: 6,
            think_time: 0.001,
            total_requests: 200,
            skew: 2.5,
            seed: 21,
        })
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.total_requests(), 200);
    assert!(a.rejections.is_empty(), "6 clients fit a 64-deep queue");
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.cache, b.cache);
}

/// Bit-identity of remote fetch through the `FeatureStore` trait: an
/// f32 store over the deployment's reordered features (new-id space)
/// must serve every peer fetch with the same bits as the in-process
/// `PartitionedFeatureStore::serve` path, so the entire report —
/// completions, batches, cache accounting, makespan — is unchanged.
#[test]
fn remote_store_fetch_is_bit_identical() {
    let (ds, model) = fixture();
    let setup = deployment(&ds);
    let trace = generate_open_loop(&TraceConfig {
        num_requests: 300,
        num_vertices: 400,
        arrival_rate: 2000.0,
        skew: 3.0,
        burstiness: 0.3,
        seed: 17,
    });
    let cfg = || ServeConfig {
        max_batch_size: 8,
        max_delay: 0.01,
        queue_capacity: 64,
        overlay_capacity: 24,
        fanouts: Fanouts::new(vec![4, 3]),
        seed: 3,
        pool: WorkerPool::new(2),
        ..ServeConfig::default()
    };
    let baseline = InferenceServer::new(&setup, &model, 0, cfg()).run(&trace);

    let remote =
        spp_store::InRamStore::from_matrix(&setup.dataset.features, QuantScheme::F32, 4096);
    let through = InferenceServer::new(&setup, &model, 0, cfg())
        .with_remote_store(&remote)
        .run(&trace);

    assert!(!baseline.completions.is_empty());
    assert_eq!(baseline.completions, through.completions);
    assert_eq!(baseline.batches, through.batches);
    assert_eq!(baseline.cache, through.cache);
    assert_eq!(baseline.rejections, through.rejections);
    assert!(baseline.makespan == through.makespan, "makespan drifted");
}
