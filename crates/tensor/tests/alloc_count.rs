//! Counts heap allocations through the hot matmul kernels with a
//! wrapping global allocator, pinning down the payoff of the `*_into`
//! scratch-reuse refactor: once the output buffer has been sized by a
//! warm-up call, repeated `matmul_into` steps over the same shapes
//! allocate nothing beyond the bounded per-call job-cut table, while
//! each `matmul_with` call pays a fresh output buffer.
//!
//! The counter is process-global, so every assertion lives in one test
//! function — Rust runs integration-test functions on separate threads
//! and a second test would race the counter.

use spp_pool::WorkerPool;
use spp_tensor::{kernels, Matrix};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with the counter armed, returning (allocations, bytes).
fn counted<R>(f: impl FnOnce() -> R) -> (u64, u64, R) {
    ALLOCS.store(0, Ordering::SeqCst);
    BYTES.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let r = f();
    ARMED.store(false, Ordering::SeqCst);
    (
        ALLOCS.load(Ordering::SeqCst),
        BYTES.load(Ordering::SeqCst),
        r,
    )
}

fn filled(rows: usize, cols: usize, seed: u32) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
    for v in m.as_flat_mut() {
        s = s.wrapping_mul(1664525).wrapping_add(1013904223);
        *v = (s >> 8) as f32 / (1u32 << 24) as f32 - 0.5;
    }
    m
}

#[test]
fn into_kernels_stop_allocating_after_warmup() {
    // Serial pool: worker threads would otherwise allocate stack/queue
    // state of their own and muddy the count.
    let pool = WorkerPool::serial();
    let a = filled(96, 48, 1);
    let b = filled(48, 32, 2);

    let mut out = Matrix::zeros(0, 0);
    a.matmul_into(pool, &b, &mut out); // warm-up sizes the scratch
    let expect = out.clone();

    let (steady_allocs, steady_bytes, ()) = counted(|| {
        for _ in 0..8 {
            a.matmul_into(pool, &b, &mut out);
        }
    });
    assert_eq!(
        out.as_flat(),
        expect.as_flat(),
        "scratch reuse changed results"
    );

    let (fresh_allocs, fresh_bytes, ()) = counted(|| {
        for _ in 0..8 {
            let r = a.matmul_with(pool, &b);
            assert_eq!(r.rows(), 96);
        }
    });

    // The steady-state loop keeps only the bounded job-cut table per
    // call (serial pool: one job), never the 96*32 output buffer.
    let out_bytes = (96 * 32 * std::mem::size_of::<f32>()) as u64;
    assert!(
        fresh_bytes >= steady_bytes + 8 * out_bytes,
        "expected *_with to pay 8 output buffers over *_into: \
         fresh={fresh_bytes}B steady={steady_bytes}B out={out_bytes}B"
    );
    assert!(
        steady_allocs <= 2 * 8,
        "steady-state matmul_into should at most allocate the per-call \
         job-cut table, saw {steady_allocs} allocations"
    );
    assert!(
        fresh_allocs > steady_allocs,
        "fresh={fresh_allocs} steady={steady_allocs}"
    );

    // t_matmul / matmul_t / transpose reuse the same scratch contract.
    let mut s1 = Matrix::zeros(0, 0);
    let mut s2 = Matrix::zeros(0, 0);
    let mut s3 = Matrix::zeros(0, 0);
    a.t_matmul_into(pool, &a, &mut s1);
    a.matmul_t_into(pool, &a, &mut s2);
    a.transpose_into(pool, &mut s3);
    let (allocs2, _, ()) = counted(|| {
        for _ in 0..4 {
            a.t_matmul_into(pool, &a, &mut s1);
            a.matmul_t_into(pool, &a, &mut s2);
            a.transpose_into(pool, &mut s3);
        }
    });
    assert!(
        allocs2 <= 3 * 4 * 2,
        "steady-state into-kernels should stay at the job-cut table, saw {allocs2}"
    );

    // The blocked micro-kernels themselves (DESIGN.md §14) are pure
    // slice loops: register tiles live on the stack, and the
    // out-of-line `matmul_t` tile body must not reintroduce a heap
    // allocation. Zero allocations, not merely "bounded".
    let (rows, kk, n) = (96usize, 48, 32);
    let av = a.as_flat().to_vec();
    let bv = b.as_flat().to_vec();
    let cv = filled(rows, n, 3).as_flat().to_vec();
    let mut out_mm = vec![0.0f32; rows * n];
    let mut out_tm = vec![0.0f32; kk * n];
    let mut out_mt = vec![0.0f32; rows * rows];
    let (kernel_allocs, kernel_bytes, ()) = counted(|| {
        for _ in 0..4 {
            out_mm.fill(0.0);
            kernels::matmul_rows_dense(&av, kk, &bv, n, &mut out_mm);
            kernels::t_matmul_cols_dense(&av, kk, &cv, n, rows, 0, &mut out_tm);
            kernels::matmul_t_rows_dense(&av, kk, &av, rows, &mut out_mt);
            out_mm.fill(0.0);
            kernels::matmul_rows_sparse(&av, kk, &bv, n, &mut out_mm);
            std::hint::black_box(kernels::dot_blocked(&av[..kk], &bv[..kk]));
        }
    });
    assert_eq!(
        (kernel_allocs, kernel_bytes),
        (0, 0),
        "blocked kernels must not touch the heap"
    );
}
