//! Property-based tests for the tensor engine.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use proptest::prelude::*;
use spp_tensor::{Matrix, Tape};

fn arb_matrix(r: usize, c: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f32..5.0, r * c).prop_map(move |data| Matrix::from_flat(r, c, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 2),
        c in arb_matrix(4, 2),
    ) {
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        for (x, y) in lhs.as_flat().iter().zip(rhs.as_flat()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_identities(a in arb_matrix(4, 3), b in arb_matrix(3, 5)) {
        // (AB)^T == B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.as_flat().iter().zip(rhs.as_flat()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        // t_matmul / matmul_t agree with explicit transposes.
        let tm = a.t_matmul(&a);
        let tm_ref = a.transpose().matmul(&a);
        for (x, y) in tm.as_flat().iter().zip(tm_ref.as_flat()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn relu_output_nonnegative_and_sparse_grad(a in arb_matrix(3, 5)) {
        let mut tape = Tape::new();
        let x = tape.input(a.clone());
        let y = tape.relu(x);
        prop_assert!(tape.value(y).as_flat().iter().all(|&v| v >= 0.0));
        let s = tape.mean_all(y);
        tape.backward(s);
        let g = tape.grad(x).unwrap();
        for (gv, &xv) in g.as_flat().iter().zip(a.as_flat()) {
            if xv < 0.0 {
                prop_assert_eq!(*gv, 0.0);
            }
        }
    }

    #[test]
    fn backward_is_linear_in_scale(a in arb_matrix(2, 3), s in 0.1f32..4.0) {
        // d(mean(s*x))/dx = s * d(mean(x))/dx
        let grad_of = |scale: f32| {
            let mut tape = Tape::new();
            let x = tape.input(a.clone());
            let y = tape.scale(x, scale);
            let m = tape.mean_all(y);
            tape.backward(m);
            tape.grad(x).unwrap().clone()
        };
        let g1 = grad_of(1.0);
        let gs = grad_of(s);
        for (x, y) in g1.as_flat().iter().zip(gs.as_flat()) {
            prop_assert!((x * s - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_cross_entropy_nonnegative(
        logits in arb_matrix(4, 3),
        labels in prop::collection::vec(0u32..3, 4),
    ) {
        let mut tape = Tape::new();
        let x = tape.input(logits);
        let l = tape.softmax_cross_entropy(x, std::sync::Arc::new(labels));
        prop_assert!(tape.value(l).get(0, 0) >= 0.0);
    }
}
