//! Cache-blocked, autovectorizer-friendly inner product kernels.
//!
//! Every kernel here follows the same determinism discipline as the rest
//! of the workspace (DESIGN.md §9 and §14): the blocking scheme is a
//! *pure function of the operand shapes*, and each output element is
//! accumulated into a single accumulator in a fixed index order (`k`
//! ascending for `matmul`, `r` ascending for `t_matmul`, lane-partitioned
//! with a fixed reduction tree for `matmul_t`). Worker-pool chunking
//! splits these kernels along output rows/columns only, which never
//! changes any element's accumulation order — so results are
//! bit-identical for any worker count.
//!
//! The register tiles are plain `[f32; 8]` arrays sized so LLVM's
//! autovectorizer lowers the inner loops to 8-lane SIMD (one vector
//! register per accumulator on SSE2/NEON, half a register on AVX2) with
//! a scalar tail; no target-specific intrinsics are used. Every
//! accumulation step goes through [`fmadd`], which compiles to a fused
//! multiply-add on targets with hardware FMA (see `.cargo/config.toml`)
//! and to mul-then-add elsewhere — the choice is a pure function of the
//! build target, never of data or worker count.
//!
//! Two kernel families exist per product:
//!
//! * **dense** — branch-free register-blocked micro-kernels (this is the
//!   default; zero entries cost one multiply-add like any other), and
//! * **sparse** — the seed's zero-skipping row kernels, kept for
//!   operands the *caller* declares sparse via [`crate::Sparsity`];
//!   skipping is only a win when most of the declared operand is zero.

/// SIMD lane width the register tiles are built from. Eight `f32`s is
/// one SSE2/NEON register pair and half an AVX2 register; the
/// autovectorizer maps `[f32; LANES]` loops onto whichever is available.
pub const LANES: usize = 8;

/// Output-row tile height of the dense `matmul` micro-kernel: four
/// output rows share each `b` load, quartering B-side bandwidth.
pub const MM_I_TILE: usize = 4;

/// Output-column tile width for the dense `matmul` micro-kernel: two
/// 8-lane accumulators per output row — a 4×16 register tile (eight
/// accumulator vectors), enough independent FMA chains to cover the
/// FMA latency instead of serializing on one chain per lane.
pub const MM_J_TILE: usize = 2 * LANES;

/// Output-row (k-direction) tile height for the dense `t_matmul`
/// micro-kernel: a 4×16 outer-product register tile.
pub const TM_K_TILE: usize = 4;

/// Simultaneous dot products in the dense `matmul_t` micro-kernel:
/// four `b` rows share each `a` load.
pub const MT_J_TILE: usize = 4;

/// The single accumulation step every kernel in this module is built
/// from: `acc + a·b`. On targets with hardware FMA (x86-64-v3 builds —
/// the workspace default per `.cargo/config.toml` — and aarch64, where
/// FMA is baseline) this lowers to one fused instruction with a single
/// rounding, doubling per-port FLOPs over separate mul+add. On targets
/// without it we fall back to mul-then-add rather than the libm
/// software `fma` (correct but ~100× slower). The operation is fixed at
/// compile time per build target; within a build, every element's value
/// remains a pure function of the operand shapes — worker-count
/// bit-identity (DESIGN.md §9) is unaffected.
#[inline(always)]
pub fn fmadd(a: f32, b: f32, acc: f32) -> f32 {
    #[cfg(any(target_feature = "fma", target_arch = "aarch64"))]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(any(target_feature = "fma", target_arch = "aarch64")))]
    {
        acc + a * b
    }
}

// ---------------------------------------------------------------------
// matmul: out[i][j] = Σ_k a[i][k] · b[k][j]
// ---------------------------------------------------------------------

/// Dense row kernel for `a @ b`: computes `chunk.len() / n` output rows
/// into `chunk`, where `a_rows` holds the matching rows of `a`
/// (row-major, `k` columns) and `b` is `k × n` row-major.
///
/// Per output element the sum runs over `k` ascending in a single
/// accumulator, in every tile path — bit-identical to a scalar `ikj`
/// loop without zero-skipping, for any row split and any `n`.
// spp-hot(kernel.matmul_dense)
pub fn matmul_rows_dense(a_rows: &[f32], k: usize, b: &[f32], n: usize, chunk: &mut [f32]) {
    debug_assert_eq!(b.len(), k * n, "b shape mismatch");
    if n == 0 || k == 0 {
        return; // empty sum: the (pre-zeroed) chunk is already correct
    }
    let rows = chunk.len() / n;
    let mut i = 0usize;
    while i + MM_I_TILE <= rows {
        matmul_block_dense(
            &a_rows[i * k..(i + MM_I_TILE) * k],
            k,
            b,
            n,
            &mut chunk[i * n..(i + MM_I_TILE) * n],
        );
        i += MM_I_TILE;
    }
    while i < rows {
        matmul_row_tail(
            &a_rows[i * k..(i + 1) * k],
            b,
            n,
            0,
            &mut chunk[i * n..(i + 1) * n],
        );
        i += 1;
    }
}

/// 4×16 register-tiled block: `MM_I_TILE` output rows over 16-wide
/// column tiles. Eight accumulator vectors stay in registers across the
/// whole `k` loop; every `b` load feeds all four rows.
#[inline]
fn matmul_block_dense(a4: &[f32], k: usize, b: &[f32], n: usize, out4: &mut [f32]) {
    let mut j = 0usize;
    while j + MM_J_TILE <= n {
        let mut acc = [[0.0f32; LANES]; 2 * MM_I_TILE];
        for kk in 0..k {
            let b_tile = &b[kk * n + j..kk * n + j + MM_J_TILE];
            for r in 0..MM_I_TILE {
                let av = a4[r * k + kk];
                for l in 0..LANES {
                    acc[2 * r][l] = fmadd(av, b_tile[l], acc[2 * r][l]);
                }
                for l in 0..LANES {
                    acc[2 * r + 1][l] = fmadd(av, b_tile[LANES + l], acc[2 * r + 1][l]);
                }
            }
        }
        for r in 0..MM_I_TILE {
            out4[r * n + j..r * n + j + LANES].copy_from_slice(&acc[2 * r]);
            out4[r * n + j + LANES..r * n + j + MM_J_TILE].copy_from_slice(&acc[2 * r + 1]);
        }
        j += MM_J_TILE;
    }
    if j < n {
        for r in 0..MM_I_TILE {
            matmul_row_tail(
                &a4[r * k..(r + 1) * k],
                b,
                n,
                j,
                &mut out4[r * n..(r + 1) * n],
            );
        }
    }
}

/// Columns `j0..n` of one output row: 8-wide tiles, then a scalar tail.
/// Same per-element `k`-ascending order as the 4×16 block path.
#[inline]
fn matmul_row_tail(a_row: &[f32], b: &[f32], n: usize, j0: usize, out_row: &mut [f32]) {
    let mut j = j0;
    while j + LANES <= n {
        let mut acc = [0.0f32; LANES];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_lane = &b[kk * n + j..kk * n + j + LANES];
            for l in 0..LANES {
                acc[l] = fmadd(av, b_lane[l], acc[l]);
            }
        }
        out_row[j..j + LANES].copy_from_slice(&acc);
        j += LANES;
    }
    while j < n {
        let mut acc = 0.0f32;
        for (kk, &av) in a_row.iter().enumerate() {
            acc = fmadd(av, b[kk * n + j], acc);
        }
        out_row[j] = acc;
        j += 1;
    }
}

/// Sparse row kernel for `a @ b` (the seed kernel): skips zero entries
/// of `a`, which pays off only when the caller knows `a` is mostly
/// zeros. Accumulates into `chunk`, which must be pre-zeroed.
// spp-hot(kernel.matmul_sparse)
pub fn matmul_rows_sparse(a_rows: &[f32], k: usize, b: &[f32], n: usize, chunk: &mut [f32]) {
    debug_assert_eq!(b.len(), k * n, "b shape mismatch");
    for (a_row, out_row) in a_rows.chunks_exact(k.max(1)).zip(chunk.chunks_mut(n)) {
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..kk * n + n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o = fmadd(av, bv, *o);
            }
        }
    }
}

// ---------------------------------------------------------------------
// t_matmul: out[kk][j] = Σ_r a[r][kk] · b[r][j]
// ---------------------------------------------------------------------

/// Dense column-chunk kernel for `aᵀ @ b`: computes output rows
/// `k0 .. k0 + chunk.len() / n` (i.e. a column range of `a`) into
/// `chunk`. `a` is `rows × k` row-major, `b` is `rows × n` row-major.
///
/// Uses a 4×16 outer-product register tile: four consecutive `a` columns
/// (contiguous within each `a` row) against a 16-wide `b` column slice,
/// streaming both operands once per tile pair. Per output element the
/// sum runs over `r` ascending in a single accumulator in every tile
/// path, so any column split is bit-identical.
// spp-hot(kernel.t_matmul_dense)
pub fn t_matmul_cols_dense(
    a: &[f32],
    k: usize,
    b: &[f32],
    n: usize,
    rows: usize,
    k0: usize,
    chunk: &mut [f32],
) {
    debug_assert_eq!(a.len(), rows * k, "a shape mismatch");
    debug_assert_eq!(b.len(), rows * n, "b shape mismatch");
    let kn = chunk.len().checked_div(n).unwrap_or(0);
    let mut kt = 0usize;
    while kt + TM_K_TILE <= kn {
        let mut j = 0usize;
        while j + 2 * LANES <= n {
            let mut acc = [[0.0f32; LANES]; 2 * TM_K_TILE];
            for r in 0..rows {
                let a4 = &a[r * k + k0 + kt..r * k + k0 + kt + TM_K_TILE];
                let b16 = &b[r * n + j..r * n + j + 2 * LANES];
                for t in 0..TM_K_TILE {
                    let av = a4[t];
                    for l in 0..LANES {
                        acc[2 * t][l] = fmadd(av, b16[l], acc[2 * t][l]);
                    }
                    for l in 0..LANES {
                        acc[2 * t + 1][l] = fmadd(av, b16[LANES + l], acc[2 * t + 1][l]);
                    }
                }
            }
            for t in 0..TM_K_TILE {
                chunk[(kt + t) * n + j..(kt + t) * n + j + LANES].copy_from_slice(&acc[2 * t]);
                chunk[(kt + t) * n + j + LANES..(kt + t) * n + j + 2 * LANES]
                    .copy_from_slice(&acc[2 * t + 1]);
            }
            j += 2 * LANES;
        }
        while j + LANES <= n {
            let mut acc = [[0.0f32; LANES]; TM_K_TILE];
            for r in 0..rows {
                let a4 = &a[r * k + k0 + kt..r * k + k0 + kt + TM_K_TILE];
                let b8 = &b[r * n + j..r * n + j + LANES];
                for (t, lane_acc) in acc.iter_mut().enumerate() {
                    let av = a4[t];
                    for l in 0..LANES {
                        lane_acc[l] = fmadd(av, b8[l], lane_acc[l]);
                    }
                }
            }
            for (t, lane_acc) in acc.iter().enumerate() {
                chunk[(kt + t) * n + j..(kt + t) * n + j + LANES].copy_from_slice(lane_acc);
            }
            j += LANES;
        }
        // Scalar j tail for this 4-row band.
        while j < n {
            let mut acc = [0.0f32; TM_K_TILE];
            for r in 0..rows {
                let a4 = &a[r * k + k0 + kt..r * k + k0 + kt + TM_K_TILE];
                let bv = b[r * n + j];
                for (t, &av) in a4.iter().enumerate() {
                    acc[t] = fmadd(av, bv, acc[t]);
                }
            }
            for (t, &v) in acc.iter().enumerate() {
                chunk[(kt + t) * n + j] = v;
            }
            j += 1;
        }
        kt += TM_K_TILE;
    }
    // Remaining output rows, one at a time with 8-wide column tiles.
    while kt < kn {
        let mut j = 0usize;
        while j + LANES <= n {
            let mut acc = [0.0f32; LANES];
            for r in 0..rows {
                let av = a[r * k + k0 + kt];
                let b8 = &b[r * n + j..r * n + j + LANES];
                for l in 0..LANES {
                    acc[l] = fmadd(av, b8[l], acc[l]);
                }
            }
            chunk[kt * n + j..kt * n + j + LANES].copy_from_slice(&acc);
            j += LANES;
        }
        while j < n {
            let mut acc = 0.0f32;
            for r in 0..rows {
                acc = fmadd(a[r * k + k0 + kt], b[r * n + j], acc);
            }
            chunk[kt * n + j] = acc;
            j += 1;
        }
        kt += 1;
    }
}

/// Sparse column-chunk kernel for `aᵀ @ b` (the seed kernel): streams
/// `b` rows and skips zero `a` entries. Accumulates into `chunk`, which
/// must be pre-zeroed. Per element the sum runs over `r` ascending.
// spp-hot(kernel.t_matmul_sparse)
pub fn t_matmul_cols_sparse(
    a: &[f32],
    k: usize,
    b: &[f32],
    n: usize,
    rows: usize,
    k0: usize,
    chunk: &mut [f32],
) {
    debug_assert_eq!(a.len(), rows * k, "a shape mismatch");
    debug_assert_eq!(b.len(), rows * n, "b shape mismatch");
    for r in 0..rows {
        let b_row = &b[r * n..r * n + n];
        for (ki, out_row) in chunk.chunks_mut(n.max(1)).enumerate() {
            let av = a[r * k + k0 + ki];
            if av == 0.0 {
                continue;
            }
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o = fmadd(av, bv, *o);
            }
        }
    }
}

// ---------------------------------------------------------------------
// matmul_t: out[i][j] = dot(a_row_i, b_row_j)
// ---------------------------------------------------------------------

/// Dense row kernel for `a @ bᵀ`: computes `chunk.len() / b_rows`
/// output rows into `chunk`, where `a_rows` holds the matching rows of
/// `a` and `b` is `b_rows × k` row-major. Each element is a
/// lane-partitioned dot product ([`dot_blocked`]).
// spp-hot(kernel.matmul_t_dense)
pub fn matmul_t_rows_dense(a_rows: &[f32], k: usize, b: &[f32], b_rows: usize, chunk: &mut [f32]) {
    debug_assert_eq!(b.len(), b_rows * k, "b shape mismatch");
    let kv = k - k % LANES;
    for (a_row, out_row) in a_rows
        .chunks_exact(k.max(1))
        .zip(chunk.chunks_mut(b_rows.max(1)))
    {
        // Four dots at a time: the `a` row vector is loaded once per
        // 8-lane step and feeds four independent accumulator sets, each
        // of which reduces exactly like [`dot_blocked`] (same fixed
        // pairwise tree, same ascending tail) — bit-identical per
        // element to the one-dot-at-a-time path below.
        let mut j = 0usize;
        while j + MT_J_TILE <= b_rows {
            let mut acc = [[0.0f32; LANES]; MT_J_TILE];
            matmul_t_tile(a_row, b, k, j, kv, &mut acc);
            for (t, a8) in acc.iter().enumerate() {
                let mut sum =
                    ((a8[0] + a8[1]) + (a8[2] + a8[3])) + ((a8[4] + a8[5]) + (a8[6] + a8[7]));
                for p in kv..k {
                    sum = fmadd(a_row[p], b[(j + t) * k + p], sum);
                }
                out_row[j + t] = sum;
            }
            j += MT_J_TILE;
        }
        while j < b_rows {
            out_row[j] = dot_blocked(a_row, &b[j * k..j * k + k]);
            j += 1;
        }
    }
}

/// Vector body of the `matmul_t` tile: accumulates the first `kv`
/// (a multiple of `LANES`) elements of four dot products — `a_row`
/// against `b` rows `j .. j + MT_J_TILE` — into `acc`, lane-partitioned
/// exactly like [`dot_blocked`]. Deliberately *not* inlined: with the
/// callers' horizontal reduction visible in the same function, the SLP
/// vectorizer packs the accumulators across the `t` axis (a shuffle per
/// step and a stack spill per accumulator); kept opaque, the lane loops
/// lower to one vector FMA per dot with no shuffles, and the call cost
/// is amortized over the whole `kv` loop.
#[inline(never)]
fn matmul_t_tile(
    a_row: &[f32],
    b: &[f32],
    k: usize,
    j: usize,
    kv: usize,
    acc: &mut [[f32; LANES]; MT_J_TILE],
) {
    let mut p = 0usize;
    while p < kv {
        let x8 = &a_row[p..p + LANES];
        for t in 0..MT_J_TILE {
            let y8 = &b[(j + t) * k + p..(j + t) * k + p + LANES];
            for l in 0..LANES {
                acc[t][l] = fmadd(x8[l], y8[l], acc[t][l]);
            }
        }
        p += LANES;
    }
}

/// Lane-partitioned dot product: `k` is split into 8-lane chunks with
/// one accumulator per lane (breaking the serial FP dependency chain the
/// scalar loop suffers from), the lanes are combined in a fixed pairwise
/// reduction tree, and the scalar tail is appended in ascending order.
/// The association is a pure function of `k` — deterministic for a given
/// shape, independent of callers and worker counts.
#[inline]
pub fn dot_blocked(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut acc = [0.0f32; LANES];
    let x_chunks = x.chunks_exact(LANES);
    let y_chunks = y.chunks_exact(LANES);
    let x_tail = x_chunks.remainder();
    let y_tail = y_chunks.remainder();
    for (x8, y8) in x_chunks.zip(y_chunks) {
        for l in 0..LANES {
            acc[l] = fmadd(x8[l], y8[l], acc[l]);
        }
    }
    let mut sum = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (&xv, &yv) in x_tail.iter().zip(y_tail) {
        sum = fmadd(xv, yv, sum);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference scalar ikj kernel without zero-skipping: the dense
    /// blocked kernel must match it bit-for-bit (same per-element
    /// accumulation order, same [`fmadd`] step).
    fn matmul_scalar(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; rows * n];
        for i in 0..rows {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    out[i * n + j] = fmadd(av, b[kk * n + j], out[i * n + j]);
                }
            }
        }
        out
    }

    fn fractious(len: usize, salt: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                ((i as u32).wrapping_mul(2_654_435_761).wrapping_add(salt) % 97) as f32 / 3.0 - 16.0
            })
            .collect()
    }

    #[test]
    fn dense_matmul_matches_scalar_bitwise_over_awkward_shapes() {
        for (rows, k, n) in [
            (3, 5, 1),
            (4, 7, 8),
            (2, 9, 31),
            (5, 16, 32),
            (3, 11, 45),
            (6, 1, 37),
        ] {
            let a = fractious(rows * k, 1);
            let b = fractious(k * n, 2);
            let mut out = vec![0.0f32; rows * n];
            matmul_rows_dense(&a, k, &b, n, &mut out);
            assert_eq!(out, matmul_scalar(&a, rows, k, &b, n), "{rows}x{k}x{n}");
        }
    }

    #[test]
    fn dense_t_matmul_matches_r_ascending_scalar_bitwise() {
        for (rows, k, n) in [(9, 5, 3), (16, 4, 8), (21, 13, 19), (40, 1, 9), (7, 6, 1)] {
            let a = fractious(rows * k, 3);
            let b = fractious(rows * n, 4);
            let mut reference = vec![0.0f32; k * n];
            for r in 0..rows {
                for kk in 0..k {
                    let av = a[r * k + kk];
                    for j in 0..n {
                        reference[kk * n + j] = fmadd(av, b[r * n + j], reference[kk * n + j]);
                    }
                }
            }
            let mut out = vec![0.0f32; k * n];
            t_matmul_cols_dense(&a, k, &b, n, rows, 0, &mut out);
            assert_eq!(out, reference, "{rows}x{k}x{n}");
        }
    }

    #[test]
    fn t_matmul_column_splits_are_bit_identical() {
        let (rows, k, n) = (33, 14, 10);
        let a = fractious(rows * k, 5);
        let b = fractious(rows * n, 6);
        let mut whole = vec![0.0f32; k * n];
        t_matmul_cols_dense(&a, k, &b, n, rows, 0, &mut whole);
        for split in [1usize, 3, 5, 13] {
            let mut pieced = vec![0.0f32; k * n];
            let mut k0 = 0usize;
            while k0 < k {
                let kn = split.min(k - k0);
                t_matmul_cols_dense(&a, k, &b, n, rows, k0, &mut pieced[k0 * n..(k0 + kn) * n]);
                k0 += kn;
            }
            assert_eq!(pieced, whole, "split={split}");
        }
    }

    #[test]
    fn sparse_kernels_match_dense_on_shared_support() {
        // On inputs with no zeros (and no signed-zero/NaN corners) the
        // skip branch never fires, so sparse must equal dense bitwise.
        let (rows, k, n) = (6, 19, 23);
        let a: Vec<f32> = fractious(rows * k, 7).iter().map(|v| v + 100.0).collect();
        let b = fractious(k * n, 8);
        let mut dense = vec![0.0f32; rows * n];
        let mut sparse = vec![0.0f32; rows * n];
        matmul_rows_dense(&a, k, &b, n, &mut dense);
        matmul_rows_sparse(&a, k, &b, n, &mut sparse);
        assert_eq!(dense, sparse);

        let b2 = fractious(rows * n, 9);
        let mut td = vec![0.0f32; k * n];
        let mut ts = vec![0.0f32; k * n];
        t_matmul_cols_dense(&a, k, &b2, n, rows, 0, &mut td);
        t_matmul_cols_sparse(&a, k, &b2, n, rows, 0, &mut ts);
        assert_eq!(td, ts);
    }

    #[test]
    fn dot_blocked_is_shape_deterministic_and_close_to_serial() {
        for len in [0usize, 1, 7, 8, 9, 16, 63, 64, 200] {
            let x = fractious(len, 10);
            let y = fractious(len, 11);
            let serial: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let blocked = dot_blocked(&x, &y);
            assert_eq!(blocked, dot_blocked(&x, &y), "len={len} not deterministic");
            let scale = 1.0 + serial.abs();
            assert!(
                (blocked - serial).abs() / scale < 1e-4,
                "len={len}: {blocked} vs {serial}"
            );
        }
    }

    #[test]
    fn matmul_t_rows_dense_matches_dot() {
        let (rows, k, bn) = (5, 37, 9);
        let a = fractious(rows * k, 12);
        let b = fractious(bn * k, 13);
        let mut out = vec![0.0f32; rows * bn];
        matmul_t_rows_dense(&a, k, &b, bn, &mut out);
        for i in 0..rows {
            for j in 0..bn {
                assert_eq!(
                    out[i * bn + j],
                    dot_blocked(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k])
                );
            }
        }
    }
}
