//! Row-major dense `f32` matrices and their raw (non-autograd) kernels.
//!
//! Large products run on the workspace worker pool
//! ([`spp_pool::WorkerPool`]): the output is split into row blocks whose
//! boundaries depend only on the shapes (never on timing), each block is
//! computed by the same serial kernel, and blocks land in disjoint
//! regions of the output buffer — so results are bit-identical to the
//! serial kernels for any worker count. Whether a product parallelizes
//! at all is decided by the pool's single sizing policy
//! (`jobs_for_cost`), not per-call-site thresholds.

use crate::kernels;
use spp_pool::{even_ranges, WorkerPool};

/// Caller-declared sparsity hint for the left/transposed operand of a
/// product. [`Sparsity::Dense`] (the default everywhere) routes to the
/// branch-free register-blocked kernels in [`crate::kernels`];
/// [`Sparsity::Sparse`] keeps the zero-skipping row kernels, which only
/// pay off when most entries of the declared operand are exact zeros
/// (masked or one-hot operands). The two paths differ in FP terms only
/// where skipping a `0.0 · x` term differs from adding it (signed
/// zeros, non-finite values).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Sparsity {
    /// Operand is dense (or dense enough): branch-free blocked kernel.
    #[default]
    Dense,
    /// Operand is mostly exact zeros: zero-skipping kernel.
    Sparse,
}

/// A row-major dense `f32` matrix.
///
/// # Example
///
/// ```
/// use spp_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            // spp-hot: alloc(fresh output buffer; hot callers reuse one via the *_into kernels)
            data: vec![0.0; rows * cols],
        }
    }

    /// A 0×0 matrix whose buffer is never allocated: the shape-only
    /// constructor the `*_with` wrappers seed their output with, so the
    /// single allocation happens inside [`Matrix::reset`] at the final
    /// size (a `Vec::new` never touches the heap).
    pub fn empty() -> Self {
        Self {
            rows: 0,
            cols: 0,
            data: Vec::new(), // spp-hot: alloc(capacity-0 Vec::new never touches the heap; pinned by tests/alloc_count.rs)
        }
    }

    /// Reshapes `self` to `rows x cols` and zero-fills, reusing the
    /// existing buffer. Allocation-free once the buffer has grown to
    /// the steady-state shape (`resize` only allocates on growth), so
    /// per-batch kernels that route through the `*_into` variants stop
    /// paying one heap allocation per call.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// The flat row-major buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn as_flat_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self @ other` with an ikj loop order (streams the
    /// output row, cache-friendly for row-major data), on the global
    /// worker pool.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.matmul_with(WorkerPool::global(), other)
    }

    /// [`Matrix::matmul`] on an explicit pool. Output row blocks are a
    /// pure function of the shapes and the result is bit-identical to
    /// the serial kernel for any worker count.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    // spp-hot(tensor.matmul)
    pub fn matmul_with(&self, pool: WorkerPool, other: &Matrix) -> Matrix {
        let mut out = Matrix::empty();
        self.matmul_into(pool, other, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a caller-provided scratch matrix, which
    /// is reshaped with [`Matrix::reset`] (allocation-free once its
    /// buffer has grown). Bit-identical to [`Matrix::matmul_with`].
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_into(&self, pool: WorkerPool, other: &Matrix, out: &mut Matrix) {
        self.matmul_into_hinted(pool, other, out, Sparsity::Dense);
    }

    /// [`Matrix::matmul_into`] with a caller-declared [`Sparsity`] hint
    /// for `self`: `Dense` uses the register-blocked kernel
    /// ([`kernels::matmul_rows_dense`]), `Sparse` the zero-skipping one.
    /// Either way the result is bit-identical across worker counts.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_into_hinted(
        &self,
        pool: WorkerPool,
        other: &Matrix,
        out: &mut Matrix,
        sparsity: Sparsity,
    ) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        out.reset(self.rows, other.cols);
        let flops = (self.rows * self.cols * other.cols) as u64;
        let jobs = pool.jobs_for_cost(flops).min(self.rows.max(1));
        let out_cols = other.cols;
        if jobs <= 1 {
            Self::matmul_rows(self, other, 0, &mut out.data, sparsity);
            return;
        }
        let cuts: Vec<usize> = even_ranges(self.rows, jobs)
            .iter()
            .map(|r| r.end * out_cols)
            .collect(); // spp-hot: alloc(job-cut table, one word per job; bounded by pool width)
        pool.par_chunks(&mut out.data, &cuts, |_, offset, chunk| {
            Self::matmul_rows(self, other, offset / out_cols, chunk, sparsity);
        });
    }

    /// Computes output rows `row0..row0 + chunk.len()/other.cols` into
    /// `chunk` (a row-major slice of the output), dispatching on the
    /// sparsity hint.
    fn matmul_rows(a: &Matrix, b: &Matrix, row0: usize, chunk: &mut [f32], sparsity: Sparsity) {
        let k = a.cols;
        let n = b.cols;
        let rows = chunk.len().checked_div(n).unwrap_or(0);
        let a_rows = &a.data[row0 * k..(row0 + rows) * k];
        match sparsity {
            Sparsity::Dense => kernels::matmul_rows_dense(a_rows, k, &b.data, n, chunk),
            Sparsity::Sparse => kernels::matmul_rows_sparse(a_rows, k, &b.data, n, chunk),
        }
    }

    /// `selfᵀ @ other` without materializing the transpose, on the
    /// global worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        self.t_matmul_with(WorkerPool::global(), other)
    }

    /// [`Matrix::t_matmul`] on an explicit pool.
    ///
    /// Every output element `out[k][j] = Σ_r self[r][k]·other[r][j]`
    /// accumulates over `r` ascending in both the serial (r-outer,
    /// streaming) and parallel (k-outer, per-output-row) loop orders, so
    /// the two are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    // spp-hot(tensor.t_matmul)
    pub fn t_matmul_with(&self, pool: WorkerPool, other: &Matrix) -> Matrix {
        let mut out = Matrix::empty();
        self.t_matmul_into(pool, other, &mut out);
        out
    }

    /// [`Matrix::t_matmul`] into a caller-provided scratch matrix
    /// (reshaped via [`Matrix::reset`]); bit-identical to
    /// [`Matrix::t_matmul_with`].
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn t_matmul_into(&self, pool: WorkerPool, other: &Matrix, out: &mut Matrix) {
        self.t_matmul_into_hinted(pool, other, out, Sparsity::Dense);
    }

    /// [`Matrix::t_matmul_into`] with a caller-declared [`Sparsity`]
    /// hint for `self`. Serial and parallel paths run the *same* kernel
    /// over column ranges, so any worker count is bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn t_matmul_into_hinted(
        &self,
        pool: WorkerPool,
        other: &Matrix,
        out: &mut Matrix,
        sparsity: Sparsity,
    ) {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        out.reset(self.cols, other.cols);
        let flops = (self.rows * self.cols * other.cols) as u64;
        let jobs = pool.jobs_for_cost(flops).min(self.cols.max(1));
        let out_cols = other.cols;
        if jobs <= 1 {
            Self::t_matmul_cols(self, other, 0, &mut out.data, sparsity);
            return;
        }
        let cuts: Vec<usize> = even_ranges(self.cols, jobs)
            .iter()
            .map(|r| r.end * out_cols)
            .collect(); // spp-hot: alloc(job-cut table, one word per job; bounded by pool width)
        pool.par_chunks(&mut out.data, &cuts, |_, offset, chunk| {
            Self::t_matmul_cols(self, other, offset / out_cols, chunk, sparsity);
        });
    }

    /// Computes output rows `k0..k0 + chunk.len()/other.cols` of
    /// `selfᵀ @ other` into `chunk`, dispatching on the sparsity hint.
    fn t_matmul_cols(a: &Matrix, b: &Matrix, k0: usize, chunk: &mut [f32], sparsity: Sparsity) {
        match sparsity {
            Sparsity::Dense => {
                kernels::t_matmul_cols_dense(&a.data, a.cols, &b.data, b.cols, a.rows, k0, chunk)
            }
            Sparsity::Sparse => {
                kernels::t_matmul_cols_sparse(&a.data, a.cols, &b.data, b.cols, a.rows, k0, chunk)
            }
        }
    }

    /// `self @ otherᵀ` without materializing the transpose, on the
    /// global worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        self.matmul_t_with(WorkerPool::global(), other)
    }

    /// [`Matrix::matmul_t`] on an explicit pool; output rows are
    /// independent dot products, so any row split is bit-identical to
    /// the serial loop.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    // spp-hot(tensor.matmul_t)
    pub fn matmul_t_with(&self, pool: WorkerPool, other: &Matrix) -> Matrix {
        let mut out = Matrix::empty();
        self.matmul_t_into(pool, other, &mut out);
        out
    }

    /// [`Matrix::matmul_t`] into a caller-provided scratch matrix
    /// (reshaped via [`Matrix::reset`]); bit-identical to
    /// [`Matrix::matmul_t_with`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t_into(&self, pool: WorkerPool, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        out.reset(self.rows, other.rows);
        if out.data.is_empty() {
            return;
        }
        let flops = (self.rows * self.cols * other.rows) as u64;
        let jobs = pool.jobs_for_cost(flops).min(self.rows.max(1));
        let out_cols = other.rows;
        let cuts: Vec<usize> = even_ranges(self.rows, jobs)
            .iter()
            .map(|r| r.end * out_cols)
            .collect(); // spp-hot: alloc(job-cut table, one word per job; bounded by pool width)
        pool.par_chunks(&mut out.data, &cuts, |_, offset, chunk| {
            let i0 = offset / out_cols;
            let rows = chunk.len() / out_cols;
            let a_rows = &self.data[i0 * self.cols..(i0 + rows) * self.cols];
            kernels::matmul_t_rows_dense(a_rows, self.cols, &other.data, other.rows, chunk);
        });
    }

    /// Materialized transpose, on the global worker pool.
    pub fn transpose(&self) -> Matrix {
        self.transpose_with(WorkerPool::global())
    }

    /// [`Matrix::transpose`] on an explicit pool; a pure permutation,
    /// split by output rows.
    pub fn transpose_with(&self, pool: WorkerPool) -> Matrix {
        let mut out = Matrix::empty();
        self.transpose_into(pool, &mut out);
        out
    }

    /// [`Matrix::transpose`] into a caller-provided scratch matrix
    /// (reshaped via [`Matrix::reset`]); bit-identical to
    /// [`Matrix::transpose_with`].
    pub fn transpose_into(&self, pool: WorkerPool, out: &mut Matrix) {
        out.reset(self.cols, self.rows);
        if out.data.is_empty() {
            return;
        }
        // Memory-bound: count ~4 units per element moved so transposes
        // parallelize at roughly the same byte volume as products.
        let jobs = pool
            .jobs_for_cost(4 * (self.rows * self.cols) as u64)
            .min(self.cols.max(1));
        let out_cols = self.rows;
        let cuts: Vec<usize> = even_ranges(self.cols, jobs)
            .iter()
            .map(|r| r.end * out_cols)
            .collect(); // spp-hot: alloc(job-cut table, one word per job; bounded by pool width)
        pool.par_chunks(&mut out.data, &cuts, |_, offset, chunk| {
            let j0 = offset / out_cols;
            for (ji, out_row) in chunk.chunks_mut(out_cols).enumerate() {
                let j = j0 + ji;
                for (i, o) in out_row.iter_mut().enumerate() {
                    *o = self.data[i * self.cols + j];
                }
            }
        });
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scale by a constant.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Returns the first `n` rows as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n > rows`.
    pub fn head_rows(&self, n: usize) -> Matrix {
        assert!(n <= self.rows, "head_rows out of range");
        Matrix::from_flat(n, self.cols, self.data[..n * self.cols].to_vec())
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix {}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_parallel_matches_serial() {
        // Big enough to cross the pool's per-job cost threshold.
        let r = 1200usize;
        let k = 96usize;
        let c = 96usize;
        let a = Matrix::from_flat(r, k, (0..r * k).map(|i| (i % 13) as f32 - 6.0).collect());
        let b = Matrix::from_flat(k, c, (0..k * c).map(|i| (i % 7) as f32 - 3.0).collect());
        let mut serial = Matrix::zeros(r, c);
        Matrix::matmul_rows(&a, &b, 0, serial.as_flat_mut(), Sparsity::Dense);
        for workers in [1usize, 2, 8] {
            let par = a.matmul_with(WorkerPool::new(workers), &b);
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn sparse_hint_bit_identical_across_pools_and_close_to_dense() {
        // A mostly-zero left operand: the declared-sparse path must be
        // deterministic across worker counts and agree with the dense
        // kernel on values (identical sums, possibly different bits only
        // for signed-zero corners, which this input avoids).
        let r = 900usize;
        let k = 64usize;
        let c = 48usize;
        let a = Matrix::from_flat(
            r,
            k,
            (0..r * k)
                .map(|i| {
                    if i % 7 == 0 {
                        (i % 13) as f32 / 3.0 + 1.0
                    } else {
                        0.0
                    }
                })
                .collect(),
        );
        let b = fractious(k, c, 21);
        let mut sparse_serial = Matrix::empty();
        a.matmul_into_hinted(
            WorkerPool::serial(),
            &b,
            &mut sparse_serial,
            Sparsity::Sparse,
        );
        for workers in [2usize, 8] {
            let mut par = Matrix::empty();
            a.matmul_into_hinted(WorkerPool::new(workers), &b, &mut par, Sparsity::Sparse);
            assert_eq!(par, sparse_serial, "workers={workers}");
        }
        assert_eq!(a.matmul(&b), sparse_serial);

        let d = fractious(r, c, 22);
        let mut t_sparse = Matrix::empty();
        a.t_matmul_into_hinted(WorkerPool::new(4), &d, &mut t_sparse, Sparsity::Sparse);
        assert_eq!(t_sparse, a.t_matmul(&d));
    }

    #[test]
    fn empty_never_allocates_and_resets_to_shape() {
        let m = Matrix::empty();
        assert_eq!(m.shape(), (0, 0));
        assert_eq!(m.data.capacity(), 0);
        let mut m = Matrix::empty();
        m.reset(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_flat().iter().all(|&x| x == 0.0));
    }

    /// Non-trivially-rounding values (1/3 scaled) so any change in
    /// accumulation order would show up at the bit level.
    fn fractious(rows: usize, cols: usize, salt: u32) -> Matrix {
        Matrix::from_flat(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| {
                    ((i as u32).wrapping_mul(2_654_435_761).wrapping_add(salt) % 97) as f32 / 3.0
                        - 16.0
                })
                .collect(),
        )
    }

    #[test]
    fn t_matmul_bit_identical_across_pools() {
        let a = fractious(600, 70, 1);
        let b = fractious(600, 50, 2);
        let serial = a.t_matmul_with(WorkerPool::serial(), &b);
        for workers in [2usize, 8] {
            assert_eq!(
                a.t_matmul_with(WorkerPool::new(workers), &b),
                serial,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn matmul_t_bit_identical_across_pools() {
        let a = fractious(400, 90, 3);
        let b = fractious(320, 90, 4);
        let serial = a.matmul_t_with(WorkerPool::serial(), &b);
        for workers in [2usize, 8] {
            assert_eq!(
                a.matmul_t_with(WorkerPool::new(workers), &b),
                serial,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn transpose_bit_identical_across_pools() {
        let a = fractious(700, 450, 5);
        let serial = a.transpose_with(WorkerPool::serial());
        assert_eq!(serial.shape(), (450, 700));
        for workers in [2usize, 8] {
            assert_eq!(a.transpose_with(WorkerPool::new(workers)), serial);
        }
        assert_eq!(serial.transpose(), a);
    }

    #[test]
    fn into_variants_reuse_scratch_bit_identically() {
        let a = fractious(600, 70, 6);
        let b = fractious(70, 50, 7);
        let c = fractious(600, 50, 8);
        let d = fractious(320, 70, 9);
        let pool = WorkerPool::new(4);
        let mut scratch = Matrix::zeros(1, 1);
        // Run each kernel twice through the same scratch: the second
        // pass must be bit-identical to the allocating variant even
        // though the buffer is dirty from the first.
        for _ in 0..2 {
            a.matmul_into(pool, &b, &mut scratch);
            assert_eq!(scratch, a.matmul_with(pool, &b));
            a.t_matmul_into(pool, &c, &mut scratch);
            assert_eq!(scratch, a.t_matmul_with(pool, &c));
            a.matmul_t_into(pool, &d, &mut scratch);
            assert_eq!(scratch, a.matmul_t_with(pool, &d));
            a.transpose_into(pool, &mut scratch);
            assert_eq!(scratch, a.transpose_with(pool));
        }
    }

    #[test]
    fn reset_reuses_capacity_without_reallocating() {
        let mut m = Matrix::zeros(10, 10);
        let cap = m.data.capacity();
        let ptr = m.data.as_ptr();
        m.reset(5, 8);
        assert_eq!(m.shape(), (5, 8));
        assert!(m.as_flat().iter().all(|&x| x == 0.0));
        assert_eq!(m.data.capacity(), cap);
        assert_eq!(m.data.as_ptr(), ptr);
    }

    #[test]
    fn zero_dimension_products_stay_empty() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(0, 5);
        assert_eq!(a.t_matmul(&b).shape(), (5, 5));
        assert_eq!(a.matmul_t(&b).shape(), (0, 0));
        assert_eq!(Matrix::zeros(4, 0).transpose().shape(), (0, 4));
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_checks_dims() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.5, -2.0], &[0.0, 3.0]]);
        assert_eq!(a.matmul(&Matrix::eye(2)), a);
        assert_eq!(Matrix::eye(2).matmul(&a), a);
    }

    #[test]
    fn head_rows_takes_prefix() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(a.head_rows(2), Matrix::from_rows(&[&[1.0], &[2.0]]));
    }

    #[test]
    fn norm_and_sum() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.sum(), 7.0);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]);
        a.add_assign(&Matrix::from_rows(&[&[3.0, 4.0]]));
        a.scale_assign(0.5);
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 3.0]]));
    }
}
