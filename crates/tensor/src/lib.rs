//! A small dense-tensor and autograd engine.
//!
//! The paper's system trains GNNs with PyTorch; this crate is the
//! substitute substrate (DESIGN.md §2): row-major `f32` matrices
//! ([`Matrix`]), a tape-based reverse-mode autograd graph ([`Tape`]) with
//! the dense and sparse (CSR aggregation, edge softmax) operators that
//! GraphSAGE/GIN/GAT require, weight [`init`]ializers, and [`optim`]izers
//! (Adam, SGD).
//!
//! # Example
//!
//! ```
//! use spp_tensor::{Matrix, Tape};
//!
//! let mut tape = Tape::new();
//! let x = tape.input(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
//! let w = tape.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
//! let y = tape.matmul(x, w);
//! let loss = tape.mean_all(y);
//! tape.backward(loss);
//! let gw = tape.grad(w).unwrap();
//! assert_eq!(gw.shape(), (2, 1));
//! ```

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

pub mod init;
pub mod kernels;
pub mod matrix;
pub mod optim;
pub mod tape;

pub use matrix::{Matrix, Sparsity};
pub use optim::{Adam, Optimizer, Param, Sgd};
pub use tape::{NodeId, Tape};
