//! Parameters and optimizers.

use crate::Matrix;

/// A trainable parameter: value plus accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current parameter value.
    pub value: Matrix,
    /// Accumulated gradient (zeroed by the optimizer after each step).
    pub grad: Matrix,
}

impl Param {
    /// Wraps an initial value with a zero gradient.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = value.shape();
        Self {
            value,
            grad: Matrix::zeros(r, c),
        }
    }

    /// Adds `g` into the accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate(&mut self, g: &Matrix) {
        self.grad.add_assign(g);
    }

    /// Zeroes the gradient.
    pub fn zero_grad(&mut self) {
        self.grad.scale_assign(0.0);
    }
}

/// A first-order optimizer updating a set of [`Param`]s in place.
pub trait Optimizer {
    /// Applies one update step using each parameter's accumulated gradient,
    /// then zeroes the gradients.
    fn step(&mut self, params: &mut [&mut Param]);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds momentum.
    pub fn momentum(mut self, m: f32) -> Self {
        self.momentum = m;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| {
                    let (r, c) = p.value.shape();
                    Matrix::zeros(r, c)
                })
                .collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            for ((w, &g), vel) in p
                .value
                .as_flat_mut()
                .iter_mut()
                .zip(p.grad.as_flat())
                .zip(v.as_flat_mut())
            {
                *vel = self.momentum * *vel + g;
                *w -= self.lr * *vel;
            }
            p.zero_grad();
        }
    }
}

/// Adam (Kingma & Ba, 2015), the optimizer used by the paper's accuracy
/// experiments (fixed learning rate 0.001).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with standard betas `(0.9, 0.999)` and `eps = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            let zeros = |p: &Param| {
                let (r, c) = p.value.shape();
                Matrix::zeros(r, c)
            };
            self.m = params.iter().map(|p| zeros(p)).collect();
            self.v = params.iter().map(|p| zeros(p)).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            for (((w, &g), mm), vv) in p
                .value
                .as_flat_mut()
                .iter_mut()
                .zip(p.grad.as_flat())
                .zip(m.as_flat_mut())
                .zip(v.as_flat_mut())
            {
                *mm = self.beta1 * *mm + (1.0 - self.beta1) * g;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
                let mhat = *mm / bc1;
                let vhat = *vv / bc2;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(w) = (w - 3)^2 must converge to w = 3.
    fn converges<O: Optimizer>(mut opt: O, iters: usize) -> f32 {
        let mut p = Param::new(Matrix::from_rows(&[&[0.0f32]]));
        for _ in 0..iters {
            let w = p.value.get(0, 0);
            p.grad = Matrix::from_rows(&[&[2.0 * (w - 3.0)]]);
            opt.step(&mut [&mut p]);
        }
        p.value.get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = converges(Sgd::new(0.1), 200);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = converges(Sgd::new(0.05).momentum(0.9), 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = converges(Adam::new(0.1), 500);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = Param::new(Matrix::from_rows(&[&[1.0]]));
        p.grad = Matrix::from_rows(&[&[5.0]]);
        Sgd::new(0.1).step(&mut [&mut p]);
        assert_eq!(p.grad.get(0, 0), 0.0);
    }

    #[test]
    fn accumulate_adds() {
        let mut p = Param::new(Matrix::from_rows(&[&[0.0]]));
        p.accumulate(&Matrix::from_rows(&[&[1.0]]));
        p.accumulate(&Matrix::from_rows(&[&[2.0]]));
        assert_eq!(p.grad.get(0, 0), 3.0);
    }
}
