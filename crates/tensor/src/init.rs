//! Weight initializers.

use crate::Matrix;
use rand::Rng;

/// Glorot/Xavier uniform initialization: entries drawn from
/// `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`. The default for
/// GraphSAGE linear layers.
pub fn glorot_uniform<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let mut m = Matrix::zeros(fan_in, fan_out);
    for v in m.as_flat_mut() {
        *v = rng.gen::<f32>() * 2.0 * a - a;
    }
    m
}

/// Kaiming/He uniform initialization for ReLU networks:
/// `U(-a, a)` with `a = sqrt(6 / fan_in)`.
pub fn kaiming_uniform<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    let a = (6.0 / fan_in as f32).sqrt();
    let mut m = Matrix::zeros(fan_in, fan_out);
    for v in m.as_flat_mut() {
        *v = rng.gen::<f32>() * 2.0 * a - a;
    }
    m
}

/// Zero-initialized `1×n` bias row.
pub fn zeros_bias(n: usize) -> Matrix {
    Matrix::zeros(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn glorot_within_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = glorot_uniform(64, 32, &mut rng);
        let a = (6.0f32 / 96.0).sqrt();
        assert!(m.as_flat().iter().all(|&v| v.abs() <= a));
        // Not all zeros.
        assert!(m.norm() > 0.0);
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = kaiming_uniform(6, 10, &mut rng);
        let a = 1.0f32; // sqrt(6/6)
        assert!(m.as_flat().iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn bias_is_zero_row() {
        let b = zeros_bias(5);
        assert_eq!(b.shape(), (1, 5));
        assert_eq!(b.sum(), 0.0);
    }
}
