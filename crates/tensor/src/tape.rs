//! Tape-based reverse-mode automatic differentiation.

use crate::Matrix;
use rand::Rng;
use std::sync::Arc;

/// Handle to a node in a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// A sampled-adjacency view shared by the sparse GNN operators: a CSR over
/// *local* indices, mapping `num_targets` aggregating rows to
/// `num_sources` input rows. Mirrors `spp_sampler::HopAdj` without a
/// crate dependency (the GNN crate converts between them).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrAdj {
    /// Number of output (aggregating) rows.
    pub num_targets: usize,
    /// Number of input rows.
    pub num_sources: usize,
    /// CSR row pointers (`num_targets + 1` entries).
    pub row_ptr: Vec<usize>,
    /// Local source indices, all `< num_sources`.
    pub col: Vec<u32>,
}

impl CsrAdj {
    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.col.len()
    }
}

/// Aggregation mode for [`Tape::sparse_agg`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggMode {
    /// Mean over sampled neighbors (GraphSAGE). Targets with no sampled
    /// neighbors produce a zero row.
    Mean,
    /// Sum over sampled neighbors (GIN).
    Sum,
    /// Element-wise max over sampled neighbors (GraphSAGE's pooling
    /// aggregator). Targets with no sampled neighbors produce a zero row.
    Max,
}

#[derive(Debug)]
enum Op {
    Leaf,
    MatMul(NodeId, NodeId),
    Add(NodeId, NodeId),
    AddBias(NodeId, NodeId),
    Relu(NodeId),
    LeakyRelu(NodeId, f32),
    Scale(NodeId, f32),
    ConcatCols(NodeId, NodeId),
    HeadRows(NodeId),
    Dropout(NodeId, Vec<f32>),
    SparseAgg {
        x: NodeId,
        adj: Arc<CsrAdj>,
        mode: AggMode,
    },
    EdgeScores {
        target: NodeId,
        source: NodeId,
        adj: Arc<CsrAdj>,
    },
    EdgeSoftmax {
        e: NodeId,
        adj: Arc<CsrAdj>,
    },
    WeightedAgg {
        w: NodeId,
        x: NodeId,
        adj: Arc<CsrAdj>,
    },
    MeanAll(NodeId),
    SoftmaxCrossEntropy {
        logits: NodeId,
        labels: Arc<Vec<u32>>,
        probs: Matrix,
    },
}

struct Node {
    op: Op,
    value: Matrix,
    grad: Option<Matrix>,
}

/// A computation tape: build the forward graph with the op methods, then
/// call [`Tape::backward`] on a scalar node and read gradients with
/// [`Tape::grad`].
///
/// # Example
///
/// ```
/// use spp_tensor::{Matrix, Tape};
///
/// let mut t = Tape::new();
/// let x = t.input(Matrix::from_rows(&[&[-1.0, 2.0]]));
/// let y = t.relu(x);
/// let s = t.mean_all(y);
/// t.backward(s);
/// assert_eq!(t.grad(x).unwrap().as_flat(), &[0.0, 0.5]);
/// ```
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    fn push(&mut self, op: Op, value: Matrix) -> NodeId {
        self.nodes.push(Node {
            op,
            value,
            grad: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Registers a leaf input (data or parameter) and returns its handle.
    pub fn input(&mut self, value: Matrix) -> NodeId {
        self.push(Op::Leaf, value)
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// The gradient of a node after [`Tape::backward`], if it received one.
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.nodes[id.0].grad.as_ref()
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// Element-wise sum (same shape).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut v = self.value(a).clone();
        v.add_assign(self.value(b));
        self.push(Op::Add(a, b), v)
    }

    /// Adds a `1×c` bias row to every row of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1×c` with `c == x.cols()`.
    pub fn add_bias(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let (rows, cols) = self.value(x).shape();
        assert_eq!(self.value(bias).shape(), (1, cols), "bias shape mismatch");
        let mut v = self.value(x).clone();
        let b = &self.nodes[bias.0].value;
        for i in 0..rows {
            for (o, &bb) in v.row_mut(i).iter_mut().zip(b.row(0)) {
                *o += bb;
            }
        }
        self.push(Op::AddBias(x, bias), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let mut v = self.value(x).clone();
        for a in v.as_flat_mut() {
            if *a < 0.0 {
                *a = 0.0;
            }
        }
        self.push(Op::Relu(x), v)
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&mut self, x: NodeId, slope: f32) -> NodeId {
        let mut v = self.value(x).clone();
        for a in v.as_flat_mut() {
            if *a < 0.0 {
                *a *= slope;
            }
        }
        self.push(Op::LeakyRelu(x, slope), v)
    }

    /// Multiplies by a constant.
    pub fn scale(&mut self, x: NodeId, s: f32) -> NodeId {
        let mut v = self.value(x).clone();
        v.scale_assign(s);
        self.push(Op::Scale(x, s), v)
    }

    /// Column-wise concatenation `[a | b]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (ra, ca) = self.value(a).shape();
        let (rb, cb) = self.value(b).shape();
        assert_eq!(ra, rb, "concat_cols row mismatch");
        let mut v = Matrix::zeros(ra, ca + cb);
        for i in 0..ra {
            v.row_mut(i)[..ca].copy_from_slice(self.nodes[a.0].value.row(i));
            v.row_mut(i)[ca..].copy_from_slice(self.nodes[b.0].value.row(i));
        }
        self.push(Op::ConcatCols(a, b), v)
    }

    /// Takes the first `n` rows (targets are a prefix of sources in MFGs).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the row count.
    pub fn head_rows(&mut self, x: NodeId, n: usize) -> NodeId {
        let v = self.value(x).head_rows(n);
        self.push(Op::HeadRows(x), v)
    }

    /// Inverted dropout with keep probability `1 - p`, scaling kept
    /// activations by `1/(1-p)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn dropout<R: Rng>(&mut self, x: NodeId, p: f32, rng: &mut R) -> NodeId {
        assert!((0.0..1.0).contains(&p), "dropout probability out of range");
        let keep = 1.0 - p;
        let mask: Vec<f32> = (0..self.value(x).as_flat().len())
            .map(|_| {
                if rng.gen::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let mut v = self.value(x).clone();
        for (a, &m) in v.as_flat_mut().iter_mut().zip(&mask) {
            *a *= m;
        }
        self.push(Op::Dropout(x, mask), v)
    }

    /// Neighborhood aggregation over a sampled adjacency: row `t` of the
    /// output is the mean (or sum) of `x`'s rows listed in `adj` for `t`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has fewer rows than `adj.num_sources`.
    pub fn sparse_agg(&mut self, x: NodeId, adj: Arc<CsrAdj>, mode: AggMode) -> NodeId {
        let xv = self.value(x);
        assert!(
            xv.rows() >= adj.num_sources,
            "input rows {} < adjacency sources {}",
            xv.rows(),
            adj.num_sources
        );
        let d = xv.cols();
        let mut v = Matrix::zeros(adj.num_targets, d);
        for t in 0..adj.num_targets {
            let (lo, hi) = (adj.row_ptr[t], adj.row_ptr[t + 1]);
            if lo == hi {
                continue;
            }
            if mode == AggMode::Max {
                let out = v.row_mut(t);
                for o in out.iter_mut() {
                    *o = f32::NEG_INFINITY;
                }
                for &s in &adj.col[lo..hi] {
                    let src = self.nodes[x.0].value.row(s as usize);
                    for (o, &a) in v.row_mut(t).iter_mut().zip(src) {
                        if a > *o {
                            *o = a;
                        }
                    }
                }
                continue;
            }
            let out = v.row_mut(t);
            for &s in &adj.col[lo..hi] {
                let src = self.nodes[x.0].value.row(s as usize);
                for (o, &a) in out.iter_mut().zip(src) {
                    *o += a;
                }
            }
            if mode == AggMode::Mean {
                let inv = 1.0 / (hi - lo) as f32;
                for o in v.row_mut(t) {
                    *o *= inv;
                }
            }
        }
        self.push(Op::SparseAgg { x, adj, mode }, v)
    }

    /// Per-edge attention logits `e_k = target_score[t_k] + source_score[s_k]`
    /// (GAT's additive attention), producing an `(edges × 1)` node.
    ///
    /// # Panics
    ///
    /// Panics if the score vectors are not single-column with enough rows.
    pub fn edge_scores(&mut self, target: NodeId, source: NodeId, adj: Arc<CsrAdj>) -> NodeId {
        assert_eq!(
            self.value(target).cols(),
            1,
            "target scores must be a column"
        );
        assert_eq!(
            self.value(source).cols(),
            1,
            "source scores must be a column"
        );
        assert!(self.value(target).rows() >= adj.num_targets);
        assert!(self.value(source).rows() >= adj.num_sources);
        let mut v = Matrix::zeros(adj.num_edges(), 1);
        let mut k = 0usize;
        for t in 0..adj.num_targets {
            let ts = self.nodes[target.0].value.get(t, 0);
            for &s in &adj.col[adj.row_ptr[t]..adj.row_ptr[t + 1]] {
                let val = ts + self.nodes[source.0].value.get(s as usize, 0);
                v.set(k, 0, val);
                k += 1;
            }
        }
        self.push(
            Op::EdgeScores {
                target,
                source,
                adj,
            },
            v,
        )
    }

    /// Softmax of per-edge logits within each target's edge group.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not `(edges × 1)`.
    pub fn edge_softmax(&mut self, e: NodeId, adj: Arc<CsrAdj>) -> NodeId {
        assert_eq!(
            self.value(e).shape(),
            (adj.num_edges(), 1),
            "edge vector shape mismatch"
        );
        let mut v = self.value(e).clone();
        for t in 0..adj.num_targets {
            let (lo, hi) = (adj.row_ptr[t], adj.row_ptr[t + 1]);
            if lo == hi {
                continue;
            }
            let mut mx = f32::NEG_INFINITY;
            for k in lo..hi {
                mx = mx.max(v.get(k, 0));
            }
            let mut z = 0.0f32;
            for k in lo..hi {
                let p = (v.get(k, 0) - mx).exp();
                v.set(k, 0, p);
                z += p;
            }
            for k in lo..hi {
                let p = v.get(k, 0) / z;
                v.set(k, 0, p);
            }
        }
        self.push(Op::EdgeSoftmax { e, adj }, v)
    }

    /// Attention-weighted aggregation: `out[t] = Σ_k w[k] · x[s_k]` over
    /// target `t`'s edges.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn weighted_agg(&mut self, w: NodeId, x: NodeId, adj: Arc<CsrAdj>) -> NodeId {
        assert_eq!(self.value(w).shape(), (adj.num_edges(), 1));
        assert!(self.value(x).rows() >= adj.num_sources);
        let d = self.value(x).cols();
        let mut v = Matrix::zeros(adj.num_targets, d);
        let mut k = 0usize;
        for t in 0..adj.num_targets {
            for &s in &adj.col[adj.row_ptr[t]..adj.row_ptr[t + 1]] {
                let wv = self.nodes[w.0].value.get(k, 0);
                let src = self.nodes[x.0].value.row(s as usize);
                let out = v.row_mut(t);
                for (o, &a) in out.iter_mut().zip(src) {
                    *o += wv * a;
                }
                k += 1;
            }
        }
        self.push(Op::WeightedAgg { w, x, adj }, v)
    }

    /// Mean of all entries, producing a `1×1` scalar node.
    pub fn mean_all(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x);
        let n = v.as_flat().len().max(1);
        let m = Matrix::from_flat(1, 1, vec![v.sum() / n as f32]);
        self.push(Op::MeanAll(x), m)
    }

    /// Mean softmax cross-entropy of `logits` against integer `labels`,
    /// producing a `1×1` scalar node.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != logits.rows()` or any label is out of
    /// class range.
    pub fn softmax_cross_entropy(&mut self, logits: NodeId, labels: Arc<Vec<u32>>) -> NodeId {
        let lv = self.value(logits);
        let (r, c) = lv.shape();
        assert_eq!(labels.len(), r, "label count mismatch");
        assert!(
            labels.iter().all(|&l| (l as usize) < c),
            "label out of class range"
        );
        let mut probs = lv.clone();
        let mut loss = 0.0f32;
        for i in 0..r {
            let row = probs.row_mut(i);
            let mx = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - mx).exp();
                z += *v;
            }
            for v in row.iter_mut() {
                *v /= z;
            }
            loss -= row[labels[i] as usize].max(1e-30).ln();
        }
        loss /= r.max(1) as f32;
        let m = Matrix::from_flat(1, 1, vec![loss]);
        self.push(
            Op::SoftmaxCrossEntropy {
                logits,
                labels,
                probs,
            },
            m,
        )
    }

    /// Runs reverse-mode differentiation from `output`, which must be a
    /// `1×1` scalar node. Gradients accumulate into every node reachable
    /// backward from it.
    ///
    /// # Panics
    ///
    /// Panics if `output` is not scalar.
    pub fn backward(&mut self, output: NodeId) {
        assert_eq!(
            self.value(output).shape(),
            (1, 1),
            "backward requires a scalar output"
        );
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.nodes[output.0].grad = Some(Matrix::from_flat(1, 1, vec![1.0]));

        for i in (0..=output.0).rev() {
            let Some(g) = self.nodes[i].grad.take() else {
                continue;
            };
            // Borrow-splitting: gather what we need from node i immutably,
            // then write into input grads. `g` is re-inserted after the
            // match so callers can read it; arms that only read the
            // upstream gradient borrow it instead of cloning.
            match &self.nodes[i].op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    let ga = g.matmul_t(&self.nodes[b.0].value);
                    let gb = self.nodes[a.0].value.t_matmul(&g);
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    self.accumulate(a, g.clone());
                    self.accumulate(b, g.clone());
                }
                Op::AddBias(x, bias) => {
                    let (x, bias) = (*x, *bias);
                    let cols = g.cols();
                    let mut gb = Matrix::zeros(1, cols);
                    for r in 0..g.rows() {
                        for (o, &v) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += v;
                        }
                    }
                    self.accumulate(x, g.clone());
                    self.accumulate(bias, gb);
                }
                Op::Relu(x) => {
                    let x = *x;
                    let mut gx = g.clone();
                    for (gv, &xv) in gx
                        .as_flat_mut()
                        .iter_mut()
                        .zip(self.nodes[x.0].value.as_flat())
                    {
                        if xv <= 0.0 {
                            *gv = 0.0;
                        }
                    }
                    self.accumulate(x, gx);
                }
                Op::LeakyRelu(x, slope) => {
                    let (x, slope) = (*x, *slope);
                    let mut gx = g.clone();
                    for (gv, &xv) in gx
                        .as_flat_mut()
                        .iter_mut()
                        .zip(self.nodes[x.0].value.as_flat())
                    {
                        if xv <= 0.0 {
                            *gv *= slope;
                        }
                    }
                    self.accumulate(x, gx);
                }
                Op::Scale(x, s) => {
                    let (x, s) = (*x, *s);
                    let mut gx = g.clone();
                    gx.scale_assign(s);
                    self.accumulate(x, gx);
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (*a, *b);
                    let ca = self.nodes[a.0].value.cols();
                    let cb = self.nodes[b.0].value.cols();
                    let rows = g.rows();
                    let mut ga = Matrix::zeros(rows, ca);
                    let mut gb = Matrix::zeros(rows, cb);
                    for r in 0..rows {
                        ga.row_mut(r).copy_from_slice(&g.row(r)[..ca]);
                        gb.row_mut(r).copy_from_slice(&g.row(r)[ca..]);
                    }
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::HeadRows(x) => {
                    let x = *x;
                    let (rx, cx) = self.nodes[x.0].value.shape();
                    let mut gx = Matrix::zeros(rx, cx);
                    for r in 0..g.rows() {
                        gx.row_mut(r).copy_from_slice(g.row(r));
                    }
                    self.accumulate(x, gx);
                }
                Op::Dropout(x, mask) => {
                    let x = *x;
                    let mut gx = g.clone();
                    for (gv, &m) in gx.as_flat_mut().iter_mut().zip(mask) {
                        *gv *= m;
                    }
                    self.accumulate(x, gx);
                }
                Op::SparseAgg { x, adj, mode } => {
                    let x = *x;
                    let adj = Arc::clone(adj);
                    let mode = *mode;
                    let (rx, d) = self.nodes[x.0].value.shape();
                    let mut gx = Matrix::zeros(rx, d);
                    for t in 0..adj.num_targets {
                        let (lo, hi) = (adj.row_ptr[t], adj.row_ptr[t + 1]);
                        if lo == hi {
                            continue;
                        }
                        if mode == AggMode::Max {
                            // Route each column's gradient to the argmax
                            // source (first winner on ties).
                            for j in 0..d {
                                let mut best_s = adj.col[lo] as usize;
                                let mut best = self.nodes[x.0].value.get(best_s, j);
                                for &s in &adj.col[lo + 1..hi] {
                                    let v = self.nodes[x.0].value.get(s as usize, j);
                                    if v > best {
                                        best = v;
                                        best_s = s as usize;
                                    }
                                }
                                let gv = g.get(t, j);
                                gx.set(best_s, j, gx.get(best_s, j) + gv);
                            }
                            continue;
                        }
                        let w = match mode {
                            AggMode::Mean => 1.0 / (hi - lo) as f32,
                            // Max rows take the dedicated argmax path above
                            // (`continue`); the arm exists only for the type.
                            AggMode::Sum | AggMode::Max => 1.0,
                        };
                        let gt = g.row(t);
                        for &s in &adj.col[lo..hi] {
                            for (o, &gv) in gx.row_mut(s as usize).iter_mut().zip(gt) {
                                *o += w * gv;
                            }
                        }
                    }
                    self.accumulate(x, gx);
                }
                Op::EdgeScores {
                    target,
                    source,
                    adj,
                } => {
                    let (target, source) = (*target, *source);
                    let adj = Arc::clone(adj);
                    let mut gt = Matrix::zeros(self.nodes[target.0].value.rows(), 1);
                    let mut gs = Matrix::zeros(self.nodes[source.0].value.rows(), 1);
                    let mut k = 0usize;
                    for t in 0..adj.num_targets {
                        for &s in &adj.col[adj.row_ptr[t]..adj.row_ptr[t + 1]] {
                            let gv = g.get(k, 0);
                            gt.set(t, 0, gt.get(t, 0) + gv);
                            gs.set(s as usize, 0, gs.get(s as usize, 0) + gv);
                            k += 1;
                        }
                    }
                    self.accumulate(target, gt);
                    self.accumulate(source, gs);
                }
                Op::EdgeSoftmax { e, adj } => {
                    let e = *e;
                    let adj = Arc::clone(adj);
                    let probs = &self.nodes[i].value;
                    let mut ge = Matrix::zeros(adj.num_edges(), 1);
                    for t in 0..adj.num_targets {
                        let (lo, hi) = (adj.row_ptr[t], adj.row_ptr[t + 1]);
                        let dot: f32 = (lo..hi).map(|k| probs.get(k, 0) * g.get(k, 0)).sum();
                        for k in lo..hi {
                            ge.set(k, 0, probs.get(k, 0) * (g.get(k, 0) - dot));
                        }
                    }
                    self.accumulate(e, ge);
                }
                Op::WeightedAgg { w, x, adj } => {
                    let (w, x) = (*w, *x);
                    let adj = Arc::clone(adj);
                    let (rx, d) = self.nodes[x.0].value.shape();
                    let mut gw = Matrix::zeros(adj.num_edges(), 1);
                    let mut gx = Matrix::zeros(rx, d);
                    let mut k = 0usize;
                    for t in 0..adj.num_targets {
                        let gt = g.row(t);
                        for &s in &adj.col[adj.row_ptr[t]..adj.row_ptr[t + 1]] {
                            let wv = self.nodes[w.0].value.get(k, 0);
                            let xs = self.nodes[x.0].value.row(s as usize);
                            let mut acc = 0.0f32;
                            for ((o, &gv), &xv) in gx.row_mut(s as usize).iter_mut().zip(gt).zip(xs)
                            {
                                *o += wv * gv;
                                acc += gv * xv;
                            }
                            gw.set(k, 0, acc);
                            k += 1;
                        }
                    }
                    self.accumulate(w, gw);
                    self.accumulate(x, gx);
                }
                Op::MeanAll(x) => {
                    let x = *x;
                    let (rx, cx) = self.nodes[x.0].value.shape();
                    let n = (rx * cx).max(1) as f32;
                    let gv = g.get(0, 0) / n;
                    let gx = Matrix::from_flat(rx, cx, vec![gv; rx * cx]);
                    self.accumulate(x, gx);
                }
                Op::SoftmaxCrossEntropy {
                    logits,
                    labels,
                    probs,
                } => {
                    let logits = *logits;
                    let labels = Arc::clone(labels);
                    let mut gx = probs.clone();
                    let r = gx.rows().max(1) as f32;
                    let upstream = g.get(0, 0);
                    for (idx, &l) in labels.iter().enumerate() {
                        let v = gx.get(idx, l as usize) - 1.0;
                        gx.set(idx, l as usize, v);
                    }
                    gx.scale_assign(upstream / r);
                    self.accumulate(logits, gx);
                }
            }
            // Re-insert so callers can read it afterwards.
            self.nodes[i].grad = Some(g);
        }
    }

    fn accumulate(&mut self, id: NodeId, g: Matrix) {
        match &mut self.nodes[id.0].grad {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check for a scalar-valued tape builder.
    fn grad_check<F>(build: F, input: Matrix, tol: f32)
    where
        F: Fn(&mut Tape, NodeId) -> NodeId,
    {
        let mut tape = Tape::new();
        let x = tape.input(input.clone());
        let out = build(&mut tape, x);
        tape.backward(out);
        let analytic = tape.grad(x).unwrap().clone();

        let eps = 1e-3f32;
        for idx in 0..input.as_flat().len() {
            let mut plus = input.clone();
            plus.as_flat_mut()[idx] += eps;
            let mut minus = input.clone();
            minus.as_flat_mut()[idx] -= eps;
            let f = |m: Matrix| {
                let mut t = Tape::new();
                let x = t.input(m);
                let o = build(&mut t, x);
                t.value(o).get(0, 0)
            };
            let numeric = (f(plus) - f(minus)) / (2.0 * eps);
            let a = analytic.as_flat()[idx];
            assert!(
                (numeric - a).abs() < tol,
                "grad mismatch at {idx}: numeric {numeric}, analytic {a}"
            );
        }
    }

    fn test_adj() -> Arc<CsrAdj> {
        // 2 targets, 3 sources; t0 <- {0,1,2}, t1 <- {2}
        Arc::new(CsrAdj {
            num_targets: 2,
            num_sources: 3,
            row_ptr: vec![0, 3, 4],
            col: vec![0, 1, 2, 2],
        })
    }

    #[test]
    fn matmul_grad() {
        let w = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.3], &[0.1, 0.9]]);
        grad_check(
            move |t, x| {
                let w = t.input(w.clone());
                let y = t.matmul(x, w);
                t.mean_all(y)
            },
            Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.2, 0.8, -0.4]]),
            1e-2,
        );
    }

    #[test]
    fn relu_grad() {
        grad_check(
            |t, x| {
                let y = t.relu(x);
                t.mean_all(y)
            },
            Matrix::from_rows(&[&[1.0, -2.0, 3.0, -0.5]]),
            1e-3,
        );
    }

    #[test]
    fn leaky_relu_grad() {
        grad_check(
            |t, x| {
                let y = t.leaky_relu(x, 0.2);
                t.mean_all(y)
            },
            Matrix::from_rows(&[&[1.0, -2.0, 3.0, -0.5]]),
            1e-3,
        );
    }

    #[test]
    fn add_bias_grad() {
        grad_check(
            |t, x| {
                let b = t.input(Matrix::from_rows(&[&[0.5, -0.5]]));
                let y = t.add_bias(x, b);
                let y2 = t.relu(y);
                t.mean_all(y2)
            },
            Matrix::from_rows(&[&[1.0, 2.0], &[-3.0, 0.25]]),
            1e-3,
        );
    }

    #[test]
    fn concat_grad() {
        grad_check(
            |t, x| {
                let y = t.concat_cols(x, x);
                let z = t.relu(y);
                t.mean_all(z)
            },
            Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]),
            1e-3,
        );
    }

    #[test]
    fn sparse_mean_grad() {
        let adj = test_adj();
        grad_check(
            move |t, x| {
                let y = t.sparse_agg(x, Arc::clone(&adj), AggMode::Mean);
                let z = t.relu(y);
                t.mean_all(z)
            },
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0], &[0.5, 0.25]]),
            1e-3,
        );
    }

    #[test]
    fn sparse_sum_grad() {
        let adj = test_adj();
        grad_check(
            move |t, x| {
                let y = t.sparse_agg(x, Arc::clone(&adj), AggMode::Sum);
                t.mean_all(y)
            },
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0], &[0.5, 0.25]]),
            1e-3,
        );
    }

    #[test]
    fn sparse_max_grad() {
        let adj = test_adj();
        grad_check(
            move |t, x| {
                let y = t.sparse_agg(x, Arc::clone(&adj), AggMode::Max);
                t.mean_all(y)
            },
            // Distinct values so the argmax is stable under the probe eps.
            Matrix::from_rows(&[&[1.0, 2.5], &[3.0, -1.0], &[0.5, 0.25]]),
            1e-3,
        );
    }

    #[test]
    fn sparse_max_forward_values() {
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_rows(&[
            &[1.0, -2.0],
            &[3.0, 0.5],
            &[-1.0, 4.0],
        ]));
        let adj = test_adj();
        let y = tape.sparse_agg(x, adj, AggMode::Max);
        // t0 <- max of rows {0,1,2} = [3.0, 4.0]; t1 <- row 2 = [-1.0, 4.0].
        assert_eq!(tape.value(y).row(0), &[3.0, 4.0]);
        assert_eq!(tape.value(y).row(1), &[-1.0, 4.0]);
    }

    #[test]
    fn head_rows_grad() {
        grad_check(
            |t, x| {
                let y = t.head_rows(x, 1);
                t.mean_all(y)
            },
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]),
            1e-3,
        );
    }

    #[test]
    fn softmax_cross_entropy_grad() {
        let labels = Arc::new(vec![1u32, 0u32]);
        grad_check(
            move |t, x| t.softmax_cross_entropy(x, Arc::clone(&labels)),
            Matrix::from_rows(&[&[0.2, -0.4, 0.1], &[1.0, 0.3, -0.2]]),
            1e-2,
        );
    }

    #[test]
    fn attention_pipeline_grad() {
        // Gradient through edge_scores -> edge_softmax -> weighted_agg wrt
        // the target score vector.
        let adj = test_adj();
        let feats = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        grad_check(
            move |t, ts| {
                let ss = t.input(Matrix::from_rows(&[&[0.1], &[0.2], &[-0.25]]));
                let x = t.input(feats.clone());
                let e = t.edge_scores(ts, ss, Arc::clone(&adj));
                let lr = t.leaky_relu(e, 0.2);
                let w = t.edge_softmax(lr, Arc::clone(&adj));
                let y = t.weighted_agg(w, x, Arc::clone(&adj));
                let z = t.relu(y);
                t.mean_all(z)
            },
            Matrix::from_rows(&[&[0.3], &[-0.6]]),
            1e-2,
        );
    }

    #[test]
    fn dropout_zeroes_and_scales() {
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_flat(1, 1000, vec![1.0; 1000]));
        let mut rng = StdRng::seed_from_u64(1);
        let y = tape.dropout(x, 0.5, &mut rng);
        let vals = tape.value(y).as_flat();
        let zeros = vals.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 350 && zeros < 650, "dropout rate off: {zeros}");
        assert!(vals.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn cross_entropy_decreases_with_correct_logits() {
        let labels = Arc::new(vec![0u32]);
        let mut t1 = Tape::new();
        let bad = t1.input(Matrix::from_rows(&[&[0.0, 5.0]]));
        let l1 = t1.softmax_cross_entropy(bad, Arc::clone(&labels));
        let mut t2 = Tape::new();
        let good = t2.input(Matrix::from_rows(&[&[5.0, 0.0]]));
        let l2 = t2.softmax_cross_entropy(good, labels);
        assert!(t2.value(l2).get(0, 0) < t1.value(l1).get(0, 0));
    }

    #[test]
    fn gradients_accumulate_on_reuse() {
        // y = x + x: dy/dx = 2.
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_rows(&[&[1.0]]));
        let y = tape.add(x, x);
        let s = tape.mean_all(y);
        tape.backward(s);
        assert_eq!(tape.grad(x).unwrap().get(0, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "backward requires a scalar")]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let x = tape.input(Matrix::zeros(2, 2));
        tape.backward(x);
    }
}
