//! Per-module exploration reports and their text/JSON rendering.

/// One invariant violation, with the scheduler trace that led to it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// What failed (assertion text, deadlock description, ...).
    pub message: String,
    /// Scheduler steps of the violating execution, oldest first
    /// (`t<tid> <op>` lines; locations use per-execution aliases).
    pub trace: Vec<String>,
    /// Index of the violating schedule within the module's exploration.
    pub schedule: u64,
}

/// What a module's exploration is expected to produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expect {
    /// Production invariant harness: zero violations required.
    Clean,
    /// Mutation fixture with a seeded bug: at least one violation must
    /// be found within the schedule bound, or the checker is broken.
    Caught,
}

/// Result of exploring one module.
#[derive(Clone, Debug)]
pub struct ModuleReport {
    /// Module name (`telemetry-shards`, `mutant-weak-order`, ...).
    pub name: String,
    /// Expected outcome.
    pub expect: Expect,
    /// Completed (non-pruned) schedules explored.
    pub schedules: u64,
    /// Schedules cut short by sleep-set pruning (their behavior is
    /// equivalent to an already-explored schedule).
    pub pruned: u64,
    /// Total scheduled operations executed across all schedules — the
    /// explored-state count.
    pub states: u64,
    /// Deepest decision stack seen (scheduling + weak-memory choices).
    pub max_depth: usize,
    /// True when the schedule budget ran out before the tree was
    /// exhausted.
    pub truncated: bool,
    /// Violations found (capped; `violation_count` has the true total).
    pub violations: Vec<Violation>,
    /// Total violations found, including those beyond the cap.
    pub violation_count: u64,
}

/// At most this many violations keep their full trace per module.
pub const VIOLATION_CAP: usize = 3;

impl ModuleReport {
    /// An empty report for `name`.
    pub fn new(name: &str, expect: Expect) -> Self {
        Self {
            name: name.to_string(),
            expect,
            schedules: 0,
            pruned: 0,
            states: 0,
            max_depth: 0,
            truncated: false,
            violations: Vec::new(),
            violation_count: 0,
        }
    }

    /// Whether the module met its expectation.
    pub fn pass(&self) -> bool {
        match self.expect {
            Expect::Clean => self.violation_count == 0,
            Expect::Caught => self.violation_count > 0,
        }
    }

    /// One human-readable block.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let verdict = match (self.expect, self.pass()) {
            (Expect::Clean, true) => "ok (no violations)",
            (Expect::Clean, false) => "FAIL (invariant violated)",
            (Expect::Caught, true) => "ok (seeded bug caught)",
            (Expect::Caught, false) => "FAIL (seeded bug NOT caught)",
        };
        out.push_str(&format!(
            "{:<22} {:>7} schedules  {:>6} pruned  {:>8} states  depth {:<3} {}{}\n",
            self.name,
            self.schedules,
            self.pruned,
            self.states,
            self.max_depth,
            verdict,
            if self.truncated { " [truncated]" } else { "" },
        ));
        let shown = match self.expect {
            // A caught mutant prints its first counterexample (that is
            // the point of the fixture); a failing clean module prints
            // everything captured.
            Expect::Caught => usize::from(self.pass()),
            Expect::Clean => self.violations.len(),
        };
        for v in self.violations.iter().take(shown) {
            out.push_str(&format!(
                "    schedule {}: {}\n",
                v.schedule,
                v.message.replace('\n', " ")
            ));
            for step in &v.trace {
                out.push_str(&format!("      {step}\n"));
            }
        }
        out
    }

    /// One JSON object (hand-rolled, matching the xtask report style —
    /// no serde in the workspace).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"name\":{},", json_str(&self.name)));
        out.push_str(&format!(
            "\"expect\":\"{}\",",
            match self.expect {
                Expect::Clean => "clean",
                Expect::Caught => "caught",
            }
        ));
        out.push_str(&format!("\"pass\":{},", self.pass()));
        out.push_str(&format!("\"schedules\":{},", self.schedules));
        out.push_str(&format!("\"pruned\":{},", self.pruned));
        out.push_str(&format!("\"states\":{},", self.states));
        out.push_str(&format!("\"max_depth\":{},", self.max_depth));
        out.push_str(&format!("\"truncated\":{},", self.truncated));
        out.push_str(&format!("\"violation_count\":{},", self.violation_count));
        out.push_str("\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"schedule\":{},\"message\":{},\"trace\":[",
                v.schedule,
                json_str(&v.message)
            ));
            for (j, s) in v.trace.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(s));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (control chars, quote, backslash).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_logic_follows_expectation() {
        let mut clean = ModuleReport::new("m", Expect::Clean);
        assert!(clean.pass());
        clean.violation_count = 1;
        assert!(!clean.pass());

        let mut mutant = ModuleReport::new("m", Expect::Caught);
        assert!(!mutant.pass());
        mutant.violation_count = 2;
        assert!(mutant.pass());
    }

    #[test]
    fn json_escapes_and_renders() {
        let mut r = ModuleReport::new("overlay-probe", Expect::Clean);
        r.schedules = 12;
        r.violations.push(Violation {
            message: "hits \"torn\"\nline2".to_string(),
            trace: vec!["t0 lock(m0)".to_string()],
            schedule: 7,
        });
        r.violation_count = 1;
        let j = r.render_json();
        assert!(j.contains("\"name\":\"overlay-probe\""));
        assert!(j.contains("\\\"torn\\\"\\nline2"));
        assert!(j.contains("\"pass\":false"));
        assert!(j.contains("\"schedules\":12"));
        // Text render shows the trace of the failing schedule.
        let t = r.render_text();
        assert!(t.contains("schedule 7"));
        assert!(t.contains("t0 lock(m0)"));
    }
}
