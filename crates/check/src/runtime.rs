//! The controlled scheduler: a [`ModelHooks`] implementation that turns
//! every instrumented `spp-sync` operation into a cooperative yield
//! point.
//!
//! ## Protocol
//!
//! Model threads are real OS threads, but at most one runs at a time.
//! At each instrumented operation a thread *announces* the pending op
//! and parks; once every model thread is parked (or finished/waiting),
//! the parking thread runs the scheduler pick: enabled candidates are
//! filtered by the preemption bound and the sleep set, one decision is
//! consumed from the DFS stack, and the chosen thread is granted. The
//! granted thread executes its op against the model state *under the
//! scheduler lock* (atomic histories, mutex ownership, condvar queues
//! are pure state), then runs uncontrolled until its next announce.
//!
//! ## Partial-order reduction (DPOR-lite)
//!
//! Sleep sets: when the scheduler picks candidate `j` at a branch, the
//! skipped candidates `0..j` go to sleep carrying their pending op's
//! signature. A sleeping thread is not schedulable until some executed
//! op *conflicts* with its signature (same location, not both loads).
//! If every enabled thread is asleep the execution is pruned — any
//! continuation would only reorder commuting operations relative to an
//! already-explored schedule.
//!
//! ## Weak memory
//!
//! Per location the model keeps a short history of stores. A `Relaxed`
//! or `Acquire` load may observe any entry not older than the reader's
//! per-location floor (`seen`); which one is a DFS decision. `Release`
//! stores snapshot the writer's `seen` map, and an `Acquire` load that
//! observes a release store joins that snapshot — the happens-before
//! edge that makes correctly paired release/acquire code pass while
//! `Relaxed` publication is caught reading stale data. RMWs always read
//! the latest store (C++ modification-order rule), and mutex
//! release→acquire carries the same visibility join. This is a sound
//! over-approximation *detector*, not a full C++11 model: fences and
//! release sequences are not modeled (spp-sync does not expose them).

// `panic_any(ModelAbort)` is the checker's control flow for pruned
// executions — the unwind is caught at the thread boundary, classified
// by payload type, and never reaches a user. Load-bearing, not an
// error path.
#![allow(clippy::panic)]

use crate::decision::Decisions;
use crate::report::{Violation, VIOLATION_CAP};
use spp_sync::hook::{AtomicOp, MemOrd, ModelHooks};
use std::any::Any;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64 as RawAtomicU64, Ordering};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock};
use std::time::Duration;

/// Exploration bounds and feature switches for one module.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Maximum context switches away from a still-enabled thread per
    /// execution. 2–3 catches almost all real bugs (CHESS result) while
    /// keeping the tree small.
    pub preemption_bound: usize,
    /// Serve loads stale-but-permitted values (see module docs).
    pub weak_memory: bool,
    /// Store-history entries kept per location in weak-memory mode.
    pub max_history: usize,
    /// Execution budget per module (completed + pruned schedules).
    pub max_schedules: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            weak_memory: true,
            max_history: 3,
            max_schedules: 20_000,
        }
    }
}

/// Panic payload used to unwind model threads when an execution aborts
/// (violation found, or sleep-set prune). Not a violation by itself.
pub(crate) struct ModelAbort;

thread_local! {
    static MODEL_TID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// This thread's model id, if it is a registered model thread.
fn current_tid() -> Option<usize> {
    MODEL_TID.with(|c| c.get())
}

/// Registers/clears the calling thread as model thread `t`.
pub(crate) fn set_tid(t: Option<usize>) {
    MODEL_TID.with(|c| c.set(t));
}

/// One location touched by an op signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SigPart {
    loc: usize,
    write: bool,
}

/// Dependency footprint of an op, for conflict detection.
#[derive(Clone, Copy, Debug)]
pub(crate) struct OpSig {
    a: SigPart,
    b: Option<SigPart>,
}

/// Two ops conflict when they touch a common location and at least one
/// writes it. Commuting (non-conflicting) ops need no reordering.
fn conflicts(x: &OpSig, y: &OpSig) -> bool {
    for px in [Some(x.a), x.b].into_iter().flatten() {
        for py in [Some(y.a), y.b].into_iter().flatten() {
            if px.loc == py.loc && (px.write || py.write) {
                return true;
            }
        }
    }
    false
}

/// An announced-but-not-yet-executed operation.
#[derive(Clone, Copy, Debug)]
enum PendingOp {
    Atomic { addr: usize, op: AtomicOp },
    Lock { loc: usize },
    Unlock { loc: usize },
    CvRelease { cv: usize, mutex: usize },
    CvReacquire { cv: usize, mutex: usize },
    CvNotify { cv: usize, all: bool },
}

fn sig_of(op: &PendingOp) -> OpSig {
    let part = |loc, write| SigPart { loc, write };
    match *op {
        PendingOp::Atomic { addr, op } => OpSig {
            a: part(addr, !op.is_load()),
            b: None,
        },
        PendingOp::Lock { loc } | PendingOp::Unlock { loc } => OpSig {
            a: part(loc, true),
            b: None,
        },
        // Releasing the mutex affects lock waiters; joining the condvar
        // affects notifiers.
        PendingOp::CvRelease { cv, mutex } => OpSig {
            a: part(mutex, true),
            b: Some(part(cv, true)),
        },
        PendingOp::CvReacquire { mutex, .. } => OpSig {
            a: part(mutex, true),
            b: None,
        },
        PendingOp::CvNotify { cv, .. } => OpSig {
            a: part(cv, true),
            b: None,
        },
    }
}

#[derive(Clone, Copy, Debug)]
enum Status {
    /// Running uncontrolled (before its first announce, or between a
    /// grant and its next announce).
    Free,
    /// Parked with an announced op, schedulable.
    Pending(PendingOp),
    /// Parked in `Condvar::wait`, not schedulable until notified. The
    /// mutex is remembered so the notify-converted reacquire respects
    /// its enabledness.
    Waiting { cv: usize, mutex: usize },
    /// Body returned (or unwound).
    Finished,
}

struct Th {
    status: Status,
    /// Per-location floor of visible store indices (weak memory).
    seen: BTreeMap<usize, u64>,
}

/// One store in a location's history.
struct HistEntry {
    val: u64,
    /// Writer's `seen` snapshot for release stores (acquire loads join
    /// it — the happens-before edge).
    vis: Option<BTreeMap<usize, u64>>,
}

struct LocState {
    /// Global index of `entries[0]`.
    base: u64,
    entries: VecDeque<HistEntry>,
    /// Stable per-execution display name (`x0`, `x1`, ...).
    alias: String,
}

impl LocState {
    fn latest(&self) -> u64 {
        self.base + self.entries.len() as u64 - 1
    }
    fn latest_val(&self) -> u64 {
        match self.entries.back() {
            Some(e) => e.val,
            None => unreachable!("location history is never empty"), // spp-lint: allow(l1-no-panic): checker-internal invariant; aborting the exploration is the correct failure mode
        }
    }
}

struct MutexState {
    held: bool,
    /// Last releaser's `seen` snapshot (acquire joins it).
    vis: Option<BTreeMap<usize, u64>>,
    alias: String,
}

/// Everything about the execution in flight, under one lock.
struct ExecState {
    active: bool,
    abort: bool,
    pruned: bool,
    opts: Options,
    preemptions: usize,
    threads: Vec<Th>,
    last_ran: Option<usize>,
    grant: Option<usize>,
    /// Thread currently allowed to run its TLS destructors and exit
    /// (teardown is serialized in tid order for determinism).
    exit_grant: Option<usize>,
    locs: HashMap<usize, LocState>,
    mutexes: HashMap<usize, MutexState>,
    cv_alias: HashMap<usize, String>,
    sleep: Vec<(usize, OpSig)>,
    decisions: Decisions,
    trace: Vec<String>,
    violations: Vec<Violation>,
    violation_count: u64,
    ops: u64,
    schedule_index: u64,
}

impl ExecState {
    fn all_finished(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.status, Status::Finished))
    }
}

/// What one execution produced (drained by the explorer).
pub(crate) struct ExecOutcome {
    pub pruned: bool,
    pub ops: u64,
    pub depth: usize,
    pub trace: Vec<String>,
    pub violations: Vec<Violation>,
    pub violation_count: u64,
}

/// The global scheduler. Installed once as the process-wide
/// [`ModelHooks`] implementation.
pub(crate) struct Runtime {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
}

/// The process-wide runtime, installing hooks on first use.
pub(crate) fn global() -> &'static Runtime {
    static RT: OnceLock<&'static Runtime> = OnceLock::new();
    RT.get_or_init(|| {
        let rt: &'static Runtime = Box::leak(Box::new(Runtime::new()));
        let _installed = spp_sync::hook::install(rt);
        rt
    })
}

/// Best-effort stringification of a panic payload.
pub(crate) fn payload_str(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn bump_seen(seen: &mut BTreeMap<usize, u64>, addr: usize, idx: u64) {
    let e = seen.entry(addr).or_insert(0);
    if *e < idx {
        *e = idx;
    }
}

fn join_seen(seen: &mut BTreeMap<usize, u64>, vis: &BTreeMap<usize, u64>) {
    for (&a, &i) in vis {
        bump_seen(seen, a, i);
    }
}

impl Runtime {
    fn new() -> Self {
        Self {
            state: StdMutex::new(ExecState {
                active: false,
                abort: false,
                pruned: false,
                opts: Options::default(),
                preemptions: 0,
                threads: Vec::new(),
                last_ran: None,
                grant: None,
                exit_grant: None,
                locs: HashMap::new(),
                mutexes: HashMap::new(),
                cv_alias: HashMap::new(),
                sleep: Vec::new(),
                decisions: Decisions::new(),
                trace: Vec::new(),
                violations: Vec::new(),
                violation_count: 0,
                ops: 0,
                schedule_index: 0,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn st(&self) -> StdMutexGuard<'_, ExecState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn wait<'a>(&self, g: StdMutexGuard<'a, ExecState>) -> StdMutexGuard<'a, ExecState> {
        match self.cv.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    // ----- module / execution lifecycle (driver thread) -----

    pub(crate) fn begin_module(&self, opts: Options) {
        let mut st = self.st();
        st.opts = opts;
        st.opts.max_history = st.opts.max_history.max(1);
        st.decisions.reset();
        st.schedule_index = 0;
        st.violations.clear();
        st.violation_count = 0;
    }

    /// Prepares a fresh execution with `n` model threads.
    pub(crate) fn arm(&self, n: usize) {
        let mut st = self.st();
        st.active = true;
        st.abort = false;
        st.pruned = false;
        st.preemptions = 0;
        st.threads = (0..n)
            .map(|_| Th {
                status: Status::Free,
                seen: BTreeMap::new(),
            })
            .collect();
        st.last_ran = None;
        st.grant = None;
        st.exit_grant = None;
        st.locs.clear();
        st.mutexes.clear();
        st.cv_alias.clear();
        st.sleep.clear();
        st.trace.clear();
        st.ops = 0;
        st.decisions.begin();
    }

    /// Marks model thread `me` finished (body returned or unwound).
    pub(crate) fn thread_done(&self, me: usize, res: Result<(), Box<dyn Any + Send>>) {
        let mut st = self.st();
        if let Err(p) = res {
            if !p.is::<ModelAbort>() {
                let msg = payload_str(p.as_ref());
                self.fail(&mut st, format!("model thread t{me} panicked: {msg}"));
            }
        }
        st.threads[me].status = Status::Finished;
        st.sleep.retain(|(t, _)| *t != me);
        self.maybe_pick(&mut st);
        self.cv.notify_all();
    }

    /// Blocks the driver until every model thread reached `Finished`.
    /// A watchdog aborts the execution (and eventually the process) if
    /// the scheduler wedges — better a loud exit than a hung CI job.
    pub(crate) fn wait_all_finished(&self) {
        let mut st = self.st();
        let mut stalls = 0u32;
        while !st.all_finished() {
            let (g, timeout) = match self.cv.wait_timeout(st, Duration::from_secs(5)) {
                Ok(x) => x,
                Err(p) => {
                    let (g, t) = p.into_inner();
                    (g, t)
                }
            };
            st = g;
            if timeout.timed_out() && !st.all_finished() {
                stalls += 1;
                if stalls == 1 {
                    self.fail(
                        &mut st,
                        "watchdog: no progress for 5s (scheduler wedged?)".to_string(),
                    );
                } else if stalls >= 6 {
                    eprintln!("spp-check: model threads failed to unwind after abort; giving up");
                    std::process::exit(3);
                }
            }
        }
    }

    /// Lets model thread `i` run its TLS destructors and exit; exits are
    /// granted in tid order and joined one at a time by the driver.
    pub(crate) fn grant_exit(&self, i: usize) {
        let mut st = self.st();
        st.exit_grant = Some(i);
        self.cv.notify_all();
    }

    /// Model thread side of the exit handshake.
    pub(crate) fn wait_exit(&self, i: usize) {
        let mut st = self.st();
        while st.exit_grant != Some(i) {
            st = self.wait(st);
        }
    }

    /// Ends the execution and drains its outcome.
    pub(crate) fn finish_execution(&self) -> ExecOutcome {
        let mut st = self.st();
        st.active = false;
        st.schedule_index += 1;
        ExecOutcome {
            pruned: st.pruned,
            ops: std::mem::take(&mut st.ops),
            depth: st.decisions.depth(),
            trace: std::mem::take(&mut st.trace),
            violations: std::mem::take(&mut st.violations),
            violation_count: std::mem::take(&mut st.violation_count),
        }
    }

    /// Current schedule ordinal (for labeling driver-side violations).
    pub(crate) fn schedule_index(&self) -> u64 {
        self.st().schedule_index
    }

    /// Advances the DFS to the next unexplored path.
    pub(crate) fn advance(&self) -> bool {
        self.st().decisions.advance()
    }

    // ----- scheduling core -----

    /// Records a violation and aborts the execution.
    fn fail(&self, st: &mut ExecState, message: String) {
        st.violation_count += 1;
        if st.violations.len() < VIOLATION_CAP {
            let v = Violation {
                message,
                trace: st.trace.clone(),
                schedule: st.schedule_index,
            };
            st.violations.push(v);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// If every model thread is parked, chooses who runs next.
    fn maybe_pick(&self, st: &mut ExecState) {
        if !st.active || st.abort || st.grant.is_some() {
            return;
        }
        if st.threads.iter().any(|t| matches!(t.status, Status::Free)) {
            return;
        }
        let pending: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.status, Status::Pending(_)))
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            if st.all_finished() {
                self.cv.notify_all();
            } else if st
                .threads
                .iter()
                .any(|t| matches!(t.status, Status::Waiting { .. }))
            {
                self.fail(
                    st,
                    "deadlock: every live thread waits on a condvar with no pending notifier"
                        .to_string(),
                );
            }
            return;
        }
        let enabled: Vec<usize> = pending
            .into_iter()
            .filter(|&t| match st.threads[t].status {
                Status::Pending(op) => self.op_enabled(st, &op),
                _ => false,
            })
            .collect();
        if enabled.is_empty() {
            self.fail(
                st,
                "deadlock: all pending operations are blocked on held mutexes".to_string(),
            );
            return;
        }
        // Preemption bound: once exhausted, a still-enabled previous
        // thread keeps running (no new preemption can be introduced).
        let mut cands = enabled.clone();
        if st.preemptions >= st.opts.preemption_bound {
            if let Some(prev) = st.last_ran {
                if cands.contains(&prev) {
                    cands = vec![prev];
                }
            }
        }
        let awake: Vec<usize> = cands
            .into_iter()
            .filter(|&t| !st.sleep.iter().any(|(s, _)| *s == t))
            .collect();
        if awake.is_empty() {
            // Every candidate sleeps: this continuation only reorders
            // commuting ops relative to an explored schedule. Prune.
            st.pruned = true;
            st.abort = true;
            self.cv.notify_all();
            return;
        }
        let choice = if awake.len() > 1 {
            match st.decisions.next(awake.len()) {
                Ok(c) => c,
                Err((exp, got)) => {
                    self.fail(
                        st,
                        format!(
                            "internal: nondeterministic replay (scheduling arity {exp} became {got})"
                        ),
                    );
                    return;
                }
            }
        } else {
            0
        };
        // Skipped left siblings go to sleep with their op signature.
        for &t in &awake[..choice] {
            if let Status::Pending(op) = st.threads[t].status {
                if !st.sleep.iter().any(|(s, _)| *s == t) {
                    let sig = sig_of(&op);
                    st.sleep.push((t, sig));
                }
            }
        }
        let chosen = awake[choice];
        if let Some(prev) = st.last_ran {
            if prev != chosen && enabled.contains(&prev) {
                st.preemptions += 1;
            }
        }
        st.last_ran = Some(chosen);
        st.grant = Some(chosen);
        self.cv.notify_all();
    }

    fn op_enabled(&self, st: &ExecState, op: &PendingOp) -> bool {
        match op {
            PendingOp::Lock { loc } | PendingOp::CvReacquire { mutex: loc, .. } => {
                !st.mutexes.get(loc).map(|m| m.held).unwrap_or(false)
            }
            _ => true,
        }
    }

    /// Announce `op`, park until granted, execute it. Takes the state
    /// guard from the hook entry so the announce is atomic with the
    /// entry check.
    fn park_exec(
        &self,
        mut st: StdMutexGuard<'_, ExecState>,
        me: usize,
        op: PendingOp,
        cell: Option<&RawAtomicU64>,
    ) -> u64 {
        if st.abort {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        st.threads[me].status = Status::Pending(op);
        self.maybe_pick(&mut st);
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.grant == Some(me) {
                break;
            }
            st = self.wait(st);
        }
        st.grant = None;
        self.execute(&mut st, me, op, cell)
    }

    /// Runs `op` against the model state. Sets the thread's post-status
    /// and re-picks if the thread does not continue (condvar wait).
    fn execute(
        &self,
        st: &mut ExecState,
        me: usize,
        op: PendingOp,
        cell: Option<&RawAtomicU64>,
    ) -> u64 {
        st.ops += 1;
        let sig = sig_of(&op);
        // This op may un-commute sleeping threads' pending ops.
        st.sleep.retain(|(t, s)| *t != me && !conflicts(s, &sig));
        st.threads[me].status = Status::Free;
        let result = match op {
            PendingOp::Atomic { addr, op } => {
                let cell = match cell {
                    Some(c) => c,
                    None => unreachable!("atomic ops always carry their cell"), // spp-lint: allow(l1-no-panic): checker-internal invariant; aborting the exploration is the correct failure mode
                };
                self.exec_atomic(st, me, addr, cell, op)
            }
            PendingOp::Lock { loc } => {
                self.acquire_mutex(st, me, loc);
                let name = mutex_alias(st, loc);
                self.note(st, me, format!("lock({name})"));
                0
            }
            PendingOp::Unlock { loc } => {
                self.release_mutex(st, me, loc);
                let name = mutex_alias(st, loc);
                self.note(st, me, format!("unlock({name})"));
                0
            }
            PendingOp::CvRelease { cv, mutex } => {
                self.release_mutex(st, me, mutex);
                st.threads[me].status = Status::Waiting { cv, mutex };
                let c = cv_alias(st, cv);
                let m = mutex_alias(st, mutex);
                self.note(st, me, format!("cv-wait({c}) releasing {m}"));
                0
            }
            PendingOp::CvReacquire { cv, mutex } => {
                self.acquire_mutex(st, me, mutex);
                let c = cv_alias(st, cv);
                let m = mutex_alias(st, mutex);
                self.note(st, me, format!("cv-woken({c}) reacquired {m}"));
                0
            }
            PendingOp::CvNotify { cv, all } => {
                let mut woken = 0u64;
                for t in 0..st.threads.len() {
                    if let Status::Waiting { cv: wcv, mutex } = st.threads[t].status {
                        if wcv == cv {
                            st.threads[t].status =
                                Status::Pending(PendingOp::CvReacquire { cv, mutex });
                            woken += 1;
                            if !all {
                                break;
                            }
                        }
                    }
                }
                let c = cv_alias(st, cv);
                let kind = if all { "notify_all" } else { "notify_one" };
                self.note(st, me, format!("{kind}({c}) woke {woken}"));
                woken
            }
        };
        if !matches!(st.threads[me].status, Status::Free) {
            self.maybe_pick(st);
        }
        result
    }

    fn acquire_mutex(&self, st: &mut ExecState, me: usize, loc: usize) {
        let vis = match st.mutexes.get_mut(&loc) {
            Some(m) => {
                m.held = true;
                m.vis.clone()
            }
            None => unreachable!("mutex registered at announce"), // spp-lint: allow(l1-no-panic): checker-internal invariant; aborting the exploration is the correct failure mode
        };
        if let Some(vis) = vis {
            join_seen(&mut st.threads[me].seen, &vis);
        }
    }

    fn release_mutex(&self, st: &mut ExecState, me: usize, loc: usize) {
        let snapshot = st.threads[me].seen.clone();
        if let Some(m) = st.mutexes.get_mut(&loc) {
            m.held = false;
            m.vis = Some(snapshot);
        }
    }

    fn exec_atomic(
        &self,
        st: &mut ExecState,
        me: usize,
        addr: usize,
        cell: &RawAtomicU64,
        op: AtomicOp,
    ) -> u64 {
        ensure_loc(st, addr, cell);
        let max_history = st.opts.max_history;
        match op {
            AtomicOp::Load { ord } => {
                let (base, latest) = {
                    let ls = &st.locs[&addr];
                    (ls.base, ls.latest())
                };
                let floor = st.threads[me]
                    .seen
                    .get(&addr)
                    .copied()
                    .unwrap_or(0)
                    .max(base);
                let window = (latest - floor + 1) as usize;
                let idx = if st.opts.weak_memory && window > 1 {
                    match st.decisions.next(window) {
                        // Choice 0 observes the latest store, so the
                        // first-explored schedule is the "natural" one.
                        Ok(c) => latest - c as u64,
                        Err((exp, got)) => {
                            self.fail(
                                st,
                                format!(
                                    "internal: nondeterministic replay (load arity {exp} became {got})"
                                ),
                            );
                            latest
                        }
                    }
                } else {
                    latest
                };
                let (val, vis) = {
                    let ls = &st.locs[&addr];
                    let e = &ls.entries[(idx - ls.base) as usize];
                    (e.val, e.vis.clone())
                };
                bump_seen(&mut st.threads[me].seen, addr, idx);
                if ord == MemOrd::Acquire {
                    if let Some(vis) = vis {
                        join_seen(&mut st.threads[me].seen, &vis);
                    }
                }
                let name = loc_alias(st, addr);
                let stale = latest - idx;
                let suffix = if stale > 0 {
                    format!(" (stale, {stale} behind)")
                } else {
                    String::new()
                };
                self.note(
                    st,
                    me,
                    format!("load.{}({name}) -> {val}{suffix}", ord_tag(ord)),
                );
                val
            }
            AtomicOp::Store { ord, val } => {
                let idx = {
                    let ls = &st.locs[&addr];
                    ls.latest() + 1
                };
                let vis = if ord == MemOrd::Release {
                    let mut snap = st.threads[me].seen.clone();
                    bump_seen(&mut snap, addr, idx);
                    Some(snap)
                } else {
                    None
                };
                if let Some(ls) = st.locs.get_mut(&addr) {
                    ls.entries.push_back(HistEntry { val, vis });
                    while ls.entries.len() > max_history {
                        ls.entries.pop_front();
                        ls.base += 1;
                    }
                }
                bump_seen(&mut st.threads[me].seen, addr, idx);
                // Mirror the latest value into the real cell: reads by
                // non-model threads (driver assertions) see it exactly.
                cell.store(val, Ordering::Relaxed);
                let name = loc_alias(st, addr);
                self.note(st, me, format!("store.{}({name}) <- {val}", ord_tag(ord)));
                val
            }
            AtomicOp::FetchAdd { val } | AtomicOp::FetchMax { val } => {
                // RMWs read the latest store: C++ modification order.
                let old = st.locs[&addr].latest_val();
                let (newv, tag) = match op {
                    AtomicOp::FetchAdd { .. } => (old.wrapping_add(val), "fetch_add"),
                    _ => (old.max(val), "fetch_max"),
                };
                let idx = {
                    let ls = &st.locs[&addr];
                    ls.latest() + 1
                };
                if let Some(ls) = st.locs.get_mut(&addr) {
                    ls.entries.push_back(HistEntry {
                        val: newv,
                        vis: None,
                    });
                    while ls.entries.len() > max_history {
                        ls.entries.pop_front();
                        ls.base += 1;
                    }
                }
                bump_seen(&mut st.threads[me].seen, addr, idx);
                cell.store(newv, Ordering::Relaxed);
                let name = loc_alias(st, addr);
                self.note(st, me, format!("{tag}({name}, {val}) -> {old}"));
                old
            }
        }
    }

    fn note(&self, st: &mut ExecState, me: usize, desc: String) {
        st.trace.push(format!("t{me} {desc}"));
    }
}

fn ord_tag(ord: MemOrd) -> &'static str {
    match ord {
        MemOrd::Relaxed => "rlx",
        MemOrd::Acquire => "acq",
        MemOrd::Release => "rel",
    }
}

fn ensure_loc(st: &mut ExecState, addr: usize, cell: &RawAtomicU64) {
    if !st.locs.contains_key(&addr) {
        let alias = format!("x{}", st.locs.len());
        // Seed from the real cell: exactly the pre-execution value, so
        // model threads start with a single-entry history (spawn edge).
        let val = cell.load(Ordering::Relaxed);
        st.locs.insert(
            addr,
            LocState {
                base: 0,
                entries: VecDeque::from([HistEntry { val, vis: None }]),
                alias,
            },
        );
    }
}

fn ensure_mutex(st: &mut ExecState, loc: usize) {
    if !st.mutexes.contains_key(&loc) {
        let alias = format!("m{}", st.mutexes.len());
        st.mutexes.insert(
            loc,
            MutexState {
                held: false,
                vis: None,
                alias,
            },
        );
    }
}

fn loc_alias(st: &ExecState, addr: usize) -> String {
    st.locs
        .get(&addr)
        .map(|l| l.alias.clone())
        .unwrap_or_else(|| format!("{addr:#x}"))
}

fn mutex_alias(st: &ExecState, loc: usize) -> String {
    st.mutexes
        .get(&loc)
        .map(|m| m.alias.clone())
        .unwrap_or_else(|| format!("{loc:#x}"))
}

fn cv_alias(st: &mut ExecState, cv: usize) -> String {
    let n = st.cv_alias.len();
    st.cv_alias
        .entry(cv)
        .or_insert_with(|| format!("c{n}"))
        .clone()
}

impl ModelHooks for Runtime {
    fn atomic(&self, cell: &RawAtomicU64, op: AtomicOp) -> Option<u64> {
        if std::thread::panicking() {
            return None;
        }
        let me = current_tid()?;
        let st = self.st();
        if !st.active || me >= st.threads.len() {
            return None;
        }
        let addr = cell as *const RawAtomicU64 as usize;
        Some(self.park_exec(st, me, PendingOp::Atomic { addr, op }, Some(cell)))
    }

    fn mutex_lock(&self, loc: usize) -> bool {
        if std::thread::panicking() {
            return false;
        }
        let Some(me) = current_tid() else {
            return false;
        };
        let mut st = self.st();
        if !st.active || me >= st.threads.len() {
            return false;
        }
        ensure_mutex(&mut st, loc);
        self.park_exec(st, me, PendingOp::Lock { loc }, None);
        true
    }

    fn mutex_unlock(&self, loc: usize) -> bool {
        if std::thread::panicking() {
            return false;
        }
        let Some(me) = current_tid() else {
            return false;
        };
        let mut st = self.st();
        if !st.active || me >= st.threads.len() {
            return false;
        }
        ensure_mutex(&mut st, loc);
        self.park_exec(st, me, PendingOp::Unlock { loc }, None);
        true
    }

    fn condvar_wait_release(&self, cv: usize, mutex: usize) -> bool {
        if std::thread::panicking() {
            return false;
        }
        let Some(me) = current_tid() else {
            return false;
        };
        let mut st = self.st();
        if !st.active || me >= st.threads.len() {
            return false;
        }
        ensure_mutex(&mut st, mutex);
        let _ = cv_alias(&mut st, cv);
        self.park_exec(st, me, PendingOp::CvRelease { cv, mutex }, None);
        true
    }

    fn condvar_wait_reacquire(&self, cv: usize, mutex: usize) {
        if std::thread::panicking() {
            return;
        }
        let Some(me) = current_tid() else {
            return;
        };
        let mut st = self.st();
        if !st.active || me >= st.threads.len() {
            return;
        }
        // The notifier flips this thread's status to
        // Pending(CvReacquire); here we only park until granted, then
        // run the reacquire.
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.grant == Some(me) {
                break;
            }
            st = self.wait(st);
        }
        st.grant = None;
        let _ = self.execute(&mut st, me, PendingOp::CvReacquire { cv, mutex }, None);
    }

    fn condvar_notify(&self, cv: usize, all: bool) -> bool {
        if std::thread::panicking() {
            return false;
        }
        let Some(me) = current_tid() else {
            return false;
        };
        let mut st = self.st();
        if !st.active || me >= st.threads.len() {
            return false;
        }
        let _ = cv_alias(&mut st, cv);
        self.park_exec(st, me, PendingOp::CvNotify { cv, all }, None);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(loc: usize, write: bool) -> OpSig {
        OpSig {
            a: SigPart { loc, write },
            b: None,
        }
    }

    #[test]
    fn conflict_rules() {
        // Two loads of the same location commute.
        assert!(!conflicts(&sig(1, false), &sig(1, false)));
        // Load/store and store/store on one location conflict.
        assert!(conflicts(&sig(1, false), &sig(1, true)));
        assert!(conflicts(&sig(1, true), &sig(1, true)));
        // Different locations never conflict.
        assert!(!conflicts(&sig(1, true), &sig(2, true)));
        // Multi-part signatures (cv release touches mutex + condvar).
        let rel = OpSig {
            a: SigPart {
                loc: 7,
                write: true,
            },
            b: Some(SigPart {
                loc: 9,
                write: true,
            }),
        };
        assert!(conflicts(&rel, &sig(9, true)));
        assert!(conflicts(&rel, &sig(7, false)));
        assert!(!conflicts(&rel, &sig(8, true)));
    }

    #[test]
    fn seen_floors_are_monotone() {
        let mut seen = BTreeMap::new();
        bump_seen(&mut seen, 10, 3);
        bump_seen(&mut seen, 10, 1);
        assert_eq!(seen.get(&10), Some(&3));
        let mut vis = BTreeMap::new();
        vis.insert(10usize, 5u64);
        vis.insert(11usize, 2u64);
        join_seen(&mut seen, &vis);
        assert_eq!(seen.get(&10), Some(&5));
        assert_eq!(seen.get(&11), Some(&2));
    }

    #[test]
    fn passthrough_when_inactive() {
        // With no armed execution, every hook declines so wrappers fall
        // through to the real operation.
        let rt = global();
        let cell = RawAtomicU64::new(9);
        assert_eq!(
            rt.atomic(
                &cell,
                AtomicOp::Load {
                    ord: MemOrd::Relaxed
                }
            ),
            None
        );
        assert!(!rt.mutex_lock(0x1000));
        assert!(!rt.condvar_notify(0x2000, true));
    }
}
