//! The exploration driver: re-runs a scenario under the controlled
//! scheduler until the decision tree is exhausted (or the schedule
//! budget runs out), collecting a [`ModuleReport`].

use crate::report::{Expect, ModuleReport, Violation, VIOLATION_CAP};
use crate::runtime::{self, Options};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock};

/// While an exploration is live, every panic is part of the protocol —
/// `ModelAbort` unwinds on pruned paths, harness assertions become
/// violations via `catch_unwind` — so the default print-to-stderr hook
/// would emit thousands of spurious backtraces. Silence it for the
/// duration; panics outside explorations keep the default behavior.
static EXPLORING: AtomicBool = AtomicBool::new(false);

fn quiet_panics_while_exploring() {
    static INSTALL: OnceLock<()> = OnceLock::new();
    INSTALL.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !EXPLORING.load(Ordering::SeqCst) {
                default(info);
            }
        }));
    });
}

/// One model execution's thread set. The scenario closure spawns 2–3
/// bodies, then [`Sim::run`] executes them to completion under the
/// scheduler; driver-side assertions after `run` see the final state
/// (atomic cells mirror the model's latest values).
pub struct Sim {
    bodies: Vec<Box<dyn FnOnce() + Send + 'static>>,
    ran: bool,
}

impl Sim {
    fn new() -> Self {
        Self {
            bodies: Vec::new(),
            ran: false,
        }
    }

    /// Registers a model thread body. Spawn order fixes thread ids
    /// (`t0`, `t1`, ... in traces).
    pub fn spawn(&mut self, f: impl FnOnce() + Send + 'static) {
        self.bodies.push(Box::new(f));
    }

    /// Runs all registered bodies to completion under the scheduler.
    pub fn run(&mut self) {
        if self.ran || self.bodies.is_empty() {
            return;
        }
        self.ran = true;
        let rt = runtime::global();
        rt.arm(self.bodies.len());
        let handles: Vec<_> = self
            .bodies
            .drain(..)
            .enumerate()
            .map(|(i, body)| {
                // spp-lint: allow(l4-unbounded): model threads must be real OS threads the scheduler parks; the set is bounded by the scenario (2-3)
                std::thread::spawn(move || {
                    runtime::set_tid(Some(i));
                    let res = std::panic::catch_unwind(AssertUnwindSafe(body));
                    let rt = runtime::global();
                    rt.thread_done(i, res);
                    // Hold the thread alive until the driver grants its
                    // exit, so TLS teardown runs in deterministic tid
                    // order.
                    rt.wait_exit(i);
                    runtime::set_tid(None);
                })
            })
            .collect();
        rt.wait_all_finished();
        for (i, h) in handles.into_iter().enumerate() {
            rt.grant_exit(i);
            let _ = h.join();
        }
    }
}

/// Serializes explorations: the scheduler is a process-wide singleton
/// (hooks are installed once), so two modules cannot explore at once.
fn explore_lock() -> StdMutexGuard<'static, ()> {
    static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| StdMutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Explores every bounded interleaving of `scenario`.
///
/// The scenario closure is called once per schedule; it must be
/// deterministic apart from the instrumented operations (no wall-clock
/// or accumulated-global dependence), because the DFS replays recorded
/// decision prefixes and any divergence invalidates the exploration
/// (reported as an `internal:` violation rather than silently mangling
/// results). Driver-side panics after `Sim::run` — harness assertions on
/// final state — are recorded as violations of the current schedule.
pub fn explore<F>(name: &str, expect: Expect, opts: Options, scenario: F) -> ModuleReport
where
    F: Fn(&mut Sim),
{
    let _guard = explore_lock();
    quiet_panics_while_exploring();
    EXPLORING.store(true, Ordering::SeqCst);
    let rep = explore_inner(name, expect, opts, scenario);
    EXPLORING.store(false, Ordering::SeqCst);
    rep
}

fn explore_inner<F>(name: &str, expect: Expect, opts: Options, scenario: F) -> ModuleReport
where
    F: Fn(&mut Sim),
{
    let rt = runtime::global();
    rt.begin_module(opts);
    let mut rep = ModuleReport::new(name, expect);
    loop {
        let mut sim = Sim::new();
        let driver_res = std::panic::catch_unwind(AssertUnwindSafe(|| scenario(&mut sim)));
        if !sim.ran {
            rep.violation_count += 1;
            rep.violations.push(Violation {
                message: "harness bug: scenario returned without running its Sim".to_string(),
                trace: Vec::new(),
                schedule: rt.schedule_index(),
            });
            break;
        }
        let out = rt.finish_execution();
        if out.pruned {
            rep.pruned += 1;
        } else {
            rep.schedules += 1;
        }
        rep.states += out.ops;
        rep.max_depth = rep.max_depth.max(out.depth);
        rep.violation_count += out.violation_count;
        for v in out.violations {
            if rep.violations.len() < VIOLATION_CAP {
                rep.violations.push(v);
            }
        }
        if let Err(p) = driver_res {
            // Final-state checks are only meaningful for executions that
            // ran to completion: pruned or already-aborted paths abandon
            // the model threads mid-program, so their end state is
            // legitimately partial.
            if !out.pruned && out.violation_count == 0 {
                rep.violation_count += 1;
                if rep.violations.len() < VIOLATION_CAP {
                    rep.violations.push(Violation {
                        message: format!(
                            "final-state check failed: {}",
                            runtime::payload_str(p.as_ref())
                        ),
                        trace: out.trace,
                        schedule: rt.schedule_index().saturating_sub(1),
                    });
                }
            }
        }
        // Stop at the first violation: for mutants that is the goal; for
        // clean modules the report already fails and later executions
        // could run on state corrupted by the aborted one.
        if rep.violation_count > 0 {
            break;
        }
        if !rt.advance() {
            break;
        }
        if rep.schedules + rep.pruned >= opts.max_schedules {
            rep.truncated = true;
            break;
        }
    }
    rep
}
