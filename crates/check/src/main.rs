//! `spp-check` CLI — explores the model-check modules and reports
//! schedule/state counts and violations. Normally invoked through
//! `cargo xtask check-interleavings`, which builds this binary with
//! `RUSTFLAGS="--cfg spp_model_check"`; running a passthrough build is
//! an error (nothing would be intercepted), reported as exit code 2.
//!
//! Exit codes: 0 = all selected modules met their expectation (and, for
//! a full run, the exploration floor); 1 = a module failed or the floor
//! was missed; 2 = usage/build error.

use spp_check::harness::MODULES;
use spp_check::{Expect, Options};
use std::process::ExitCode;

/// A full run must explore at least this many completed schedules
/// across the clean modules — the checker's own liveness floor: a
/// regression that collapses the schedule tree (over-pruning, a stuck
/// scheduler) fails the gate even if nothing is "violated".
const MIN_TOTAL_SCHEDULES: u64 = 1000;

const USAGE: &str = "\
spp-check: workspace concurrency model checker

USAGE:
    spp-check [--module <name>]... [--max-schedules <n>] [--json] [--list]

OPTIONS:
    --module <name>       Explore only this module (repeatable)
    --max-schedules <n>   Per-module schedule budget (default 3000)
    --json                Machine-readable report on stdout
    --list                List module names and expectations, then exit
    --help                This text
";

struct Cli {
    modules: Vec<String>,
    max_schedules: Option<u64>,
    json: bool,
    list: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        modules: Vec::new(),
        max_schedules: None,
        json: false,
        list: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--module" | "-m" => {
                let v = it.next().ok_or("--module needs a name")?;
                cli.modules.push(v.clone());
            }
            "--max-schedules" => {
                let v = it.next().ok_or("--max-schedules needs a number")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("--max-schedules: not a number: {v}"))?;
                if n == 0 {
                    return Err("--max-schedules must be positive".to_string());
                }
                cli.max_schedules = Some(n);
            }
            "--json" => cli.json = true,
            "--list" => cli.list = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}\n\n{USAGE}")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("spp-check: {e}");
            return ExitCode::from(2);
        }
    };
    if cli.list {
        for m in MODULES {
            let kind = match m.expect {
                Expect::Clean => "clean",
                Expect::Caught => "mutant (must be caught)",
            };
            println!("{:<22} {kind}", m.name);
        }
        return ExitCode::SUCCESS;
    }
    if !cfg!(spp_model_check) {
        eprintln!(
            "spp-check: this binary was built without --cfg spp_model_check; \
             the spp-sync wrappers are passthroughs and nothing would be explored.\n\
             Run `cargo xtask check-interleavings` (or set \
             RUSTFLAGS=\"--cfg spp_model_check\" and rebuild)."
        );
        return ExitCode::from(2);
    }
    for name in &cli.modules {
        if !MODULES.iter().any(|m| m.name == *name) {
            let known: Vec<&str> = MODULES.iter().map(|m| m.name).collect();
            eprintln!(
                "spp-check: unknown module {name:?}; known modules: {}",
                known.join(", ")
            );
            return ExitCode::from(2);
        }
    }
    let selected: Vec<_> = MODULES
        .iter()
        .filter(|m| cli.modules.is_empty() || cli.modules.iter().any(|n| n == m.name))
        .collect();
    let full_run = cli.modules.is_empty();

    let opts = Options {
        max_schedules: cli.max_schedules.unwrap_or(3000),
        ..Options::default()
    };

    let mut reports = Vec::with_capacity(selected.len());
    for m in &selected {
        if !cli.json {
            eprintln!("exploring {} ...", m.name);
        }
        reports.push(m.run(opts));
    }

    let clean_schedules: u64 = reports
        .iter()
        .filter(|r| r.expect == Expect::Clean)
        .map(|r| r.schedules)
        .sum();
    let all_pass = reports.iter().all(|r| r.pass());
    let floor_met = !full_run || clean_schedules >= MIN_TOTAL_SCHEDULES;

    if cli.json {
        let mut out = String::from("{\"modules\":[");
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.render_json());
        }
        out.push_str(&format!(
            "],\"clean_schedules\":{clean_schedules},\"schedule_floor\":{},\"floor_met\":{floor_met},\"pass\":{}}}",
            if full_run { MIN_TOTAL_SCHEDULES } else { 0 },
            all_pass && floor_met,
        ));
        println!("{out}");
    } else {
        for r in &reports {
            print!("{}", r.render_text());
        }
        let states: u64 = reports.iter().map(|r| r.states).sum();
        println!(
            "total: {clean_schedules} clean schedules, {states} explored states; \
             floor {MIN_TOTAL_SCHEDULES}{}",
            if full_run {
                if floor_met {
                    " met"
                } else {
                    " NOT MET"
                }
            } else {
                " (skipped: partial run)"
            }
        );
        println!(
            "result: {}",
            if all_pass && floor_met {
                "PASS"
            } else {
                "FAIL"
            }
        );
    }

    if all_pass && floor_met {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
