//! The DFS decision stack driving systematic interleaving exploration.
//!
//! Every nondeterministic choice in one model execution — which thread
//! runs next, which (possibly stale) value a weak-memory load observes —
//! consumes one [`Branch`] from this stack. The first execution takes
//! choice 0 everywhere and records each branch's arity; subsequent
//! executions *replay* the recorded prefix, then
//! [`Decisions::advance`] bumps the deepest non-exhausted branch and
//! pops exhausted ones, enumerating the schedule tree depth-first
//! (loom-style stateless model checking: the program itself is re-run,
//! nothing is snapshotted).

/// One recorded choice point: `chosen` of `total` alternatives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Branch {
    /// Number of alternatives that existed at this point.
    pub total: u32,
    /// Alternative taken in the current execution.
    pub chosen: u32,
}

/// Replayable stack of choice points (see module docs).
#[derive(Debug, Default)]
pub struct Decisions {
    stack: Vec<Branch>,
    /// Next stack slot the running execution will consume.
    pos: usize,
}

impl Decisions {
    /// An empty stack (first execution takes choice 0 everywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Rewinds for a fresh execution; the recorded stack is replayed.
    pub fn begin(&mut self) {
        self.pos = 0;
    }

    /// Consumes the next choice point with `total ≥ 2` alternatives.
    /// Returns the chosen index, or `Err((expected, got))` when the
    /// replayed arity does not match the recorded one — which means the
    /// execution was not deterministic and the exploration is invalid.
    pub fn next(&mut self, total: usize) -> Result<usize, (usize, usize)> {
        debug_assert!(total >= 2, "singleton choices must not branch");
        if let Some(b) = self.stack.get(self.pos) {
            if b.total as usize != total {
                return Err((b.total as usize, total));
            }
            self.pos += 1;
            Ok(b.chosen as usize)
        } else {
            self.stack.push(Branch {
                total: total as u32,
                chosen: 0,
            });
            self.pos += 1;
            Ok(0)
        }
    }

    /// Choice points consumed by the current execution.
    pub fn depth(&self) -> usize {
        self.pos
    }

    /// Moves to the next unexplored path: truncates to what the last
    /// execution actually consumed (aborted/pruned runs stop early),
    /// then increments the deepest non-exhausted branch. Returns `false`
    /// when the whole tree has been explored.
    pub fn advance(&mut self) -> bool {
        self.stack.truncate(self.pos);
        while let Some(last) = self.stack.last_mut() {
            if last.chosen + 1 < last.total {
                last.chosen += 1;
                return true;
            }
            self.stack.pop();
        }
        false
    }

    /// Clears everything (new module).
    pub fn reset(&mut self) {
        self.stack.clear();
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walks a fixed-shape tree, returning every path as a vector of
    /// chosen indices.
    fn enumerate(shape: &[usize]) -> Vec<Vec<usize>> {
        let mut d = Decisions::new();
        let mut paths = Vec::new();
        loop {
            d.begin();
            let mut path = Vec::new();
            for &total in shape {
                match d.next(total) {
                    Ok(c) => path.push(c),
                    Err(_) => unreachable!("fixed shape cannot diverge"),
                }
            }
            paths.push(path);
            if !d.advance() {
                return paths;
            }
        }
    }

    #[test]
    fn enumerates_full_cartesian_product() {
        let paths = enumerate(&[2, 3]);
        assert_eq!(paths.len(), 6);
        assert_eq!(paths.first(), Some(&vec![0, 0]));
        assert_eq!(paths.last(), Some(&vec![1, 2]));
        // All distinct.
        let mut uniq = paths.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), paths.len());
    }

    #[test]
    fn depth_dependent_trees_terminate() {
        // The arity of later choices may depend on earlier ones (as
        // thread counts shrink when threads finish). Model that: first
        // choice of 2; path 0 has a further choice of 2, path 1 none.
        let mut d = Decisions::new();
        let mut paths = Vec::new();
        loop {
            d.begin();
            let mut path = Vec::new();
            let c = d.next(2).unwrap();
            path.push(c);
            if c == 0 {
                path.push(d.next(2).unwrap());
            }
            paths.push(path);
            if !d.advance() {
                break;
            }
        }
        assert_eq!(paths, vec![vec![0, 0], vec![0, 1], vec![1]]);
    }

    #[test]
    fn replay_divergence_is_reported() {
        let mut d = Decisions::new();
        d.begin();
        assert_eq!(d.next(3), Ok(0));
        assert!(d.advance());
        d.begin();
        // Same point now (incorrectly) claims 2 alternatives.
        assert_eq!(d.next(2), Err((3, 2)));
    }

    #[test]
    fn aborted_paths_truncate_cleanly() {
        let mut d = Decisions::new();
        d.begin();
        assert_eq!(d.next(2), Ok(0));
        assert_eq!(d.next(2), Ok(0));
        assert!(d.advance());
        d.begin();
        // This execution aborts after one choice; the stale deeper
        // branch must not leak into the next path.
        assert_eq!(d.next(2), Ok(0));
        assert!(d.advance());
        d.begin();
        // The abandoned subtree was dropped: the shallow branch itself
        // advances to its second alternative, and exploring it to
        // completion exhausts the tree.
        assert_eq!(d.next(2), Ok(1));
        assert!(!d.advance());
    }
}
