//! `spp-check`: the workspace concurrency model checker.
//!
//! Enumerates bounded-preemption interleavings — and, in weak-memory
//! mode, stale-but-permitted load results — of small closed-world
//! scenarios ("modules") over the `spp-sync` instrumented primitives,
//! asserting production invariants on every explored schedule. See
//! DESIGN.md §12 for how this fits the workspace's memory-ordering
//! discipline (lint rules L7/L8), and `crates/sync` for the
//! instrumentation layer itself.
//!
//! Two build modes:
//!
//! - **Normal** (`cargo build`): the `spp-sync` wrappers compile to
//!   passthroughs, nothing is intercepted, and each module degenerates
//!   to one real execution — a smoke test, exercised by tier-1 tests.
//! - **Instrumented** (`RUSTFLAGS="--cfg spp_model_check"`): every
//!   atomic/mutex/condvar operation yields to the controlled scheduler
//!   and the full schedule tree is explored. `cargo xtask
//!   check-interleavings` builds and runs this configuration.
//!
//! Architecture: [`decision`] holds the replayable DFS stack;
//! `runtime` (private) implements the scheduler and memory model as the
//! process-wide [`spp_sync::hook::ModelHooks`] sink; [`explore`] drives
//! repeated executions; [`harness`] defines the modules; [`report`]
//! renders per-module results as text or JSON.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod decision;
mod explore;
pub mod harness;
pub mod report;
mod runtime;

pub use explore::{explore, Sim};
pub use report::{Expect, ModuleReport, Violation};
pub use runtime::Options;
