//! The model-check harnesses: small closed-world scenarios over the
//! workspace's `spp-sync`-instrumented concurrency kernels.
//!
//! Clean modules encode production invariants that must hold on *every*
//! bounded interleaving (including weak-memory stale reads):
//!
//! - `telemetry-shards` — the real [`spp_telemetry::metrics::Counter`]
//!   hot path: per-thread shard increments merge to an exact total, and
//!   a concurrent merge never observes a torn partial increment.
//! - `overlay-probe` — the real
//!   [`spp_serve::overlay::DynamicOverlay::probe`]: every probe bumps
//!   exactly one of hits/misses exactly once.
//! - `span-ring` — the span event-ring kernel (bounded buffer under a
//!   mutex + relaxed sequence counter, as in `telemetry::span::push`):
//!   entries never tear, drops are accounted, per-thread order holds.
//! - `pool-queue` — the worker-pool merge queue (mutex-guarded part
//!   list + condvar completion handshake, as in `WorkerPool::run_jobs`):
//!   all jobs arrive exactly once and sort into index order.
//! - `publish-release` — release/acquire message passing: the control
//!   showing the weak-memory model *admits* correctly ordered code.
//!
//! Mutant modules carry a seeded bug and are expected to be **caught**
//! within the schedule bound — they prove the checker can actually see
//! the failure modes the lint gates (L7/L8) exist to prevent:
//!
//! - `mutant-weak-order` — the publish pattern with the release/acquire
//!   pair weakened to relaxed: the reader observes the flag but stale
//!   data.
//! - `mutant-double-count` — a load+store "increment": two threads race
//!   and an update is lost.
//!
//! Scenario closures re-run once per schedule and must be deterministic
//! apart from instrumented operations: no wall-clock reads, and no
//! control flow on values that accumulate across schedules (asserting
//! on *deltas* of cumulative metrics is fine — the decision arity does
//! not depend on the values).

use crate::explore::explore;
use crate::report::{Expect, ModuleReport};
use crate::runtime::Options;
use spp_sync::{AtomicU64, Condvar, Mutex};
use std::sync::Arc;

/// One runnable model-check module.
pub struct Module {
    /// CLI-addressable name.
    pub name: &'static str,
    /// Clean invariant harness or seeded-bug mutant.
    pub expect: Expect,
    runner: fn(Options) -> ModuleReport,
}

impl Module {
    /// Explores this module under `opts`.
    pub fn run(&self, opts: Options) -> ModuleReport {
        (self.runner)(opts)
    }
}

/// Every module, clean harnesses first.
pub const MODULES: &[Module] = &[
    Module {
        name: "telemetry-shards",
        expect: Expect::Clean,
        runner: telemetry_shards,
    },
    Module {
        name: "overlay-probe",
        expect: Expect::Clean,
        runner: overlay_probe,
    },
    Module {
        name: "span-ring",
        expect: Expect::Clean,
        runner: span_ring,
    },
    Module {
        name: "pool-queue",
        expect: Expect::Clean,
        runner: pool_queue,
    },
    Module {
        name: "publish-release",
        expect: Expect::Clean,
        runner: publish_release,
    },
    Module {
        name: "mutant-weak-order",
        expect: Expect::Caught,
        runner: mutant_weak_order,
    },
    Module {
        name: "mutant-double-count",
        expect: Expect::Caught,
        runner: mutant_double_count,
    },
];

/// The real telemetry counter hot path: two writer threads hit their
/// thread-local shards, a reader merges all shards mid-flight (three
/// times).
/// Each merged delta must always be a plausible pair of per-shard prefix
/// sums — `{1, 2}` from t0 (in order) plus `{4, 8}` from t1 — and the
/// final total exact.
fn telemetry_shards(opts: Options) -> ModuleReport {
    explore("telemetry-shards", Expect::Clean, opts, |sim| {
        spp_telemetry::metrics::set_enabled(true);
        let c = spp_telemetry::metrics::counter("check.model.shard_sum");
        let base = c.value();
        sim.spawn(move || {
            c.add(1);
            c.add(2);
        });
        sim.spawn(move || {
            c.add(4);
            c.add(8);
        });
        sim.spawn(move || {
            for _ in 0..3 {
                let v = c.value();
                assert!(v >= base, "merged total went backwards: {v} < {base}");
                let delta = v - base;
                // t0 contributes 0, 1 or 3 (adds are ordered on its
                // shard); t1 contributes 0, 4 or 12. Any other delta is a
                // torn read or a lost/duplicated increment.
                assert!(
                    matches!(delta, 0 | 1 | 3 | 4 | 5 | 7 | 12 | 13 | 15),
                    "impossible mid-merge delta {delta}"
                );
            }
        });
        sim.run();
        let total = c.value() - base;
        assert_eq!(total, 15, "shard merge lost or duplicated increments");
    })
}

/// The real overlay probe path: concurrent read-only probes; every probe
/// bumps exactly one tally exactly once.
fn overlay_probe(opts: Options) -> ModuleReport {
    explore("overlay-probe", Expect::Clean, opts, |sim| {
        let mut o = spp_serve::overlay::DynamicOverlay::new(2, 1);
        o.insert(1, &[1.0]);
        let o = Arc::new(o);
        let a = Arc::clone(&o);
        let b = Arc::clone(&o);
        let c = Arc::clone(&o);
        sim.spawn(move || {
            a.probe(1);
            a.probe(7);
            a.probe(1);
        });
        sim.spawn(move || {
            b.probe(1);
            b.probe(99);
            b.probe(42);
        });
        sim.spawn(move || {
            c.probe(1);
            c.probe(8);
            c.probe(1);
        });
        sim.run();
        let counters = o.counters();
        assert_eq!(
            (counters.hits, counters.misses),
            (5, 4),
            "probe tallies must be exact"
        );
    })
}

/// Bounded event ring under a mutex plus a relaxed sequence counter —
/// the `telemetry::span` push kernel with capacity 2.
struct Ring {
    inner: Mutex<RingBuf>,
    seq: AtomicU64,
}

#[derive(Default)]
struct RingBuf {
    events: Vec<u64>,
    dropped: u64,
}

impl Ring {
    fn push(&self, v: u64) {
        let mut g = self.inner.lock();
        if g.events.len() >= 2 {
            g.events.remove(0);
            g.dropped += 1;
        }
        g.events.push(v);
        drop(g);
        self.seq.fetch_add_relaxed(1); // spp-sync: relaxed(diagnostic tally; ring state is mutex-ordered)
    }
}

fn check_ring(events: &[u64], dropped: u64) {
    for &e in events {
        assert!((1..=4).contains(&e), "torn ring entry {e}");
    }
    let mut uniq = events.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(uniq.len(), events.len(), "duplicated ring entry");
    // Per-thread push order must survive eviction: t0 pushes 1 before 2,
    // t1 pushes 3 before 4.
    for pair in [(1, 2), (3, 4)] {
        if let (Some(i1), Some(i2)) = (
            events.iter().position(|&e| e == pair.0),
            events.iter().position(|&e| e == pair.1),
        ) {
            assert!(i1 < i2, "per-thread push order violated");
        }
    }
    assert!(events.len() as u64 + dropped <= 4, "ring over-counted");
}

fn span_ring(opts: Options) -> ModuleReport {
    explore("span-ring", Expect::Clean, opts, |sim| {
        let r = Arc::new(Ring {
            inner: Mutex::new(RingBuf::default()),
            seq: AtomicU64::new(0),
        });
        let a = Arc::clone(&r);
        let b = Arc::clone(&r);
        sim.spawn(move || {
            a.push(1);
            a.push(2);
        });
        sim.spawn(move || {
            b.push(3);
            b.push(4);
            let g = b.inner.lock();
            // seq lags the ring (incremented after unlock) and a stale
            // read only lowers it further; it can never lead.
            let seen = b.seq.load_relaxed(); // spp-sync: relaxed(bound check tolerates lag; mutex orders the ring itself)
            assert!(
                seen <= g.events.len() as u64 + g.dropped,
                "seq ran ahead of the ring"
            );
            check_ring(&g.events, g.dropped);
        });
        sim.run();
        let g = r.inner.lock();
        assert_eq!(g.events.len() as u64 + g.dropped, 4, "push lost");
        check_ring(&g.events, g.dropped);
        drop(g);
        assert_eq!(r.seq.load_relaxed(), 4); // spp-sync: relaxed(post-join read; model threads already exited)
    })
}

/// The worker-pool merge queue: workers push `(job_index, result)` parts
/// under a mutex and signal completion on a condvar; the consumer waits
/// for both workers, then the merged set must sort into exact index
/// order — `WorkerPool::run_jobs`' determinism contract.
struct Queue {
    state: Mutex<QState>,
    cv: Condvar,
}

#[derive(Default)]
struct QState {
    parts: Vec<(usize, u64)>,
    done_workers: usize,
}

impl Queue {
    fn finish(&self, parts: &[(usize, u64)]) {
        let mut g = self.state.lock();
        g.parts.extend_from_slice(parts);
        g.done_workers += 1;
        drop(g);
        self.cv.notify_all();
    }
}

fn pool_queue(opts: Options) -> ModuleReport {
    explore("pool-queue", Expect::Clean, opts, |sim| {
        let q = Arc::new(Queue {
            state: Mutex::new(QState::default()),
            cv: Condvar::new(),
        });
        let w0 = Arc::clone(&q);
        let w1 = Arc::clone(&q);
        let consumer = Arc::clone(&q);
        // Round-robin deal of 4 jobs across 2 workers, each delivering
        // its parts in two batches, as run_jobs does per job.
        sim.spawn(move || {
            w0.finish(&[(0, 0)]);
            w0.finish(&[(2, 20)]);
        });
        sim.spawn(move || {
            w1.finish(&[(1, 10)]);
            w1.finish(&[(3, 30)]);
        });
        sim.spawn(move || {
            let mut g = consumer.state.lock();
            while g.done_workers < 4 {
                g = consumer.cv.wait(g);
            }
            let mut merged = g.parts.clone();
            merged.sort_unstable_by_key(|&(i, _)| i);
            assert_eq!(
                merged,
                vec![(0, 0), (1, 10), (2, 20), (3, 30)],
                "merge queue lost, duplicated, or reordered a job"
            );
        });
        sim.run();
        let g = q.state.lock();
        assert_eq!(g.done_workers, 4);
        assert_eq!(g.parts.len(), 4);
    })
}

/// Release/acquire message passing — the control proving the weak-memory
/// model admits correctly ordered code: an acquire load that observes
/// the release store also observes everything published before it.
fn publish_release(opts: Options) -> ModuleReport {
    explore("publish-release", Expect::Clean, opts, |sim| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (dw, fw) = (Arc::clone(&data), Arc::clone(&flag));
        let (dr, fr) = (Arc::clone(&data), Arc::clone(&flag));
        sim.spawn(move || {
            // Two publish rounds: the flag is the round number.
            for round in 1..=2u64 {
                dw.store_relaxed(42 * round); // spp-sync: relaxed(ordered by the subsequent release store on flag)
                fw.store_release(round);
            }
        });
        sim.spawn(move || {
            for _ in 0..2 {
                let round = fr.load_acquire();
                if round > 0 {
                    let v = dr.load_relaxed(); // spp-sync: relaxed(happens-before established by the acquire on flag)
                    assert!(
                        v >= 42 * round,
                        "acquire saw round {round} but stale data {v}"
                    );
                }
            }
        });
        sim.run();
        assert_eq!(data.load_relaxed(), 84); // spp-sync: relaxed(post-join read; model threads already exited)
        assert_eq!(flag.load_relaxed(), 2); // spp-sync: relaxed(post-join read; model threads already exited)
    })
}

/// Seeded bug: the publish pattern with the release/acquire pair
/// weakened to relaxed. The weak-memory mode must produce the execution
/// where the reader sees the flag but stale data.
fn mutant_weak_order(opts: Options) -> ModuleReport {
    explore("mutant-weak-order", Expect::Caught, opts, |sim| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (dw, fw) = (Arc::clone(&data), Arc::clone(&flag));
        let (dr, fr) = (Arc::clone(&data), Arc::clone(&flag));
        sim.spawn(move || {
            dw.store_relaxed(42); // spp-sync: relaxed(seeded bug: publication requires release)
            fw.store_relaxed(1); // spp-sync: relaxed(seeded bug: publication requires release)
        });
        sim.spawn(move || {
            let seen = fr.load_relaxed(); // spp-sync: relaxed(seeded bug: pairing needs acquire)
            if seen == 1 {
                let v = dr.load_relaxed(); // spp-sync: relaxed(seeded bug: expected stale catch)
                assert_eq!(v, 42, "reader saw the flag but stale data");
            }
        });
        sim.run();
    })
}

/// Seeded bug: a load+store "increment" — two racing threads lose an
/// update on some interleaving; a plain preemption (no weak memory
/// needed) must catch it.
fn mutant_double_count(opts: Options) -> ModuleReport {
    explore("mutant-double-count", Expect::Caught, opts, |sim| {
        let c = Arc::new(AtomicU64::new(0));
        for _ in 0..2 {
            let c = Arc::clone(&c);
            sim.spawn(move || {
                let v = c.load_relaxed(); // spp-sync: relaxed(seeded bug: read-modify-write split into load+store)
                c.store_relaxed(v + 1); // spp-sync: relaxed(seeded bug: read-modify-write split into load+store)
            });
        }
        sim.run();
        let total = c.load_relaxed(); // spp-sync: relaxed(post-join read; model threads already exited)
        assert_eq!(total, 2, "increment lost");
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Without `--cfg spp_model_check` the wrappers are passthroughs and
    /// each module degenerates to a single real execution — the clean
    /// invariants must still hold there (tier-1 smoke of the harness
    /// plumbing; the actual exploration is exercised by
    /// `cargo xtask check-interleavings`).
    #[test]
    fn clean_harnesses_hold_uninstrumented() {
        if cfg!(spp_model_check) {
            return;
        }
        for m in MODULES.iter().filter(|m| m.expect == Expect::Clean) {
            let rep = m.run(Options::default());
            assert!(rep.pass(), "{}: {:#?}", m.name, rep.violations);
            assert_eq!(rep.schedules, 1, "{}", m.name);
            assert_eq!(rep.states, 0, "{}: no instrumented ops expected", m.name);
        }
    }

    #[test]
    fn module_names_are_unique() {
        let mut names: Vec<_> = MODULES.iter().map(|m| m.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
