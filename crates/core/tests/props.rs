//! Property-based tests for VIP analysis, caching, and the feature store.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use proptest::prelude::*;
use spp_core::feature_store::{FeatureLocation, PartitionedFeatureStore};
use spp_core::{CacheBuilder, ReorderedLayout, StaticCache, SweepStrategy, VipModel};
use spp_graph::generate::GeneratorConfig;
use spp_graph::{FeatureMatrix, VertexId};
use spp_partition::simple::block_partition;
use spp_pool::WorkerPool;
use spp_sampler::Fanouts;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vip_values_are_probabilities(
        n in 8usize..128,
        m in 1usize..500,
        f1 in 1usize..10,
        f2 in 1usize..10,
        batch in 1usize..16,
        train_len in 1usize..32,
        seed in 0u64..500,
    ) {
        let g = GeneratorConfig::erdos_renyi(n, m).seed(seed).build();
        let train: Vec<VertexId> = (0..train_len.min(n) as u32).collect();
        let p = VipModel::new(Fanouts::new(vec![f1, f2]), batch).scores(&g, &train);
        prop_assert_eq!(p.len(), n);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x) && x.is_finite()));
    }

    #[test]
    fn vip_monotone_in_fanout(
        n in 16usize..96,
        m in 10usize..400,
        f in 1usize..6,
        seed in 0u64..200,
    ) {
        let g = GeneratorConfig::erdos_renyi(n, m).seed(seed).build();
        let train: Vec<VertexId> = (0..(n / 4).max(1) as u32).collect();
        let small = VipModel::new(Fanouts::new(vec![f, f]), 4).scores(&g, &train);
        let large = VipModel::new(Fanouts::new(vec![f + 2, f + 2]), 4).scores(&g, &train);
        for (s, l) in small.iter().zip(&large) {
            prop_assert!(l >= &(s - 1e-12));
        }
    }

    #[test]
    fn vip_hop_scores_are_probabilities(
        n in 8usize..96,
        m in 1usize..400,
        f1 in 1usize..8,
        f2 in 1usize..8,
        batch in 1usize..12,
        seed in 0u64..300,
    ) {
        let g = GeneratorConfig::erdos_renyi(n, m).seed(seed).build();
        let train: Vec<VertexId> = (0..(n / 3).max(1) as u32).collect();
        let model = VipModel::new(Fanouts::new(vec![f1, f2]), batch);
        let p0 = model.initial_probabilities(n, &train);
        for hop in model.hop_scores(&g, &p0) {
            prop_assert_eq!(hop.len(), n);
            prop_assert!(hop.iter().all(|&x| (0.0..=1.0).contains(&x) && x.is_finite()));
        }
    }

    #[test]
    fn vip_monotone_in_batch_size(
        n in 16usize..96,
        m in 10usize..400,
        batch in 1usize..12,
        extra in 1usize..8,
        seed in 0u64..200,
    ) {
        let g = GeneratorConfig::erdos_renyi(n, m).seed(seed).build();
        let train: Vec<VertexId> = (0..(n / 4).max(2) as u32).collect();
        let fanouts = Fanouts::new(vec![3, 3]);
        let small = VipModel::new(fanouts.clone(), batch).scores(&g, &train);
        let large = VipModel::new(fanouts, batch + extra).scores(&g, &train);
        // A larger minibatch can only raise each vertex's chance of
        // appearing in the sampled neighborhood.
        for (s, l) in small.iter().zip(&large) {
            prop_assert!(l >= &(s - 1e-12), "batch monotonicity violated: {s} > {l}");
        }
    }

    #[test]
    fn vip_deterministic_across_shuffled_adjacency(
        n in 8usize..64,
        m in 1usize..300,
        rot in 1usize..977,
        seed in 0u64..200,
    ) {
        // Present the same edge set in a different order; the CSR build
        // canonicalizes (sorted rows, deduped), so VIP scores must be
        // bit-identical — replicas that ingest differently-ordered edge
        // lists must agree on cache rankings.
        let g = GeneratorConfig::erdos_renyi(n, m).seed(seed).build();
        let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
        let mut b = spp_graph::GraphBuilder::with_capacity(n, edges.len());
        let shift = rot % edges.len().max(1);
        for &(src, dst) in edges[shift..].iter().chain(&edges[..shift]).rev() {
            b.add_edge(src, dst);
        }
        let g2 = b.build();
        prop_assert_eq!(&g, &g2);
        let train: Vec<VertexId> = (0..(n / 3).max(1) as u32).collect();
        let model = VipModel::new(Fanouts::new(vec![4, 2]), 4);
        let p1 = model.scores(&g, &train);
        let p2 = model.scores(&g2, &train);
        // Bit-exact, not approximately equal: the sweep must not depend
        // on input presentation order.
        prop_assert!(p1.iter().zip(&p2).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn hop_zero_probability_only_on_train(
        n in 8usize..64,
        batch in 1usize..8,
        train_len in 1usize..16,
    ) {
        let model = VipModel::new(Fanouts::new(vec![3]), batch);
        let train: Vec<VertexId> = (0..train_len.min(n) as u32).collect();
        let p0 = model.initial_probabilities(n, &train);
        for v in 0..n as u32 {
            if train.contains(&v) {
                prop_assert!(p0[v as usize] > 0.0);
            } else {
                prop_assert_eq!(p0[v as usize], 0.0);
            }
        }
    }

    #[test]
    fn cache_capacity_never_exceeded(
        alpha in 0.0f64..2.0,
        n in 8usize..256,
        k in 1usize..9,
        ranking_len in 0usize..128,
    ) {
        let builder = CacheBuilder::new(alpha, n, k);
        let ranking: Vec<VertexId> = (0..ranking_len as u32).collect();
        let cache = builder.build(&ranking);
        prop_assert!(cache.len() <= builder.capacity());
        prop_assert!(cache.len() <= ranking.len());
        // Members are exactly the top prefix.
        for (i, &v) in cache.members().iter().enumerate() {
            prop_assert_eq!(v as usize, i);
        }
    }

    #[test]
    fn store_locations_partition_all_vertices(
        n in 12usize..96,
        k in 2usize..5,
        beta in 0.0f64..1.0,
        cache_size in 0usize..16,
    ) {
        let part = block_partition(n, k);
        let layout = ReorderedLayout::build(&part, None);
        let feats = FeatureMatrix::zeros(n, 4);
        // Cache the first `cache_size` non-local vertices for machine 0.
        let remote: Vec<VertexId> = (0..n as u32)
            .filter(|&v| !layout.is_local(v, 0))
            .take(cache_size)
            .collect();
        let store = PartitionedFeatureStore::build(
            0,
            &layout,
            &feats,
            beta,
            StaticCache::from_members(&remote),
        );
        let mut counts = [0usize; 4];
        for v in 0..n as u32 {
            match store.locate(v) {
                FeatureLocation::LocalGpu => counts[0] += 1,
                FeatureLocation::LocalCpu => counts[1] += 1,
                FeatureLocation::Cached => counts[2] += 1,
                FeatureLocation::Remote(owner) => {
                    prop_assert_eq!(owner, layout.owner_of(v));
                    prop_assert!(owner != 0);
                    counts[3] += 1;
                }
            }
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), n);
        prop_assert_eq!(counts[0] + counts[1], layout.part_range(0).len());
        prop_assert_eq!(counts[2], remote.len());
        prop_assert_eq!(counts[0], layout.gpu_rows(0, beta));
    }

    #[test]
    fn reorder_is_partition_major_for_any_assignment(
        assignment in prop::collection::vec(0u32..4, 8..64),
    ) {
        let part = spp_partition::Partitioning::new(assignment.clone(), 4);
        let layout = ReorderedLayout::build(&part, None);
        for old in 0..assignment.len() as u32 {
            let new = layout.perm().to_new(old);
            prop_assert_eq!(layout.owner_of(new), part.part_of(old));
        }
        // Offsets consistent with part sizes.
        for p in 0..4u32 {
            prop_assert_eq!(layout.part_range(p).len(), part.members(p).len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The frontier-sparse sweep is an exact evaluation-order-preserving
    /// subset of the dense sweep: for any graph, fanouts, train set, and
    /// worker count, every hop vector matches the serial dense sweep
    /// bit for bit.
    #[test]
    fn frontier_sparse_sweep_matches_dense_bitwise(
        n in 8usize..160,
        m in 1usize..600,
        f1 in 1usize..8,
        f2 in 1usize..8,
        batch in 1usize..16,
        train_len in 1usize..24,
        workers in 1usize..8,
        seed in 0u64..1000,
    ) {
        let g = GeneratorConfig::erdos_renyi(n, m).seed(seed).build();
        let train: Vec<VertexId> = (0..train_len.min(n) as u32).collect();
        let model = VipModel::new(Fanouts::new(vec![f1, f2]), batch);
        let p0 = model.initial_probabilities(n, &train);
        let dense = model.hop_scores_with(
            WorkerPool::serial(), &g, &p0, SweepStrategy::Dense);
        let sparse = model.hop_scores_with(
            WorkerPool::new(workers), &g, &p0, SweepStrategy::FrontierSparse);
        prop_assert_eq!(dense.len(), sparse.len());
        for (a, b) in dense.iter().zip(&sparse) {
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
            }
        }
    }
}
