//! §9 bit-identity regression: worker count must never change results.
//!
//! `SPP_POOL_WORKERS` is read once per process (see `WorkerPool::global`),
//! so the 1/2/8-worker sweep uses explicit pools — the exact code path the
//! env knob selects — and asserts the full VIP → ranking → cache pipeline
//! is bit-identical at every width. This is the dynamic counterpart of the
//! static `cargo xtask audit-determinism` gate (DESIGN §17).

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use spp_core::{CacheBuilder, SweepStrategy, VipModel};
use spp_graph::generate::GeneratorConfig;
use spp_graph::VertexId;
use spp_pool::WorkerPool;
use spp_sampler::Fanouts;

/// Descending-score ranking with id tiebreak, the order `rank_by_scores`
/// uses (without the remote-vertex filter, irrelevant here).
fn ranking_of(scores: &[f64]) -> Vec<VertexId> {
    let mut ids: Vec<VertexId> = (0..scores.len() as VertexId)
        .filter(|&v| scores[v as usize] > 0.0)
        .collect();
    ids.sort_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(a.cmp(&b))
    });
    ids
}

#[test]
fn vip_ranking_and_cache_members_identical_across_worker_counts() {
    let n = 400;
    let g = GeneratorConfig::erdos_renyi(n, 2400).seed(17).build();
    let train: Vec<VertexId> = (0..80).collect();
    let model = VipModel::new(Fanouts::new(vec![10, 5]), 8);
    let builder = CacheBuilder::new(0.25, n, 4);

    let base_scores = model.scores_with(WorkerPool::new(1), &g, &train, SweepStrategy::Auto);
    let base_cache = builder.build(&ranking_of(&base_scores));
    assert!(!base_cache.is_empty(), "degenerate fixture: empty cache");

    for workers in [2usize, 8] {
        let scores = model.scores_with(WorkerPool::new(workers), &g, &train, SweepStrategy::Auto);
        for (v, (a, b)) in base_scores.iter().zip(&scores).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "score of vertex {v} diverged at {workers} workers: {a} vs {b}"
            );
        }
        let cache = builder.build(&ranking_of(&scores));
        assert_eq!(
            base_cache.members(),
            cache.members(),
            "cache membership diverged at {workers} workers"
        );
        for v in 0..n as VertexId {
            assert_eq!(base_cache.slot_of(v), cache.slot_of(v), "slot of {v}");
        }
    }
}

#[test]
fn frontier_sparse_and_dense_strategies_agree_at_every_width() {
    let g = GeneratorConfig::erdos_renyi(200, 900).seed(5).build();
    let train: Vec<VertexId> = (0..40).collect();
    let model = VipModel::new(Fanouts::new(vec![6, 4]), 4);
    let dense = model.scores_with(WorkerPool::new(1), &g, &train, SweepStrategy::Dense);
    for workers in [1usize, 2, 8] {
        for strategy in [SweepStrategy::Dense, SweepStrategy::FrontierSparse] {
            let p = model.scores_with(WorkerPool::new(workers), &g, &train, strategy);
            assert!(dense
                .iter()
                .zip(&p)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }
}
