//! The paper's core contribution: vertex-inclusion-probability (VIP)
//! analysis and the caching/ordering machinery built on it.
//!
//! - [`vip`] — the analytical VIP model of Proposition 1 for node-wise
//!   sampling: the probability that each graph vertex appears in the
//!   sampled L-hop expanded neighborhood of a minibatch.
//! - [`policies`] — the full set of static caching policies compared in
//!   the paper's Figure 2: degree, 1-hop halo, weighted reverse PageRank,
//!   path counting, empirical simulation, analytic VIP, and the
//!   retrospective oracle.
//! - [`cache`] — static remote-feature caches sized by a replication
//!   factor α (cache holds the top `αN/K` remote vertices by policy rank).
//! - [`reorder`] — the two-level vertex ordering of §4.1
//!   (partition-major, VIP-descending within each partition) enabling
//!   constant-memory locality tests and GPU-prefix placement.
//! - [`feature_store`] — the per-machine partitioned feature store with a
//!   GPU/CPU tier split, a remote cache, and batch classification of MFG
//!   vertices into local-GPU / local-CPU / cached / remote.
//!
//! # Example
//!
//! ```
//! use spp_core::vip::VipModel;
//! use spp_graph::generate::ring_with_chords;
//! use spp_sampler::Fanouts;
//!
//! let g = ring_with_chords(64, 5);
//! let train: Vec<u32> = (0..8).collect();
//! let p = VipModel::new(Fanouts::new(vec![3, 3]), 4).scores(&g, &train);
//! assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
//! assert!(p[0] > 0.0);
//! ```

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]
// Index-based loops over multiple parallel arrays are used deliberately
// throughout (CSR sweeps, per-partition load vectors); iterator zips would
// obscure which array drives the bound.
#![allow(clippy::needless_range_loop)]

pub mod cache;
pub mod feature_store;
pub mod policies;
pub mod reorder;
pub mod vip;
pub mod vip_general;
pub mod vip_partition;

pub use cache::{CacheBuilder, StaticCache};

/// Clamps a computed probability into `[0, 1]`.
///
/// Proposition 1 guarantees `p ∈ [0, 1]` analytically, but the log-space
/// evaluation (`1 - exp(Σ ln_1p(-x))`) can escape the interval by a few
/// ulps; every probability store in the VIP modules routes through this
/// (enforced by `cargo xtask lint` rule `l5-prob-clamp`).
#[inline]
#[must_use]
pub fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}
pub use feature_store::{BatchPlan, FeatureLocation, PartitionedFeatureStore};
pub use policies::{CachePolicy, PolicyContext};
pub use reorder::ReorderedLayout;
pub use vip::{SweepStrategy, VipModel};
