//! Two-level vertex ordering (paper §4.1).
//!
//! The graph is reordered so that (a) each partition's vertices are
//! contiguous and (b) within a partition, vertices appear in descending
//! local-VIP order. Locality tests and owner lookups then become index
//! comparisons against `K+1` offsets (constant additional memory), and a
//! machine's GPU simply holds a *prefix* of its local feature rows.

use spp_graph::{Permutation, VertexId};
use spp_partition::Partitioning;

/// The partition-major, VIP-sorted vertex layout.
///
/// # Example
///
/// ```
/// use spp_core::ReorderedLayout;
/// use spp_partition::Partitioning;
///
/// let part = Partitioning::new(vec![1, 0, 1, 0], 2);
/// let layout = ReorderedLayout::build(&part, None);
/// // Partition 0 owns new ids 0..2, partition 1 owns 2..4.
/// assert_eq!(layout.owner_of(0), 0);
/// assert_eq!(layout.owner_of(3), 1);
/// assert_eq!(layout.part_range(1), 2..4);
/// ```
#[derive(Clone, Debug)]
pub struct ReorderedLayout {
    perm: Permutation,
    part_offsets: Vec<usize>,
}

impl ReorderedLayout {
    /// Builds the layout. `local_scores`, if given, supplies each
    /// partition's ranking score for its *own* vertices (indexed by old
    /// vertex id); vertices are placed in descending score order within
    /// their partition ("VIP reorder"). With `None`, the original id
    /// order is kept within each partition ("no reorder" in Figure 6).
    ///
    /// # Panics
    ///
    /// Panics if `local_scores` is present with the wrong shape.
    pub fn build(partitioning: &Partitioning, local_scores: Option<&[Vec<f64>]>) -> Self {
        let n = partitioning.num_vertices();
        let k = partitioning.num_parts();
        if let Some(s) = local_scores {
            assert_eq!(s.len(), k, "need one score vector per partition");
            for sv in s {
                assert_eq!(sv.len(), n, "score vector size mismatch");
            }
        }

        let mut order: Vec<VertexId> = Vec::with_capacity(n);
        let mut part_offsets = Vec::with_capacity(k + 1);
        part_offsets.push(0usize);
        for p in 0..k as u32 {
            let mut members = partitioning.members(p);
            if let Some(scores) = local_scores {
                let sv = &scores[p as usize];
                members.sort_by(|&a, &b| sv[b as usize].total_cmp(&sv[a as usize]).then(a.cmp(&b)));
            }
            order.extend_from_slice(&members);
            part_offsets.push(order.len());
        }

        Self {
            perm: Permutation::from_order(order),
            part_offsets,
        }
    }

    /// The vertex permutation (old id → new id).
    pub fn perm(&self) -> &Permutation {
        &self.perm
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.part_offsets.len() - 1
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.part_offsets.last().copied().unwrap_or(0)
    }

    /// The partition owning a *new* vertex id (binary search over K+1
    /// offsets).
    #[inline]
    pub fn owner_of(&self, new_id: VertexId) -> u32 {
        debug_assert!((new_id as usize) < self.num_vertices());
        (self.part_offsets.partition_point(|&o| o <= new_id as usize) - 1) as u32
    }

    /// The new-id range a partition owns.
    pub fn part_range(&self, p: u32) -> std::ops::Range<usize> {
        self.part_offsets[p as usize]..self.part_offsets[p as usize + 1]
    }

    /// True if new id `v` belongs to partition `p` — two comparisons, the
    /// constant-memory locality test of §4.1.
    #[inline]
    pub fn is_local(&self, new_id: VertexId, p: u32) -> bool {
        let v = new_id as usize;
        v >= self.part_offsets[p as usize] && v < self.part_offsets[p as usize + 1]
    }

    /// Local index of a new id within its owner's range.
    #[inline]
    pub fn local_index(&self, new_id: VertexId) -> usize {
        new_id as usize - self.part_offsets[self.owner_of(new_id) as usize]
    }

    /// Number of partition `p`'s vertices resident on GPU when a fraction
    /// `beta` of local features is kept there (the GPU holds the prefix).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= beta <= 1`.
    pub fn gpu_rows(&self, p: u32, beta: f64) -> usize {
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
        let len = self.part_range(p).len();
        (len as f64 * beta).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_major_contiguity() {
        let part = Partitioning::new(vec![2, 0, 1, 0, 2, 1], 3);
        let layout = ReorderedLayout::build(&part, None);
        // Sizes: p0 = {1,3}, p1 = {2,5}, p2 = {0,4}.
        assert_eq!(layout.part_range(0), 0..2);
        assert_eq!(layout.part_range(1), 2..4);
        assert_eq!(layout.part_range(2), 4..6);
        // Every old vertex maps into its partition's range.
        for old in 0..6u32 {
            let new = layout.perm().to_new(old);
            assert_eq!(layout.owner_of(new), part.part_of(old));
        }
    }

    #[test]
    fn vip_scores_sort_within_partition() {
        let part = Partitioning::new(vec![0, 0, 0, 1, 1], 2);
        // Scores for partition 0's own vertices: v2 > v0 > v1.
        let s0 = vec![0.5, 0.1, 0.9, 0.0, 0.0];
        let s1 = vec![0.0, 0.0, 0.0, 0.2, 0.7];
        let layout = ReorderedLayout::build(&part, Some(&[s0, s1]));
        assert_eq!(layout.perm().to_new(2), 0);
        assert_eq!(layout.perm().to_new(0), 1);
        assert_eq!(layout.perm().to_new(1), 2);
        assert_eq!(layout.perm().to_new(4), 3);
        assert_eq!(layout.perm().to_new(3), 4);
    }

    #[test]
    fn is_local_matches_owner() {
        let part = Partitioning::new(vec![0, 1, 0, 1], 2);
        let layout = ReorderedLayout::build(&part, None);
        for v in 0..4u32 {
            let owner = layout.owner_of(v);
            assert!(layout.is_local(v, owner));
            assert!(!layout.is_local(v, 1 - owner));
        }
    }

    #[test]
    fn local_index_within_range() {
        let part = Partitioning::new(vec![0, 1, 0, 1, 1], 2);
        let layout = ReorderedLayout::build(&part, None);
        for v in 0..5u32 {
            let li = layout.local_index(v);
            assert!(li < layout.part_range(layout.owner_of(v)).len());
        }
    }

    #[test]
    fn gpu_rows_fractions() {
        let part = Partitioning::new(vec![0; 10], 1);
        let layout = ReorderedLayout::build(&part, None);
        assert_eq!(layout.gpu_rows(0, 0.0), 0);
        assert_eq!(layout.gpu_rows(0, 0.5), 5);
        assert_eq!(layout.gpu_rows(0, 1.0), 10);
    }

    #[test]
    #[should_panic(expected = "beta must be in [0,1]")]
    fn gpu_rows_validates_beta() {
        let part = Partitioning::new(vec![0], 1);
        ReorderedLayout::build(&part, None).gpu_rows(0, 1.5);
    }
}
