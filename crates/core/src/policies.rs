//! Static caching policies compared in the paper's Figure 2.
//!
//! Every policy produces, for one partition, a ranking of the *remote*
//! vertices in descending priority; a cache of replication factor α then
//! keeps the top `αN/K` (see [`crate::cache`]). Rankings are computed per
//! partition (paper footnote 1), not from a single global score.

use crate::vip::VipModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_graph::{CsrGraph, VertexId};
use spp_partition::Partitioning;
use spp_sampler::{Fanouts, MinibatchIter, NodeWiseSampler};

/// Which caching policy to use for ranking remote vertices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CachePolicy {
    /// No caching at all (the communication upper bound).
    None,
    /// "deg.": degree ranking over remote vertices reachable within L hops
    /// of the partition's training set (Lin et al., 2020 / PaGraph).
    Degree,
    /// "1-hop": the partition's 1-hop halo, ranked by degree within it.
    OneHopHalo,
    /// "wPR": 5 iterations of weighted reverse PageRank with damping 0.85,
    /// seeded at the partition's training vertices (Min et al., 2021).
    WeightedReversePagerank,
    /// "#paths": number of paths of length ≤ L from any local training
    /// vertex.
    NumPaths,
    /// "sim.": empirical VIP estimates from counting accesses over a small
    /// number of simulated sampling epochs (Yang et al., 2022 / GNNLab).
    Simulation,
    /// "VIP": the analytic model of Proposition 1.
    VipAnalytic,
    /// "oracle": retrospective ranking by the actual access counts of the
    /// measured run (communication lower bound).
    Oracle,
}

impl CachePolicy {
    /// All policies, in the order Figure 2 lists them.
    pub const ALL: [CachePolicy; 8] = [
        CachePolicy::None,
        CachePolicy::Degree,
        CachePolicy::OneHopHalo,
        CachePolicy::WeightedReversePagerank,
        CachePolicy::NumPaths,
        CachePolicy::Simulation,
        CachePolicy::VipAnalytic,
        CachePolicy::Oracle,
    ];

    /// The short label used in the paper's figure.
    pub fn label(&self) -> &'static str {
        match self {
            CachePolicy::None => "none",
            CachePolicy::Degree => "deg.",
            CachePolicy::OneHopHalo => "1-hop",
            CachePolicy::WeightedReversePagerank => "wPR",
            CachePolicy::NumPaths => "#paths",
            CachePolicy::Simulation => "sim.",
            CachePolicy::VipAnalytic => "VIP",
            CachePolicy::Oracle => "oracle",
        }
    }
}

/// Everything a policy needs to rank one partition's remote vertices.
///
/// # Example
///
/// ```
/// use spp_core::policies::{CachePolicy, PolicyContext};
/// use spp_graph::generate::GeneratorConfig;
/// use spp_partition::simple::block_partition;
/// use spp_sampler::Fanouts;
///
/// let g = GeneratorConfig::erdos_renyi(60, 300).seed(2).build();
/// let part = block_partition(60, 2);
/// let train: Vec<u32> = (0..10).collect();
/// let ctx = PolicyContext {
///     graph: &g,
///     partitioning: &part,
///     part: 0,
///     local_train: &train,
///     fanouts: Fanouts::new(vec![3, 3]),
///     batch_size: 4,
///     seed: 1,
///     oracle_counts: &[],
/// };
/// let ranking = ctx.rank(CachePolicy::VipAnalytic);
/// // Only partition 1's vertices can be cached by partition 0.
/// assert!(ranking.iter().all(|&v| part.part_of(v) == 1));
/// ```
#[derive(Clone, Debug)]
pub struct PolicyContext<'a> {
    /// The full (symmetric) graph.
    pub graph: &'a CsrGraph,
    /// The partitioning.
    pub partitioning: &'a Partitioning,
    /// The partition this ranking is for.
    pub part: u32,
    /// This partition's training vertices.
    pub local_train: &'a [VertexId],
    /// Sampling fanouts.
    pub fanouts: Fanouts,
    /// Minibatch size.
    pub batch_size: usize,
    /// Seed for stochastic policies (simulation).
    pub seed: u64,
    /// For [`CachePolicy::Oracle`]: measured per-vertex access counts of
    /// the evaluation run itself (empty otherwise).
    pub oracle_counts: &'a [u64],
}

impl PolicyContext<'_> {
    /// Ranks this partition's remote vertices in descending cache
    /// priority under `policy`. [`CachePolicy::None`] returns an empty
    /// ranking.
    pub fn rank(&self, policy: CachePolicy) -> Vec<VertexId> {
        match policy {
            CachePolicy::None => Vec::new(),
            CachePolicy::Degree => self.rank_by_scores(&self.degree_reachable_scores()),
            CachePolicy::OneHopHalo => self.rank_by_scores(&self.one_hop_scores()),
            CachePolicy::WeightedReversePagerank => self.rank_by_scores(&self.wpr_scores(5, 0.85)),
            CachePolicy::NumPaths => self.rank_by_scores(&self.num_paths_scores()),
            CachePolicy::Simulation => self.rank_by_scores(&self.simulation_scores(2)),
            CachePolicy::VipAnalytic => self.rank_by_scores(&self.vip_scores()),
            CachePolicy::Oracle => {
                assert_eq!(
                    self.oracle_counts.len(),
                    self.graph.num_vertices(),
                    "oracle requires measured access counts"
                );
                let scores: Vec<f64> = self.oracle_counts.iter().map(|&c| c as f64).collect();
                self.rank_by_scores(&scores)
            }
        }
    }

    /// Sorts remote vertices by score (descending, stable by id), dropping
    /// zero-score vertices (they were never predicted to be touched).
    pub fn rank_by_scores(&self, scores: &[f64]) -> Vec<VertexId> {
        assert_eq!(
            scores.len(),
            self.graph.num_vertices(),
            "score size mismatch"
        );
        let mut remote: Vec<VertexId> = (0..self.graph.num_vertices() as VertexId)
            .filter(|&v| self.partitioning.part_of(v) != self.part && scores[v as usize] > 0.0)
            .collect();
        remote.sort_by(|&a, &b| {
            scores[b as usize]
                .total_cmp(&scores[a as usize])
                .then(a.cmp(&b))
        });
        remote
    }

    /// Analytic VIP scores for this partition.
    pub fn vip_scores(&self) -> Vec<f64> {
        VipModel::new(self.fanouts.clone(), self.batch_size).scores(self.graph, self.local_train)
    }

    /// Degree scores masked to vertices reachable within L hops of the
    /// local training set.
    pub fn degree_reachable_scores(&self) -> Vec<f64> {
        let reach = self.reachable_within(self.fanouts.num_hops());
        (0..self.graph.num_vertices())
            .map(|v| {
                if reach[v] {
                    self.graph.degree(v as VertexId) as f64
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Degree scores masked to the partition's 1-hop halo.
    pub fn one_hop_scores(&self) -> Vec<f64> {
        let n = self.graph.num_vertices();
        let mut in_halo = vec![false; n];
        for v in 0..n as VertexId {
            if self.partitioning.part_of(v) != self.part {
                continue;
            }
            for &u in self.graph.neighbors(v) {
                if self.partitioning.part_of(u) != self.part {
                    in_halo[u as usize] = true;
                }
            }
        }
        (0..n)
            .map(|v| {
                if in_halo[v] {
                    // Rank within the halo by degree; +1 keeps degree-0
                    // halo members above the zero-score cutoff.
                    self.graph.degree(v as VertexId) as f64 + 1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Weighted reverse-PageRank scores: `iters` power iterations of
    /// `x ← (1-d)·s + d·Aᵀ D⁻¹ x` seeded at the local training set.
    pub fn wpr_scores(&self, iters: usize, damping: f64) -> Vec<f64> {
        let n = self.graph.num_vertices();
        let mut seed = vec![0.0f64; n];
        if self.local_train.is_empty() {
            return seed;
        }
        let s0 = 1.0 / self.local_train.len() as f64;
        for &v in self.local_train {
            seed[v as usize] = s0;
        }
        let mut x = seed.clone();
        for _ in 0..iters {
            let mut next = vec![0.0f64; n];
            for v in 0..n as VertexId {
                let xv = x[v as usize];
                if xv == 0.0 {
                    continue;
                }
                let share = damping * xv / self.graph.degree(v).max(1) as f64;
                for &u in self.graph.neighbors(v) {
                    next[u as usize] += share;
                }
            }
            for v in 0..n {
                next[v] += (1.0 - damping) * seed[v];
            }
            x = next;
        }
        x
    }

    /// Path-count scores: Σ_{h=1..L} (number of length-h paths from any
    /// local training vertex), computed by L sparse matrix-vector sweeps.
    pub fn num_paths_scores(&self) -> Vec<f64> {
        let n = self.graph.num_vertices();
        let mut prev = vec![0.0f64; n];
        for &v in self.local_train {
            prev[v as usize] = 1.0;
        }
        let mut total = vec![0.0f64; n];
        for _ in 0..self.fanouts.num_hops() {
            let mut cur = vec![0.0f64; n];
            for v in 0..n as VertexId {
                let pv = prev[v as usize];
                if pv == 0.0 {
                    continue;
                }
                for &u in self.graph.neighbors(v) {
                    cur[u as usize] += pv;
                }
            }
            for v in 0..n {
                total[v] += cur[v];
            }
            // Rescale to dodge overflow on dense graphs; only relative
            // order matters.
            let mx = cur.iter().cloned().fold(0.0f64, f64::max);
            if mx > 1e100 {
                for c in &mut cur {
                    *c /= mx;
                }
            }
            prev = cur;
        }
        total
    }

    /// Empirical VIP estimates: per-vertex access counts over `epochs`
    /// simulated sampling epochs on this partition's minibatch stream.
    pub fn simulation_scores(&self, epochs: usize) -> Vec<f64> {
        let mut counts = vec![0.0f64; self.graph.num_vertices()];
        let sampler = NodeWiseSampler::new(self.graph, self.fanouts.clone());
        let mut rng = StdRng::seed_from_u64(self.seed);
        for e in 0..epochs {
            for batch in MinibatchIter::new(self.local_train, self.batch_size, self.seed, e as u64)
            {
                let mfg = sampler.sample(&batch, &mut rng);
                for &v in &mfg.nodes {
                    counts[v as usize] += 1.0;
                }
            }
        }
        counts
    }

    /// Vertices within `hops` hops of the local training set (BFS).
    fn reachable_within(&self, hops: usize) -> Vec<bool> {
        let n = self.graph.num_vertices();
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for &v in self.local_train {
            dist[v as usize] = 0;
            queue.push_back(v);
        }
        while let Some(v) = queue.pop_front() {
            let d = dist[v as usize];
            if d == hops {
                continue;
            }
            for &u in self.graph.neighbors(v) {
                if dist[u as usize] == usize::MAX {
                    dist[u as usize] = d + 1;
                    queue.push_back(u);
                }
            }
        }
        dist.into_iter().map(|d| d != usize::MAX).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_graph::generate::GeneratorConfig;
    use spp_partition::simple::block_partition;

    fn ctx<'a>(
        graph: &'a CsrGraph,
        partitioning: &'a Partitioning,
        local_train: &'a [VertexId],
    ) -> PolicyContext<'a> {
        PolicyContext {
            graph,
            partitioning,
            part: 0,
            local_train,
            fanouts: Fanouts::new(vec![3, 3]),
            batch_size: 8,
            seed: 11,
            oracle_counts: &[],
        }
    }

    fn test_graph() -> CsrGraph {
        GeneratorConfig::planted_partition(200, 1600, 2, 0.7)
            .seed(6)
            .build()
    }

    #[test]
    fn rankings_contain_only_remote_vertices() {
        let g = test_graph();
        let p = block_partition(200, 2);
        let train: Vec<VertexId> = (0..40).collect();
        let c = ctx(&g, &p, &train);
        for policy in [
            CachePolicy::Degree,
            CachePolicy::OneHopHalo,
            CachePolicy::WeightedReversePagerank,
            CachePolicy::NumPaths,
            CachePolicy::Simulation,
            CachePolicy::VipAnalytic,
        ] {
            let rank = c.rank(policy);
            assert!(
                rank.iter().all(|&v| p.part_of(v) == 1),
                "{policy:?} ranked a local vertex"
            );
            assert!(!rank.is_empty(), "{policy:?} ranked nothing");
            // No duplicates.
            let mut sorted = rank.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), rank.len(), "{policy:?} has duplicates");
        }
    }

    #[test]
    fn none_policy_ranks_nothing() {
        let g = test_graph();
        let p = block_partition(200, 2);
        let train: Vec<VertexId> = (0..40).collect();
        assert!(ctx(&g, &p, &train).rank(CachePolicy::None).is_empty());
    }

    #[test]
    fn vip_ranking_orders_by_score() {
        let g = test_graph();
        let p = block_partition(200, 2);
        let train: Vec<VertexId> = (0..40).collect();
        let c = ctx(&g, &p, &train);
        let scores = c.vip_scores();
        let rank = c.rank(CachePolicy::VipAnalytic);
        for w in rank.windows(2) {
            assert!(scores[w[0] as usize] >= scores[w[1] as usize]);
        }
    }

    #[test]
    fn one_hop_halo_matches_metrics_halo() {
        let g = test_graph();
        let p = block_partition(200, 2);
        let train: Vec<VertexId> = (0..40).collect();
        let c = ctx(&g, &p, &train);
        let mut rank = c.rank(CachePolicy::OneHopHalo);
        rank.sort_unstable();
        let halos = spp_partition::metrics::one_hop_halos(&g, &p);
        assert_eq!(rank, halos[0]);
    }

    #[test]
    fn oracle_requires_counts() {
        let g = test_graph();
        let p = block_partition(200, 2);
        let train: Vec<VertexId> = (0..40).collect();
        let counts = vec![3u64; 200];
        let mut c = ctx(&g, &p, &train);
        c.oracle_counts = &counts;
        let rank = c.rank(CachePolicy::Oracle);
        assert_eq!(rank.len(), 100); // all remote vertices accessed
    }

    #[test]
    #[should_panic(expected = "oracle requires measured access counts")]
    fn oracle_panics_without_counts() {
        let g = test_graph();
        let p = block_partition(200, 2);
        let train: Vec<VertexId> = (0..40).collect();
        ctx(&g, &p, &train).rank(CachePolicy::Oracle);
    }

    #[test]
    fn simulation_counts_scale_with_epochs() {
        let g = test_graph();
        let p = block_partition(200, 2);
        let train: Vec<VertexId> = (0..40).collect();
        let c = ctx(&g, &p, &train);
        let s1: f64 = c.simulation_scores(1).iter().sum();
        let s4: f64 = c.simulation_scores(4).iter().sum();
        assert!(s4 > 2.0 * s1);
    }

    #[test]
    fn wpr_mass_stays_near_train_set() {
        let g = test_graph();
        let p = block_partition(200, 2);
        let train: Vec<VertexId> = (0..40).collect();
        let c = ctx(&g, &p, &train);
        let x = c.wpr_scores(5, 0.85);
        let train_mass: f64 = train.iter().map(|&v| x[v as usize]).sum();
        let total: f64 = x.iter().sum();
        assert!(train_mass > 0.1 * total);
    }

    #[test]
    fn num_paths_zero_beyond_l_hops() {
        // Path graph: train at one end, L=2 → vertices >2 hops away score 0.
        let mut b = spp_graph::GraphBuilder::new(6);
        for v in 0..5u32 {
            b.add_undirected_edge(v, v + 1);
        }
        let g = b.build();
        let p = block_partition(6, 2);
        let train = vec![0u32];
        let c = ctx(&g, &p, &train);
        let s = c.num_paths_scores();
        assert!(s[1] > 0.0 && s[2] > 0.0);
        assert_eq!(s[4], 0.0);
        assert_eq!(s[5], 0.0);
    }
}
