//! Static remote-feature caches sized by a replication factor.

use spp_graph::VertexId;

/// Builds per-partition [`StaticCache`]s from policy rankings and a
/// replication factor α: each machine caches the top `αN/K` remote
/// vertices of its ranking (paper §3.2).
///
/// # Example
///
/// ```
/// use spp_core::CacheBuilder;
///
/// // α = 0.5, N = 100, K = 2 → 25 cached vertices per machine.
/// let builder = CacheBuilder::new(0.5, 100, 2);
/// assert_eq!(builder.capacity(), 25);
/// let ranking: Vec<u32> = (50..100).collect();
/// let cache = builder.build(&ranking);
/// assert_eq!(cache.len(), 25);
/// assert!(cache.contains(50));
/// assert!(!cache.contains(80));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CacheBuilder {
    /// Replication factor α: cached vertices per machine = `α · N / K`.
    pub alpha: f64,
    /// Total number of graph vertices N.
    pub num_vertices: usize,
    /// Number of partitions/machines K.
    pub num_parts: usize,
}

impl CacheBuilder {
    /// Creates a builder.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or `num_parts` is zero.
    pub fn new(alpha: f64, num_vertices: usize, num_parts: usize) -> Self {
        assert!(alpha >= 0.0, "replication factor must be non-negative");
        assert!(num_parts > 0, "need at least one partition");
        Self {
            alpha,
            num_vertices,
            num_parts,
        }
    }

    /// Number of vertices a cache of this α holds.
    pub fn capacity(&self) -> usize {
        (self.alpha * self.num_vertices as f64 / self.num_parts as f64).round() as usize
    }

    /// Builds the cache for one partition from its ranking (higher
    /// priority first): the top `capacity()` entries are kept.
    pub fn build(&self, ranking: &[VertexId]) -> StaticCache {
        let cap = self.capacity().min(ranking.len());
        StaticCache::from_members(&ranking[..cap])
    }

    /// Like [`CacheBuilder::build`], additionally materializing the
    /// dense O(1) membership index over the builder's full vertex-id
    /// space (see [`StaticCache::with_dense_index`]). This is the
    /// representation the serving hot loop wants: membership tests per
    /// MFG vertex become a single array load instead of a hash probe.
    pub fn build_dense(&self, ranking: &[VertexId]) -> StaticCache {
        self.build(ranking).with_dense_index(self.num_vertices)
    }

    /// Builds caches for all partitions.
    pub fn build_all(&self, rankings: &[Vec<VertexId>]) -> Vec<StaticCache> {
        rankings.iter().map(|r| self.build(r)).collect()
    }
}

/// Sentinel slot value marking "not cached" in the dense index.
const NO_SLOT: u32 = u32::MAX;

/// One machine's static cache of remote vertex features: a membership
/// index mapping cached global vertex ids to cache slots (the lookup
/// the paper performs per remote vertex, §4.2).
///
/// Membership has two interchangeable representations: a sorted
/// `(vertex, slot)` array probed by binary search (the default — fully
/// ordered, so every traversal of the structure is deterministic by
/// construction; §9 / DESIGN §17), and an optional *dense* slot array
/// indexed by vertex id ([`StaticCache::with_dense_index`]) that turns
/// `contains` / `slot_of` into one bounds-checked array load — the O(1)
/// path the online serving hot loop uses, at `4·N` bytes per machine.
#[derive(Clone, Debug, Default)]
pub struct StaticCache {
    /// `(vertex, slot)` pairs sorted by vertex id.
    index: Vec<(VertexId, u32)>,
    members: Vec<VertexId>,
    /// `dense[v] == slot` for members, [`NO_SLOT`] otherwise; `None`
    /// until [`StaticCache::with_dense_index`] materializes it.
    dense: Option<Vec<u32>>,
}

impl StaticCache {
    /// An empty cache (α = 0 / no caching).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds from a member list (priority order preserved as slot order).
    ///
    /// # Panics
    ///
    /// Panics on duplicate members.
    pub fn from_members(members: &[VertexId]) -> Self {
        let mut index: Vec<(VertexId, u32)> = members
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        index.sort_unstable();
        for w in index.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate cache member {}", w[0].0);
        }
        Self {
            index,
            members: members.to_vec(),
            dense: None,
        }
    }

    /// Materializes the dense membership index over a vertex-id space of
    /// `num_vertices`, making `contains` / `slot_of` a single array load.
    ///
    /// # Panics
    ///
    /// Panics if any member id is `>= num_vertices`.
    pub fn with_dense_index(mut self, num_vertices: usize) -> Self {
        let mut dense = vec![NO_SLOT; num_vertices];
        for (slot, &v) in self.members.iter().enumerate() {
            assert!(
                (v as usize) < num_vertices,
                "cache member {v} outside dense id space {num_vertices}"
            );
            dense[v as usize] = slot as u32;
        }
        self.dense = Some(dense);
        self
    }

    /// True if the dense membership index is materialized.
    pub fn has_dense_index(&self) -> bool {
        self.dense.is_some()
    }

    /// Number of cached vertices.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The cache slot of `v`, if cached.
    #[inline]
    pub fn slot_of(&self, v: VertexId) -> Option<u32> {
        match &self.dense {
            Some(d) => match d.get(v as usize) {
                Some(&s) if s != NO_SLOT => Some(s),
                _ => None,
            },
            None => self
                .index
                .binary_search_by_key(&v, |&(id, _)| id)
                .ok()
                .map(|i| self.index[i].1),
        }
    }

    /// True if `v` is cached.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        match &self.dense {
            Some(d) => d.get(v as usize).is_some_and(|&s| s != NO_SLOT),
            None => self.index.binary_search_by_key(&v, |&(id, _)| id).is_ok(),
        }
    }

    /// Cached vertex ids in slot order.
    pub fn members(&self) -> &[VertexId] {
        &self.members
    }

    /// Feature bytes this cache stores for dimension `dim` (f32 features).
    pub fn memory_bytes(&self, dim: usize) -> usize {
        self.members.len() * dim * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_formula() {
        // α = 0.32, N = 1000, K = 8 → 40 vertices per machine.
        let b = CacheBuilder::new(0.32, 1000, 8);
        assert_eq!(b.capacity(), 40);
    }

    #[test]
    fn build_takes_prefix() {
        let b = CacheBuilder::new(0.5, 20, 2); // capacity 5
        let ranking: Vec<VertexId> = vec![9, 8, 7, 6, 5, 4, 3];
        let c = b.build(&ranking);
        assert_eq!(c.len(), 5);
        assert_eq!(c.members(), &[9, 8, 7, 6, 5]);
        assert!(c.contains(9));
        assert!(!c.contains(4));
        assert_eq!(c.slot_of(7), Some(2));
    }

    #[test]
    fn short_ranking_caps_cache() {
        let b = CacheBuilder::new(1.0, 100, 2); // capacity 50
        let c = b.build(&[1, 2, 3]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn zero_alpha_gives_empty_cache() {
        let b = CacheBuilder::new(0.0, 100, 4);
        assert_eq!(b.capacity(), 0);
        assert!(b.build(&[1, 2, 3]).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate cache member")]
    fn duplicates_rejected() {
        StaticCache::from_members(&[1, 2, 1]);
    }

    #[test]
    fn memory_accounting() {
        let c = StaticCache::from_members(&[0, 1, 2]);
        assert_eq!(c.memory_bytes(128), 3 * 128 * 4);
    }

    #[test]
    fn dense_index_agrees_with_sorted_index_on_random_rankings() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let n = 512usize;
        let mut rng = StdRng::seed_from_u64(0xD15E);
        for trial in 0..20 {
            // Random ranking: a shuffled prefix of the id space.
            let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
            for i in (1..ids.len()).rev() {
                let j = rng.gen_range(0..=i);
                ids.swap(i, j);
            }
            let take = rng.gen_range(0..=n);
            let sparse = StaticCache::from_members(&ids[..take]);
            let dense = sparse.clone().with_dense_index(n);
            assert!(dense.has_dense_index() && !sparse.has_dense_index());
            for v in 0..n as VertexId {
                assert_eq!(
                    sparse.contains(v),
                    dense.contains(v),
                    "trial {trial}: contains({v}) diverged"
                );
                assert_eq!(
                    sparse.slot_of(v),
                    dense.slot_of(v),
                    "trial {trial}: slot_of({v}) diverged"
                );
            }
            // Out-of-range ids are absent in both representations.
            assert!(!dense.contains(n as VertexId + 7));
            assert!(!sparse.contains(n as VertexId + 7));
        }
    }

    #[test]
    fn build_dense_matches_build() {
        let b = CacheBuilder::new(0.5, 20, 2); // capacity 5
        let ranking: Vec<VertexId> = vec![9, 8, 7, 6, 5, 4, 3];
        let sparse = b.build(&ranking);
        let dense = b.build_dense(&ranking);
        assert_eq!(sparse.members(), dense.members());
        assert!(dense.has_dense_index());
        assert_eq!(dense.slot_of(7), Some(2));
        assert!(!dense.contains(4));
    }

    #[test]
    #[should_panic(expected = "outside dense id space")]
    fn dense_index_rejects_out_of_range_members() {
        StaticCache::from_members(&[1, 2, 99]).with_dense_index(10);
    }

    #[test]
    fn build_all_shapes() {
        let b = CacheBuilder::new(0.2, 100, 2); // capacity 10
        let caches = b.build_all(&[vec![1, 2], (10..40).collect()]);
        assert_eq!(caches.len(), 2);
        assert_eq!(caches[0].len(), 2);
        assert_eq!(caches[1].len(), 10);
    }
}
