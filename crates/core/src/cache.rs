//! Static remote-feature caches sized by a replication factor.

use spp_graph::VertexId;
use std::collections::HashMap;

/// Builds per-partition [`StaticCache`]s from policy rankings and a
/// replication factor α: each machine caches the top `αN/K` remote
/// vertices of its ranking (paper §3.2).
///
/// # Example
///
/// ```
/// use spp_core::CacheBuilder;
///
/// // α = 0.5, N = 100, K = 2 → 25 cached vertices per machine.
/// let builder = CacheBuilder::new(0.5, 100, 2);
/// assert_eq!(builder.capacity(), 25);
/// let ranking: Vec<u32> = (50..100).collect();
/// let cache = builder.build(&ranking);
/// assert_eq!(cache.len(), 25);
/// assert!(cache.contains(50));
/// assert!(!cache.contains(80));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CacheBuilder {
    /// Replication factor α: cached vertices per machine = `α · N / K`.
    pub alpha: f64,
    /// Total number of graph vertices N.
    pub num_vertices: usize,
    /// Number of partitions/machines K.
    pub num_parts: usize,
}

impl CacheBuilder {
    /// Creates a builder.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or `num_parts` is zero.
    pub fn new(alpha: f64, num_vertices: usize, num_parts: usize) -> Self {
        assert!(alpha >= 0.0, "replication factor must be non-negative");
        assert!(num_parts > 0, "need at least one partition");
        Self {
            alpha,
            num_vertices,
            num_parts,
        }
    }

    /// Number of vertices a cache of this α holds.
    pub fn capacity(&self) -> usize {
        (self.alpha * self.num_vertices as f64 / self.num_parts as f64).round() as usize
    }

    /// Builds the cache for one partition from its ranking (higher
    /// priority first): the top `capacity()` entries are kept.
    pub fn build(&self, ranking: &[VertexId]) -> StaticCache {
        let cap = self.capacity().min(ranking.len());
        StaticCache::from_members(&ranking[..cap])
    }

    /// Builds caches for all partitions.
    pub fn build_all(&self, rankings: &[Vec<VertexId>]) -> Vec<StaticCache> {
        rankings.iter().map(|r| self.build(r)).collect()
    }
}

/// One machine's static cache of remote vertex features: a membership
/// hash table mapping cached global vertex ids to cache slots (the lookup
/// the paper performs per remote vertex, §4.2).
#[derive(Clone, Debug, Default)]
pub struct StaticCache {
    slots: HashMap<VertexId, u32>,
    members: Vec<VertexId>,
}

impl StaticCache {
    /// An empty cache (α = 0 / no caching).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds from a member list (priority order preserved as slot order).
    ///
    /// # Panics
    ///
    /// Panics on duplicate members.
    pub fn from_members(members: &[VertexId]) -> Self {
        let mut slots = HashMap::with_capacity(members.len());
        for (i, &v) in members.iter().enumerate() {
            let prev = slots.insert(v, i as u32);
            assert!(prev.is_none(), "duplicate cache member {v}");
        }
        Self {
            slots,
            members: members.to_vec(),
        }
    }

    /// Number of cached vertices.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The cache slot of `v`, if cached.
    #[inline]
    pub fn slot_of(&self, v: VertexId) -> Option<u32> {
        self.slots.get(&v).copied()
    }

    /// True if `v` is cached.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.slots.contains_key(&v)
    }

    /// Cached vertex ids in slot order.
    pub fn members(&self) -> &[VertexId] {
        &self.members
    }

    /// Feature bytes this cache stores for dimension `dim` (f32 features).
    pub fn memory_bytes(&self, dim: usize) -> usize {
        self.members.len() * dim * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_formula() {
        // α = 0.32, N = 1000, K = 8 → 40 vertices per machine.
        let b = CacheBuilder::new(0.32, 1000, 8);
        assert_eq!(b.capacity(), 40);
    }

    #[test]
    fn build_takes_prefix() {
        let b = CacheBuilder::new(0.5, 20, 2); // capacity 5
        let ranking: Vec<VertexId> = vec![9, 8, 7, 6, 5, 4, 3];
        let c = b.build(&ranking);
        assert_eq!(c.len(), 5);
        assert_eq!(c.members(), &[9, 8, 7, 6, 5]);
        assert!(c.contains(9));
        assert!(!c.contains(4));
        assert_eq!(c.slot_of(7), Some(2));
    }

    #[test]
    fn short_ranking_caps_cache() {
        let b = CacheBuilder::new(1.0, 100, 2); // capacity 50
        let c = b.build(&[1, 2, 3]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn zero_alpha_gives_empty_cache() {
        let b = CacheBuilder::new(0.0, 100, 4);
        assert_eq!(b.capacity(), 0);
        assert!(b.build(&[1, 2, 3]).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate cache member")]
    fn duplicates_rejected() {
        StaticCache::from_members(&[1, 2, 1]);
    }

    #[test]
    fn memory_accounting() {
        let c = StaticCache::from_members(&[0, 1, 2]);
        assert_eq!(c.memory_bytes(128), 3 * 128 * 4);
    }

    #[test]
    fn build_all_shapes() {
        let b = CacheBuilder::new(0.2, 100, 2); // capacity 10
        let caches = b.build_all(&[vec![1, 2], (10..40).collect()]);
        assert_eq!(caches.len(), 2);
        assert_eq!(caches[0].len(), 2);
        assert_eq!(caches[1].len(), 10);
    }
}
