//! The per-machine partitioned feature store (paper §4.1–4.2).
//!
//! Each machine holds: its partition's feature rows (a GPU-resident
//! prefix plus a CPU-resident remainder, per the two-level ordering), and
//! a static cache of remote features. Given a sampled MFG's node list the
//! store classifies every vertex into local-GPU / local-CPU / cached /
//! remote-by-owner — exactly the split SALIENT++'s batch-preparation
//! pipeline performs right after sampling — and can gather the full
//! feature tensor given a remote-fetch callback.

use crate::cache::StaticCache;
use crate::reorder::ReorderedLayout;
use spp_graph::{FeatureMatrix, QuantScheme, QuantizedFeatures, VertexId};
use spp_tensor::Matrix;

/// Where a vertex's features live relative to one machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FeatureLocation {
    /// Local partition, GPU-resident prefix.
    LocalGpu,
    /// Local partition, CPU-resident remainder.
    LocalCpu,
    /// Remote vertex present in the static cache.
    Cached,
    /// Remote vertex owned by the given partition; must be fetched.
    Remote(u32),
}

/// The classification of one MFG's node list against a machine's storage.
#[derive(Clone, Debug, Default)]
pub struct BatchPlan {
    /// Positions (into the MFG node list) of local GPU-resident vertices.
    pub local_gpu: Vec<u32>,
    /// Positions of local CPU-resident vertices.
    pub local_cpu: Vec<u32>,
    /// Positions of cache hits.
    pub cached: Vec<u32>,
    /// Per-owner lists of `(position, vertex)` that must be fetched.
    pub remote: Vec<Vec<(u32, VertexId)>>,
}

impl BatchPlan {
    /// Total number of vertices that must be fetched over the network.
    pub fn num_remote(&self) -> usize {
        self.remote.iter().map(Vec::len).sum()
    }

    /// Number of vertices needing a host-to-device copy (CPU-resident
    /// locals plus received remote features staged through the host).
    pub fn num_host_to_device(&self) -> usize {
        self.local_cpu.len() + self.num_remote()
    }

    /// Total classified vertices.
    pub fn num_vertices(&self) -> usize {
        self.local_gpu.len() + self.local_cpu.len() + self.cached.len() + self.num_remote()
    }
}

/// One machine's feature storage under the reordered layout.
#[derive(Clone, Debug)]
pub struct PartitionedFeatureStore {
    part: u32,
    layout: ReorderedLayout,
    /// Local feature rows, indexed by local index (new id − part offset).
    local: FeatureMatrix,
    /// Number of local rows resident on GPU (prefix of `local`).
    gpu_rows: usize,
    /// Static cache of remote features.
    cache: StaticCache,
    /// Cached feature rows, aligned with `cache` slots; optionally
    /// quantized (DESIGN.md §14) so the same RAM holds ~2× (`f16`) or
    /// ~4× (`i8`) the entries.
    cache_feats: QuantizedFeatures,
}

impl PartitionedFeatureStore {
    /// Builds machine `part`'s store.
    ///
    /// `features` must be the *reordered* (new-id-indexed) full feature
    /// matrix; only the machine's own rows and the cached rows are copied
    /// out, mirroring a real deployment where each machine materializes
    /// only its slice.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0,1]`, the cache contains local
    /// vertices, or shapes mismatch.
    pub fn build(
        part: u32,
        layout: &ReorderedLayout,
        features: &FeatureMatrix,
        beta: f64,
        cache: StaticCache,
    ) -> Self {
        Self::build_quantized(part, layout, features, beta, cache, QuantScheme::F32)
    }

    /// [`PartitionedFeatureStore::build`] with an explicit storage
    /// scheme for the static cache tier. `F32` reproduces the seed
    /// behavior bit-for-bit; `F16`/`I8` store compressed rows that are
    /// dequantized on every cached-row gather (allocation-free).
    ///
    /// # Panics
    ///
    /// Same conditions as [`PartitionedFeatureStore::build`].
    pub fn build_quantized(
        part: u32,
        layout: &ReorderedLayout,
        features: &FeatureMatrix,
        beta: f64,
        cache: StaticCache,
        cache_scheme: QuantScheme,
    ) -> Self {
        // A plain matrix is the degenerate (fully resident, f32) store;
        // the store-reading path copies rows bit-for-bit, so this
        // delegation preserves the historical behavior exactly.
        Self::build_from_store(part, layout, features, beta, cache, cache_scheme)
    }

    /// [`PartitionedFeatureStore::build_quantized`] reading rows through
    /// a [`spp_store::FeatureStore`] instead of a resident matrix — the
    /// out-of-core path (DESIGN.md §16). `features` must be addressed by
    /// *reordered* (new) ids, like the matrix variant; a store built in
    /// original-id order wants a `spp_store::PermutedStore` wrapper.
    /// Only the machine's local slice and its cache members are ever
    /// read, so a build touches a fraction of the store's pages.
    ///
    /// # Panics
    ///
    /// Same conditions as [`PartitionedFeatureStore::build`].
    pub fn build_from_store(
        part: u32,
        layout: &ReorderedLayout,
        features: &dyn spp_store::FeatureStore,
        beta: f64,
        cache: StaticCache,
        cache_scheme: QuantScheme,
    ) -> Self {
        assert_eq!(
            features.num_rows(),
            layout.num_vertices(),
            "feature store must cover all vertices"
        );
        let range = layout.part_range(part);
        let ids: Vec<VertexId> = (range.start as VertexId..range.end as VertexId).collect();
        let local = features.gather(&ids);
        let gpu_rows = layout.gpu_rows(part, beta);
        for &v in cache.members() {
            assert!(
                !layout.is_local(v, part),
                "cache must not contain local vertex {v}"
            );
        }
        let cache_feats =
            QuantizedFeatures::from_matrix(&features.gather(cache.members()), cache_scheme);
        Self {
            part,
            layout: layout.clone(),
            local,
            gpu_rows,
            cache,
            cache_feats,
        }
    }

    /// This machine's partition id.
    pub fn part(&self) -> u32 {
        self.part
    }

    /// The layout the store was built against.
    pub fn layout(&self) -> &ReorderedLayout {
        &self.layout
    }

    /// The cache.
    pub fn cache(&self) -> &StaticCache {
        &self.cache
    }

    /// Storage scheme of the static cache tier.
    pub fn cache_scheme(&self) -> QuantScheme {
        self.cache_feats.scheme()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.local.dim()
    }

    /// Number of GPU-resident local rows.
    pub fn gpu_rows(&self) -> usize {
        self.gpu_rows
    }

    /// Total feature bytes stored by this machine (local + cached) — the
    /// quantity Figure 5's memory plot sums over machines.
    pub fn memory_bytes(&self) -> usize {
        self.local.memory_bytes() + self.cache_feats.memory_bytes()
    }

    /// Classifies a single (new-id) vertex.
    #[inline]
    pub fn locate(&self, v: VertexId) -> FeatureLocation {
        if self.layout.is_local(v, self.part) {
            if self.layout.local_index(v) < self.gpu_rows {
                FeatureLocation::LocalGpu
            } else {
                FeatureLocation::LocalCpu
            }
        } else if self.cache.contains(v) {
            FeatureLocation::Cached
        } else {
            FeatureLocation::Remote(self.layout.owner_of(v))
        }
    }

    /// Classifies an MFG node list into the four storage groups.
    pub fn plan(&self, nodes: &[VertexId]) -> BatchPlan {
        let mut plan = BatchPlan {
            remote: vec![Vec::new(); self.layout.num_parts()], // spp-hot: alloc(per-owner request lists, one per partition; the plan IS the batch output)
            ..BatchPlan::default()
        };
        for (i, &v) in nodes.iter().enumerate() {
            match self.locate(v) {
                FeatureLocation::LocalGpu => plan.local_gpu.push(i as u32), // spp-hot: alloc(plan bucket, one u32 per batch node)
                FeatureLocation::LocalCpu => plan.local_cpu.push(i as u32), // spp-hot: alloc(plan bucket, one u32 per batch node)
                FeatureLocation::Cached => plan.cached.push(i as u32), // spp-hot: alloc(plan bucket, one u32 per batch node)
                FeatureLocation::Remote(owner) => {
                    // spp-hot: alloc(plan bucket, one entry per remote batch node)
                    plan.remote[owner as usize].push((i as u32, v));
                }
            }
        }
        plan
    }

    /// Serves a peer's fetch request: features of local (new-id) vertices.
    ///
    /// # Panics
    ///
    /// Panics if any requested vertex is not local to this machine.
    pub fn serve(&self, ids: &[VertexId]) -> FeatureMatrix {
        let local_ids: Vec<VertexId> = ids
            .iter()
            .map(|&v| {
                assert!(
                    self.layout.is_local(v, self.part),
                    "vertex {v} not local to partition {}",
                    self.part
                );
                self.layout.local_index(v) as VertexId
            })
            .collect();
        self.local.gather(&local_ids)
    }

    /// Gathers the full feature tensor for an MFG node list, fetching
    /// remote features through `fetch(owner, ids) -> FeatureMatrix`
    /// (rows aligned with `ids`). Output rows align with `nodes`.
    // spp-hot(feature.gather)
    pub fn gather<F>(&self, nodes: &[VertexId], mut fetch: F) -> Matrix
    where
        F: FnMut(u32, &[VertexId]) -> FeatureMatrix,
    {
        let d = self.dim();
        let plan = self.plan(nodes);
        let mut out = Matrix::zeros(nodes.len(), d);
        for &pos in plan.local_gpu.iter().chain(&plan.local_cpu) {
            let li = self.layout.local_index(nodes[pos as usize]);
            out.row_mut(pos as usize)
                .copy_from_slice(self.local.row(li as VertexId));
        }
        for &pos in &plan.cached {
            let Some(slot) = self.cache.slot_of(nodes[pos as usize]) else {
                debug_assert!(false, "planned cache hit must be cached");
                continue;
            };
            self.cache_feats
                .read_row_into(slot as usize, out.row_mut(pos as usize));
        }
        for (owner, requests) in plan.remote.iter().enumerate() {
            if requests.is_empty() {
                continue;
            }
            let ids: Vec<VertexId> = requests.iter().map(|&(_, v)| v).collect(); // spp-hot: alloc(remote fetch id list, one per off-partition owner touched)
            let feats = fetch(owner as u32, &ids);
            assert_eq!(feats.num_rows(), ids.len(), "fetch returned wrong rows");
            assert_eq!(feats.dim(), d, "fetch returned wrong dim");
            for (r, &(pos, _)) in requests.iter().enumerate() {
                out.row_mut(pos as usize)
                    .copy_from_slice(feats.row(r as VertexId));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_partition::Partitioning;

    /// 6 vertices, 2 parts: p0 = {0,1,2}, p1 = {3,4,5} (identity layout).
    /// Features: row v = [v, v].
    fn fixture(beta: f64, cache_members: &[VertexId]) -> (PartitionedFeatureStore, FeatureMatrix) {
        let part = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let layout = ReorderedLayout::build(&part, None);
        let mut feats = FeatureMatrix::zeros(6, 2);
        for v in 0..6u32 {
            feats.row_mut(v).copy_from_slice(&[v as f32, v as f32]);
        }
        let cache = StaticCache::from_members(cache_members);
        let store = PartitionedFeatureStore::build(0, &layout, &feats, beta, cache);
        (store, feats)
    }

    #[test]
    fn locate_all_classes() {
        let (store, _) = fixture(0.34, &[4]); // gpu_rows = 1
        assert_eq!(store.locate(0), FeatureLocation::LocalGpu);
        assert_eq!(store.locate(1), FeatureLocation::LocalCpu);
        assert_eq!(store.locate(4), FeatureLocation::Cached);
        assert_eq!(store.locate(5), FeatureLocation::Remote(1));
    }

    #[test]
    fn plan_partitions_positions() {
        let (store, _) = fixture(0.34, &[4]);
        let nodes = vec![0, 1, 4, 5, 2, 3];
        let plan = store.plan(&nodes);
        assert_eq!(plan.local_gpu, vec![0]);
        assert_eq!(plan.local_cpu, vec![1, 4]);
        assert_eq!(plan.cached, vec![2]);
        assert_eq!(plan.remote[1], vec![(3, 5), (5, 3)]);
        assert_eq!(plan.num_remote(), 2);
        assert_eq!(plan.num_vertices(), 6);
        assert_eq!(plan.num_host_to_device(), 4);
    }

    #[test]
    fn gather_matches_global_features() {
        let (store, feats) = fixture(0.5, &[3]);
        let nodes = vec![5, 0, 3, 2];
        let out = store.gather(&nodes, |owner, ids| {
            assert_eq!(owner, 1);
            feats.gather(ids)
        });
        for (i, &v) in nodes.iter().enumerate() {
            assert_eq!(out.row(i), feats.row(v), "row {i} mismatch");
        }
    }

    #[test]
    fn gather_without_remote_never_fetches() {
        let (store, _) = fixture(1.0, &[3, 4, 5]);
        let nodes = vec![0, 1, 2, 3, 4, 5];
        let out = store.gather(&nodes, |_, _| panic!("unexpected fetch"));
        assert_eq!(out.rows(), 6);
    }

    #[test]
    fn serve_returns_local_rows() {
        let (store, feats) = fixture(0.0, &[]);
        let served = store.serve(&[2, 0]);
        assert_eq!(served.row(0), feats.row(2));
        assert_eq!(served.row(1), feats.row(0));
    }

    #[test]
    #[should_panic(expected = "not local to partition")]
    fn serve_rejects_remote_ids() {
        let (store, _) = fixture(0.0, &[]);
        store.serve(&[4]);
    }

    #[test]
    #[should_panic(expected = "cache must not contain local vertex")]
    fn cache_of_local_vertex_rejected() {
        fixture(0.0, &[1]);
    }

    #[test]
    #[should_panic(expected = "fetch returned wrong rows")]
    fn gather_rejects_short_fetch_response() {
        // Failure injection: a peer answering with too few rows must be
        // detected, not silently corrupt the batch tensor.
        let (store, _) = fixture(0.0, &[]);
        store.gather(&[5], |_, _| FeatureMatrix::zeros(0, 2));
    }

    #[test]
    #[should_panic(expected = "fetch returned wrong dim")]
    fn gather_rejects_wrong_dim_response() {
        let (store, _) = fixture(0.0, &[]);
        store.gather(&[5], |_, _| FeatureMatrix::zeros(1, 7));
    }

    #[test]
    fn memory_bytes_counts_local_and_cache() {
        let (store, _) = fixture(0.0, &[3, 4]);
        // 3 local rows + 2 cached rows, dim 2, f32.
        assert_eq!(store.memory_bytes(), (3 + 2) * 2 * 4);
    }

    #[test]
    fn quantized_cache_tier_halves_cache_bytes_and_stays_close() {
        let part = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let layout = ReorderedLayout::build(&part, None);
        let mut feats = FeatureMatrix::zeros(6, 2);
        for v in 0..6u32 {
            feats
                .row_mut(v)
                .copy_from_slice(&[v as f32 / 3.0, -(v as f32) / 7.0]);
        }
        let cache = StaticCache::from_members(&[3, 4]);
        let f32_store = PartitionedFeatureStore::build(0, &layout, &feats, 0.0, cache.clone());
        let f16_store = PartitionedFeatureStore::build_quantized(
            0,
            &layout,
            &feats,
            0.0,
            cache,
            QuantScheme::F16,
        );
        assert_eq!(f16_store.cache_scheme(), QuantScheme::F16);
        assert_eq!(f32_store.cache_scheme(), QuantScheme::F32);
        // Cache tier bytes halve; local rows are unchanged.
        assert_eq!(
            f16_store.memory_bytes(),
            f32_store.memory_bytes() - 2 * 2 * 2
        );
        // Gathered cached rows agree within the f16 error bound.
        let nodes = vec![3, 4];
        let exact = f32_store.gather(&nodes, |_, _| panic!("no fetch"));
        let lossy = f16_store.gather(&nodes, |_, _| panic!("no fetch"));
        for i in 0..2 {
            for (a, b) in exact.row(i).iter().zip(lossy.row(i)) {
                assert!((a - b).abs() <= a.abs().max(1.0) * 2.0f32.powi(-11));
            }
        }
    }
}
