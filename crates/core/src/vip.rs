//! The analytical VIP model (Proposition 1).
//!
//! For node-wise sampling with per-hop fanouts `f_h`, minibatch size `B`
//! drawn uniformly from a training set `T`, Proposition 1 gives the
//! probability that a vertex `u` appears in the sampled L-hop expanded
//! neighborhood of a minibatch:
//!
//! ```text
//! p[0](u) = B / |T|                          if u ∈ T, else 0
//! p[h](u) = 1 - Π_{v ∈ N(u)} (1 - t_h(u,v) · p[h-1](v))
//! p(u)    = 1 - Π_{h=1..L} (1 - p[h](u))
//! t_h(u,v) = min(1, f_h / d(v))
//! ```
//!
//! Products over high-degree neighborhoods underflow `f64`, so the
//! implementation accumulates `ln(1 - t·p)` with `ln_1p` and
//! exponentiates once per vertex per hop — the same `O(L(M+N))` sweep,
//! numerically stable.

use spp_graph::{CsrGraph, VertexId};
use spp_sampler::Fanouts;

/// Computes analytic vertex-inclusion probabilities.
///
/// # Example
///
/// ```
/// use spp_core::VipModel;
/// use spp_graph::generate::complete;
/// use spp_sampler::Fanouts;
///
/// // On a complete graph with fanout >= degree, any 1-hop neighbor of a
/// // certain minibatch vertex is included with probability 1.
/// let g = complete(6);
/// let model = VipModel::new(Fanouts::new(vec![10]), 1);
/// let p = model.scores(&g, &[0]);
/// assert!((p[1] - 1.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct VipModel {
    fanouts: Fanouts,
    batch_size: usize,
}

impl VipModel {
    /// Creates a model for the given fanouts and minibatch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(fanouts: Fanouts, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            fanouts,
            batch_size,
        }
    }

    /// The configured fanouts.
    pub fn fanouts(&self) -> &Fanouts {
        &self.fanouts
    }

    /// Initial (hop-0) probabilities: `min(1, B/|T|)` on `train`, else 0.
    pub fn initial_probabilities(&self, n: usize, train: &[VertexId]) -> Vec<f64> {
        let mut p0 = vec![0.0f64; n];
        if train.is_empty() {
            return p0;
        }
        let p = (self.batch_size as f64 / train.len() as f64).min(1.0);
        for &v in train {
            p0[v as usize] = p;
        }
        p0
    }

    /// Hop-wise VIP vectors `p[1..=L]` from arbitrary initial
    /// probabilities (Proposition 1's recurrence).
    ///
    /// # Panics
    ///
    /// Panics if `p0.len() != graph.num_vertices()`.
    pub fn hop_scores(&self, graph: &CsrGraph, p0: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(p0.len(), graph.num_vertices(), "p0 size mismatch");
        let n = graph.num_vertices();
        let mut hops = Vec::with_capacity(self.fanouts.num_hops());
        let mut prev: Vec<f64> = p0.to_vec();
        for h in 1..=self.fanouts.num_hops() {
            let f = self.fanouts.hop(h) as f64;
            let mut cur = vec![0.0f64; n];
            for u in 0..n as VertexId {
                let mut log_miss = 0.0f64;
                for &v in graph.neighbors(u) {
                    let pv = prev[v as usize];
                    if pv <= 0.0 {
                        continue;
                    }
                    let t = (f / graph.degree(v) as f64).min(1.0);
                    let x = t * pv;
                    if x >= 1.0 {
                        log_miss = f64::NEG_INFINITY;
                        break;
                    }
                    log_miss += (-x).ln_1p();
                }
                cur[u as usize] = crate::clamp01(1.0 - log_miss.exp());
            }
            hops.push(cur.clone());
            prev = cur;
        }
        hops
    }

    /// Combined VIP values `p(u) = 1 - Π_h (1 - p[h](u))` from hop vectors.
    pub fn combine(hops: &[Vec<f64>]) -> Vec<f64> {
        let n = hops.first().map_or(0, Vec::len);
        let mut out = vec![0.0f64; n];
        for (u, o) in out.iter_mut().enumerate() {
            let mut log_miss = 0.0f64;
            for h in hops {
                let p = h[u];
                if p >= 1.0 {
                    log_miss = f64::NEG_INFINITY;
                    break;
                }
                log_miss += (-p).ln_1p();
            }
            *o = crate::clamp01(1.0 - log_miss.exp());
        }
        out
    }

    /// End-to-end: VIP values for minibatches drawn from `train`.
    pub fn scores(&self, graph: &CsrGraph, train: &[VertexId]) -> Vec<f64> {
        let p0 = self.initial_probabilities(graph.num_vertices(), train);
        let hops = self.hop_scores(graph, &p0);
        Self::combine(&hops)
    }

    /// Per-partition VIP values: entry `k` holds `p_k(u)` for minibatches
    /// drawn from partition `k`'s training vertices (`train_of_part[k]`).
    /// This is the quantity the caching policy ranks (paper §3.2 computes
    /// rankings per partition, footnote 1). Partitions are independent,
    /// so the sweeps run on one thread each (the paper streams this
    /// computation through the GPU; we use the CPU cores).
    pub fn partition_scores(
        &self,
        graph: &CsrGraph,
        train_of_part: &[Vec<VertexId>],
    ) -> Vec<Vec<f64>> {
        if train_of_part.len() <= 1 {
            return train_of_part
                .iter()
                .map(|t| self.scores(graph, t))
                .collect();
        }
        let mut out: Vec<Vec<f64>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = train_of_part
                .iter()
                .map(|t| scope.spawn(move |_| self.scores(graph, t)))
                .collect();
            out = handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect();
        })
        .unwrap_or_else(|e| std::panic::resume_unwind(e));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spp_graph::generate::{complete, ring_with_chords, star, GeneratorConfig};

    #[test]
    fn probabilities_in_unit_interval() {
        let g = GeneratorConfig::rmat(512, 4096).seed(1).build();
        let train: Vec<VertexId> = (0..100).collect();
        let p = VipModel::new(Fanouts::new(vec![5, 5, 5]), 32).scores(&g, &train);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x) && x.is_finite()));
    }

    #[test]
    fn empty_train_set_gives_zero() {
        let g = complete(10);
        let p = VipModel::new(Fanouts::new(vec![3]), 4).scores(&g, &[]);
        assert!(p.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn batch_equal_to_train_makes_p0_one() {
        let g = complete(5);
        let model = VipModel::new(Fanouts::new(vec![10]), 5);
        let train: Vec<VertexId> = (0..5).collect();
        let p0 = model.initial_probabilities(5, &train);
        assert!(p0.iter().all(|&x| x == 1.0));
        // Full expansion from the whole graph: everything certain.
        let p = model.scores(&g, &train);
        assert!(p.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn monotone_in_fanout() {
        let g = GeneratorConfig::rmat(256, 2048).seed(2).build();
        let train: Vec<VertexId> = (0..50).collect();
        let small = VipModel::new(Fanouts::new(vec![2, 2]), 16).scores(&g, &train);
        let large = VipModel::new(Fanouts::new(vec![8, 8]), 16).scores(&g, &train);
        for (s, l) in small.iter().zip(&large) {
            assert!(l >= s, "VIP must grow with fanout: {s} vs {l}");
        }
    }

    #[test]
    fn monotone_in_batch_size() {
        let g = GeneratorConfig::rmat(256, 2048).seed(3).build();
        let train: Vec<VertexId> = (0..100).collect();
        let small = VipModel::new(Fanouts::new(vec![4, 4]), 8).scores(&g, &train);
        let large = VipModel::new(Fanouts::new(vec![4, 4]), 64).scores(&g, &train);
        for (s, l) in small.iter().zip(&large) {
            assert!(*l >= s - 1e-12, "VIP must grow with batch size");
        }
    }

    #[test]
    fn random_walk_special_case_is_linear() {
        // With fanout 1 and batch 1, p[1](u) = Σ_v t(u,v)·p0(v) exactly
        // when at most one neighbor has nonzero p0 (no product cross
        // terms). Star center: leaves sample the center w.p. 1.
        let g = star(6);
        let model = VipModel::new(Fanouts::new(vec![1]), 1);
        // Train set = {1} (a leaf with degree 1): t(0,1) = min(1, 1/1) = 1.
        let p = model.scores(&g, &[1]);
        assert!((p[0] - 1.0).abs() < 1e-12);
        // Other leaves unreachable in one hop.
        assert_eq!(p[2], 0.0);
    }

    #[test]
    fn full_expansion_special_case() {
        // Fanout >= max degree: p[h](u) = 1 - Π (1 - p[h-1](v)), the
        // deterministic BFS-expansion probability.
        let g = ring_with_chords(12, 1);
        let model = VipModel::new(Fanouts::new(vec![10]), 1);
        let train: Vec<VertexId> = vec![0, 2];
        let p = model.scores(&g, &train);
        // Vertex 1 neighbors both train vertices; inclusion prob
        // = 1 - (1 - 0.5)(1 - 0.5) = 0.75.
        assert!((p[1] - 0.75).abs() < 1e-12);
        // Vertex 6 is far away.
        assert_eq!(p[6], 0.0);
    }

    #[test]
    fn agrees_with_monte_carlo() {
        // Empirical inclusion frequency under the exact random process the
        // model analyzes — frontier expansion per Proposition 1's steps
        // (i)–(iii) — must match the analytic VIP within sampling noise
        // plus the model's independence-approximation slack.
        let g = GeneratorConfig::erdos_renyi(60, 300).seed(4).build();
        let train: Vec<VertexId> = (0..40).collect();
        let fanouts = Fanouts::new(vec![3, 2]);
        let b = 4usize;
        let model = VipModel::new(fanouts.clone(), b);
        let analytic = model.scores(&g, &train);

        let mut rng = StdRng::seed_from_u64(5);
        let trials = 4000;
        let mut counts = vec![0usize; g.num_vertices()];
        let mut scratch = Vec::new();
        for _ in 0..trials {
            // Uniform minibatch of size b without replacement.
            let mut pool = train.clone();
            for i in 0..b {
                let j = rand::Rng::gen_range(&mut rng, i..pool.len());
                pool.swap(i, j);
            }
            let mut included = vec![false; g.num_vertices()];
            let mut frontier: Vec<VertexId> = pool[..b].to_vec();
            for h in 1..=fanouts.num_hops() {
                let f = fanouts.hop(h);
                let mut next: Vec<VertexId> = Vec::new();
                for &v in &frontier {
                    spp_sampler::sample::sample_neighbors(&g, v, f, &mut rng, &mut scratch);
                    next.extend_from_slice(&scratch);
                }
                next.sort_unstable();
                next.dedup();
                for &u in &next {
                    included[u as usize] = true;
                }
                frontier = next;
            }
            for (v, &inc) in included.iter().enumerate() {
                if inc {
                    counts[v] += 1;
                }
            }
        }
        for v in 0..g.num_vertices() {
            let a = analytic[v];
            let emp = counts[v] as f64 / trials as f64;
            let sigma = (a * (1.0 - a) / trials as f64).sqrt().max(1e-3);
            assert!(
                (emp - a).abs() < 5.0 * sigma + 0.02,
                "vertex {v}: empirical {emp:.4} vs analytic {a:.4}"
            );
        }
    }

    #[test]
    fn partition_scores_shape() {
        let g = complete(10);
        let model = VipModel::new(Fanouts::new(vec![2]), 2);
        let parts = vec![vec![0, 1, 2], vec![5, 6]];
        let s = model.partition_scores(&g, &parts);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].len(), 10);
        // Partition 0's VIP of vertex 9 reflects reachability from {0,1,2}.
        assert!(s[0][9] > 0.0);
    }

    #[test]
    fn high_degree_hub_gets_high_vip() {
        let g = star(50);
        let train: Vec<VertexId> = (1..30).collect();
        let p = VipModel::new(Fanouts::new(vec![5, 5]), 8).scores(&g, &train);
        // Center is sampled by every minibatch vertex with prob 1.
        assert!(p[0] > 0.99);
        // A random leaf is reached only via the center's fanout.
        assert!(p[40] < p[0]);
    }
}
