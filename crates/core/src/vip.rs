//! The analytical VIP model (Proposition 1).
//!
//! For node-wise sampling with per-hop fanouts `f_h`, minibatch size `B`
//! drawn uniformly from a training set `T`, Proposition 1 gives the
//! probability that a vertex `u` appears in the sampled L-hop expanded
//! neighborhood of a minibatch:
//!
//! ```text
//! p[0](u) = B / |T|                          if u ∈ T, else 0
//! p[h](u) = 1 - Π_{v ∈ N(u)} (1 - t_h(u,v) · p[h-1](v))
//! p(u)    = 1 - Π_{h=1..L} (1 - p[h](u))
//! t_h(u,v) = min(1, f_h / d(v))
//! ```
//!
//! Products over high-degree neighborhoods underflow `f64`, so the
//! implementation accumulates `ln(1 - t·p)` with `ln_1p` and
//! exponentiates once per vertex per hop — the same `O(L(M+N))` sweep,
//! numerically stable.
//!
//! # Execution strategies
//!
//! The recurrence is evaluated by one shared per-vertex kernel
//! ([`VipModel::hop_scores_with`]) under two interchangeable sweep
//! strategies:
//!
//! - **Dense** — every vertex every hop, `O(L(M+N))`, parallelized over
//!   CSR-edge-balanced vertex chunks.
//! - **Frontier-sparse** — only vertices whose out-neighborhood carries
//!   nonzero `prev` mass are updated (`O(active)` per hop); candidates
//!   are discovered through the transposed graph and everything outside
//!   the frontier keeps the exact `+0.0` the dense sweep would produce,
//!   so the two strategies are bit-identical.
//!
//! All parallel decomposition goes through [`spp_pool::WorkerPool`]:
//! chunk boundaries are a pure function of the graph (vertex count and
//! cumulative edge weight), and per-vertex results merge in index order,
//! so scores are bit-identical for any worker count, serial included.

use spp_graph::{CsrGraph, VertexId};
use spp_pool::{balanced_ranges, WorkerPool};
use spp_sampler::Fanouts;
use spp_telemetry::metrics::{self, Counter, Histogram};
use std::sync::OnceLock;

/// Cached telemetry handles for the sweep hot path: which strategy each
/// hop chose, how large its frontier was, and how long each partition's
/// sweep ran (the `core.vip.partition_sweep` span histogram is
/// auto-registered by the span itself).
struct VipMetrics {
    hops_dense: Counter,
    hops_sparse: Counter,
    frontier_size: Histogram,
}

fn vip_metrics() -> &'static VipMetrics {
    static METRICS: OnceLock<VipMetrics> = OnceLock::new();
    METRICS.get_or_init(|| VipMetrics {
        hops_dense: metrics::counter("core.vip.hops_dense"),
        hops_sparse: metrics::counter("core.vip.hops_sparse"),
        frontier_size: metrics::histogram("core.vip.frontier_size"),
    })
}

/// How [`VipModel::hop_scores_with`] evaluates each hop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SweepStrategy {
    /// Per-hop choice between dense and frontier-sparse, driven only by
    /// the nonzero mass of the previous hop (deterministic: depends on
    /// the data, never on timing).
    #[default]
    Auto,
    /// Update every vertex every hop.
    Dense,
    /// Update only vertices with nonzero in-mass, via the transpose.
    FrontierSparse,
}

/// Computes analytic vertex-inclusion probabilities.
///
/// # Example
///
/// ```
/// use spp_core::VipModel;
/// use spp_graph::generate::complete;
/// use spp_sampler::Fanouts;
///
/// // On a complete graph with fanout >= degree, any 1-hop neighbor of a
/// // certain minibatch vertex is included with probability 1.
/// let g = complete(6);
/// let model = VipModel::new(Fanouts::new(vec![10]), 1);
/// let p = model.scores(&g, &[0]);
/// assert!((p[1] - 1.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct VipModel {
    fanouts: Fanouts,
    batch_size: usize,
}

impl VipModel {
    /// Creates a model for the given fanouts and minibatch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(fanouts: Fanouts, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            fanouts,
            batch_size,
        }
    }

    /// The configured fanouts.
    pub fn fanouts(&self) -> &Fanouts {
        &self.fanouts
    }

    /// Initial (hop-0) probabilities: `min(1, B/|T|)` on `train`, else 0.
    pub fn initial_probabilities(&self, n: usize, train: &[VertexId]) -> Vec<f64> {
        let mut p0 = vec![0.0f64; n];
        if train.is_empty() {
            return p0;
        }
        let p = (self.batch_size as f64 / train.len() as f64).min(1.0);
        for &v in train {
            p0[v as usize] = p;
        }
        p0
    }

    /// Hop-wise VIP vectors `p[1..=L]` from arbitrary initial
    /// probabilities (Proposition 1's recurrence), on the global pool
    /// with automatic strategy selection.
    ///
    /// # Panics
    ///
    /// Panics if `p0.len() != graph.num_vertices()`.
    pub fn hop_scores(&self, graph: &CsrGraph, p0: &[f64]) -> Vec<Vec<f64>> {
        self.hop_scores_with(WorkerPool::global(), graph, p0, SweepStrategy::Auto)
    }

    /// [`VipModel::hop_scores`] with an explicit pool and sweep
    /// strategy. Results are bit-identical for every `(pool, strategy)`
    /// combination — the strategy only changes which vertices are
    /// *visited*, and the pool only changes which worker visits them.
    ///
    /// # Panics
    ///
    /// Panics if `p0.len() != graph.num_vertices()`.
    pub fn hop_scores_with(
        &self,
        pool: WorkerPool,
        graph: &CsrGraph,
        p0: &[f64],
        strategy: SweepStrategy,
    ) -> Vec<Vec<f64>> {
        self.hop_scores_impl(pool, graph, None, None, p0, strategy)
    }

    fn hop_scores_impl(
        &self,
        pool: WorkerPool,
        graph: &CsrGraph,
        shared_transpose: Option<&CsrGraph>,
        shared_inv_deg: Option<&[f64]>,
        p0: &[f64],
        strategy: SweepStrategy,
    ) -> Vec<Vec<f64>> {
        assert_eq!(p0.len(), graph.num_vertices(), "p0 size mismatch");
        let n = graph.num_vertices();
        // Like the transpose, the reciprocal-degree table is shared by
        // the K partition sweeps instead of being rebuilt per call.
        let local_inv_deg: Vec<f64>;
        let inv_deg: &[f64] = match shared_inv_deg {
            Some(t) => t,
            None => {
                local_inv_deg = inv_degrees(graph);
                &local_inv_deg
            }
        };
        // The transpose drives frontier discovery; build it at most once
        // per call (or borrow the caller's, in partition sweeps where all
        // K partitions share one).
        let mut local_transpose: Option<CsrGraph> = None;
        let mut hops: Vec<Vec<f64>> = Vec::with_capacity(self.fanouts.num_hops());
        for h in 1..=self.fanouts.num_hops() {
            let f = self.fanouts.hop(h) as f64;
            let prev: &[f64] = hops.last().map_or(p0, Vec::as_slice);
            let support: Vec<VertexId> = (0..n as VertexId)
                .filter(|&v| prev[v as usize] > 0.0)
                .collect();
            let sparse = match strategy {
                SweepStrategy::Dense => false,
                SweepStrategy::FrontierSparse => true,
                // A sparse hop scans the support's in-edges twice (once
                // to discover candidates, once inside the kernel via
                // each candidate's full out-neighborhood); require the
                // support to be a small fraction of the graph before
                // paying for the transpose walk. Pure function of
                // `prev`, so the choice is replica-deterministic.
                SweepStrategy::Auto => support.len() * 8 <= n,
            };
            if metrics::enabled() {
                let m = vip_metrics();
                m.frontier_size.observe(support.len() as u64);
                if sparse {
                    m.hops_sparse.inc();
                } else {
                    m.hops_dense.inc();
                }
            }
            let transpose: Option<&CsrGraph> =
                if sparse {
                    Some(shared_transpose.unwrap_or_else(|| {
                        local_transpose.get_or_insert_with(|| graph.transpose())
                    }))
                } else {
                    None
                };
            let cur = match transpose {
                Some(tr) => frontier_sweep(pool, graph, tr, inv_deg, prev, &support, f),
                None => dense_sweep(pool, graph, inv_deg, prev, f),
            };
            hops.push(cur);
        }
        hops
    }

    /// Combined VIP values `p(u) = 1 - Π_h (1 - p[h](u))` from hop vectors.
    pub fn combine(hops: &[Vec<f64>]) -> Vec<f64> {
        let n = hops.first().map_or(0, Vec::len);
        let mut out = vec![0.0f64; n];
        for (u, o) in out.iter_mut().enumerate() {
            let mut log_miss = 0.0f64;
            for h in hops {
                let p = h[u];
                if p >= 1.0 {
                    log_miss = f64::NEG_INFINITY;
                    break;
                }
                log_miss += (-p).ln_1p();
            }
            *o = crate::clamp01(1.0 - log_miss.exp());
        }
        out
    }

    /// End-to-end: VIP values for minibatches drawn from `train`.
    // spp-det(core.vip_scores)
    pub fn scores(&self, graph: &CsrGraph, train: &[VertexId]) -> Vec<f64> {
        self.scores_with(WorkerPool::global(), graph, train, SweepStrategy::Auto)
    }

    /// [`VipModel::scores`] with an explicit pool and sweep strategy.
    pub fn scores_with(
        &self,
        pool: WorkerPool,
        graph: &CsrGraph,
        train: &[VertexId],
        strategy: SweepStrategy,
    ) -> Vec<f64> {
        let p0 = self.initial_probabilities(graph.num_vertices(), train);
        let hops = self.hop_scores_with(pool, graph, &p0, strategy);
        Self::combine(&hops)
    }

    /// Per-partition VIP values: entry `k` holds `p_k(u)` for minibatches
    /// drawn from partition `k`'s training vertices (`train_of_part[k]`).
    /// This is the quantity the caching policy ranks (paper §3.2 computes
    /// rankings per partition, footnote 1). Runs on the global pool.
    pub fn partition_scores(
        &self,
        graph: &CsrGraph,
        train_of_part: &[Vec<VertexId>],
    ) -> Vec<Vec<f64>> {
        self.partition_scores_with(
            WorkerPool::global(),
            graph,
            train_of_part,
            SweepStrategy::Auto,
        )
    }

    /// [`VipModel::partition_scores`] with an explicit pool and sweep
    /// strategy. The K independent sweeps are scheduled as pool jobs
    /// (never one unbounded thread per partition), each sweep
    /// parallelizing internally on its share of the worker budget via
    /// [`WorkerPool::split`]; the transposed graph is built once and
    /// shared by every partition's frontier discovery.
    pub fn partition_scores_with(
        &self,
        pool: WorkerPool,
        graph: &CsrGraph,
        train_of_part: &[Vec<VertexId>],
        strategy: SweepStrategy,
    ) -> Vec<Vec<f64>> {
        let k = train_of_part.len();
        if k == 0 {
            return Vec::new();
        }
        // Partition train sets are small by construction (|T|/K), so the
        // frontier path is the expected one; pay for the transpose and
        // the reciprocal-degree table once up front instead of once per
        // partition job.
        let transpose = match strategy {
            SweepStrategy::Dense => None,
            _ => Some(graph.transpose()),
        };
        let inv_deg = inv_degrees(graph);
        let inner = pool.split(k);
        pool.run_jobs(k, |i| {
            let _sweep = spp_telemetry::span!("core.vip.partition_sweep");
            let p0 = self.initial_probabilities(graph.num_vertices(), &train_of_part[i]);
            let hops = self.hop_scores_impl(
                inner,
                graph,
                transpose.as_ref(),
                Some(&inv_deg),
                &p0,
                strategy,
            );
            Self::combine(&hops)
        })
    }
}

/// Reciprocal out-degrees, `1/d(v)` (`+inf` for isolated vertices, which
/// makes `t = min(1, f/d)` come out as 1 exactly like the direct
/// division). Computed once per sweep so the inner kernel multiplies
/// instead of dividing.
fn inv_degrees(graph: &CsrGraph) -> Vec<f64> {
    (0..graph.num_vertices() as VertexId)
        .map(|v| 1.0 / graph.degree(v) as f64)
        .collect()
}

/// Lane width of the blocked [`hop_update`] kernel (DESIGN.md §14).
const HOP_LANES: usize = 8;

/// The shared inner kernel of Proposition 1's recurrence: one vertex's
/// next-hop inclusion probability from its out-neighborhood. Every sweep
/// (serial, dense-parallel, frontier-sparse) evaluates exactly this
/// function, which is what makes them bit-identical.
///
/// Blocked evaluation: neighbors are processed in 8-lane chunks. Each
/// chunk gathers its `x = min(1, f/d(v)) · p(v)` terms branch-free into
/// a lane buffer (a `p(v) ≤ 0` neighbor becomes an exact-zero term,
/// `ln_1p(-0) = -0`, a no-op on the accumulator — replacing the seed's
/// skip branch), checks saturation for the whole chunk (`x ≥ 1` means
/// the miss probability is exactly zero, so the result is exactly `1.0`
/// — same value the seed's early `-inf` break produced), then spreads
/// the `ln_1p` terms over two alternating accumulators to break the
/// serial FP dependency chain. The accumulation order (even lanes,
/// odd lanes, fixed combine, tail ascending) is a pure function of the
/// neighbor list — bit-identical for any worker count, because pool
/// chunking only splits *vertices*, never one vertex's neighbor list.
// spp-hot(core.hop_update)
#[inline]
fn hop_update(graph: &CsrGraph, inv_deg: &[f64], prev: &[f64], f: f64, u: VertexId) -> f64 {
    let neighbors = graph.neighbors(u);
    let chunks = neighbors.chunks_exact(HOP_LANES);
    let tail = chunks.remainder();
    let mut acc = [0.0f64; 2];
    for c8 in chunks {
        let mut x = [0.0f64; HOP_LANES];
        for (l, &v) in c8.iter().enumerate() {
            let pv = prev[v as usize];
            let t = (f * inv_deg[v as usize]).min(1.0);
            x[l] = (t * pv).max(0.0);
        }
        if x.iter().any(|&xi| xi >= 1.0) {
            return 1.0;
        }
        for (l, &xi) in x.iter().enumerate() {
            acc[l & 1] += (-xi).ln_1p();
        }
    }
    let mut log_miss = acc[0] + acc[1];
    for &v in tail {
        let pv = prev[v as usize];
        let t = (f * inv_deg[v as usize]).min(1.0);
        let x = (t * pv).max(0.0);
        if x >= 1.0 {
            return 1.0;
        }
        log_miss += (-x).ln_1p();
    }
    crate::clamp01(1.0 - log_miss.exp())
}

/// One dense hop: every vertex updated, vertices chunked so each chunk
/// carries an equal share of `N + M` work (CSR edge counts), chunk
/// boundaries a pure function of the graph.
fn dense_sweep(
    pool: WorkerPool,
    graph: &CsrGraph,
    inv_deg: &[f64],
    prev: &[f64],
    f: f64,
) -> Vec<f64> {
    let n = graph.num_vertices();
    let total = (n + graph.num_edges()) as u64;
    let jobs = pool.jobs_for_cost(total);
    let edges_before = |i: usize| -> u64 {
        if i == n {
            graph.num_edges() as u64
        } else {
            graph.neighbor_range(i as VertexId).start as u64
        }
    };
    let ranges = balanced_ranges(n, jobs, |i| i as u64 + edges_before(i));
    let cuts: Vec<usize> = ranges.iter().map(|r| r.end).collect();
    let mut cur = vec![0.0f64; n];
    pool.par_chunks(&mut cur, &cuts, |_, offset, chunk| {
        for (j, slot) in chunk.iter_mut().enumerate() {
            *slot = hop_update(graph, inv_deg, prev, f, (offset + j) as VertexId);
        }
    });
    cur
}

/// One frontier-sparse hop: only vertices with an out-edge into
/// `support` (the nonzero entries of `prev`) can change, and they are
/// found by walking the transposed graph. Everything else keeps the
/// exact `+0.0` the dense sweep produces for it (`1 - exp(0) = +0.0`),
/// so the result is bit-identical to [`dense_sweep`]. Active vertices
/// are updated in chunks balanced by out-degree.
fn frontier_sweep(
    pool: WorkerPool,
    graph: &CsrGraph,
    transpose: &CsrGraph,
    inv_deg: &[f64],
    prev: &[f64],
    support: &[VertexId],
    f: f64,
) -> Vec<f64> {
    let n = graph.num_vertices();
    let mut on_frontier = vec![false; n];
    let mut active: Vec<VertexId> = Vec::new();
    for &v in support {
        for &u in transpose.neighbors(v) {
            if !on_frontier[u as usize] {
                on_frontier[u as usize] = true;
                active.push(u);
            }
        }
    }
    // Ascending vertex order: the chunk decomposition below must be a
    // pure function of the graph and `prev`, not of discovery order.
    active.sort_unstable();
    let mut work_before = vec![0u64; active.len() + 1];
    for (i, &u) in active.iter().enumerate() {
        work_before[i + 1] = work_before[i] + 1 + graph.degree(u) as u64;
    }
    let jobs = pool.jobs_for_cost(work_before[active.len()]);
    let ranges = balanced_ranges(active.len(), jobs, |i| work_before[i]);
    let values = pool.run_jobs(ranges.len(), |j| {
        ranges[j]
            .clone()
            .map(|i| hop_update(graph, inv_deg, prev, f, active[i]))
            .collect::<Vec<f64>>()
    });
    let mut cur = vec![0.0f64; n];
    for (range, vals) in ranges.iter().zip(&values) {
        for (i, &val) in range.clone().zip(vals) {
            cur[active[i] as usize] = val;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spp_graph::generate::{complete, ring_with_chords, star, GeneratorConfig};

    #[test]
    fn probabilities_in_unit_interval() {
        let g = GeneratorConfig::rmat(512, 4096).seed(1).build();
        let train: Vec<VertexId> = (0..100).collect();
        let p = VipModel::new(Fanouts::new(vec![5, 5, 5]), 32).scores(&g, &train);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x) && x.is_finite()));
    }

    #[test]
    fn empty_train_set_gives_zero() {
        let g = complete(10);
        let p = VipModel::new(Fanouts::new(vec![3]), 4).scores(&g, &[]);
        assert!(p.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn batch_equal_to_train_makes_p0_one() {
        let g = complete(5);
        let model = VipModel::new(Fanouts::new(vec![10]), 5);
        let train: Vec<VertexId> = (0..5).collect();
        let p0 = model.initial_probabilities(5, &train);
        assert!(p0.iter().all(|&x| x == 1.0));
        // Full expansion from the whole graph: everything certain.
        let p = model.scores(&g, &train);
        assert!(p.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn monotone_in_fanout() {
        let g = GeneratorConfig::rmat(256, 2048).seed(2).build();
        let train: Vec<VertexId> = (0..50).collect();
        let small = VipModel::new(Fanouts::new(vec![2, 2]), 16).scores(&g, &train);
        let large = VipModel::new(Fanouts::new(vec![8, 8]), 16).scores(&g, &train);
        for (s, l) in small.iter().zip(&large) {
            assert!(l >= s, "VIP must grow with fanout: {s} vs {l}");
        }
    }

    #[test]
    fn monotone_in_batch_size() {
        let g = GeneratorConfig::rmat(256, 2048).seed(3).build();
        let train: Vec<VertexId> = (0..100).collect();
        let small = VipModel::new(Fanouts::new(vec![4, 4]), 8).scores(&g, &train);
        let large = VipModel::new(Fanouts::new(vec![4, 4]), 64).scores(&g, &train);
        for (s, l) in small.iter().zip(&large) {
            assert!(*l >= s - 1e-12, "VIP must grow with batch size");
        }
    }

    #[test]
    fn random_walk_special_case_is_linear() {
        // With fanout 1 and batch 1, p[1](u) = Σ_v t(u,v)·p0(v) exactly
        // when at most one neighbor has nonzero p0 (no product cross
        // terms). Star center: leaves sample the center w.p. 1.
        let g = star(6);
        let model = VipModel::new(Fanouts::new(vec![1]), 1);
        // Train set = {1} (a leaf with degree 1): t(0,1) = min(1, 1/1) = 1.
        let p = model.scores(&g, &[1]);
        assert!((p[0] - 1.0).abs() < 1e-12);
        // Other leaves unreachable in one hop.
        assert_eq!(p[2], 0.0);
    }

    #[test]
    fn full_expansion_special_case() {
        // Fanout >= max degree: p[h](u) = 1 - Π (1 - p[h-1](v)), the
        // deterministic BFS-expansion probability.
        let g = ring_with_chords(12, 1);
        let model = VipModel::new(Fanouts::new(vec![10]), 1);
        let train: Vec<VertexId> = vec![0, 2];
        let p = model.scores(&g, &train);
        // Vertex 1 neighbors both train vertices; inclusion prob
        // = 1 - (1 - 0.5)(1 - 0.5) = 0.75.
        assert!((p[1] - 0.75).abs() < 1e-12);
        // Vertex 6 is far away.
        assert_eq!(p[6], 0.0);
    }

    #[test]
    fn agrees_with_monte_carlo() {
        // Empirical inclusion frequency under the exact random process the
        // model analyzes — frontier expansion per Proposition 1's steps
        // (i)–(iii) — must match the analytic VIP within sampling noise
        // plus the model's independence-approximation slack.
        let g = GeneratorConfig::erdos_renyi(60, 300).seed(4).build();
        let train: Vec<VertexId> = (0..40).collect();
        let fanouts = Fanouts::new(vec![3, 2]);
        let b = 4usize;
        let model = VipModel::new(fanouts.clone(), b);
        let analytic = model.scores(&g, &train);

        let mut rng = StdRng::seed_from_u64(5);
        let trials = 4000;
        let mut counts = vec![0usize; g.num_vertices()];
        let mut scratch = Vec::new();
        for _ in 0..trials {
            // Uniform minibatch of size b without replacement.
            let mut pool = train.clone();
            for i in 0..b {
                let j = rand::Rng::gen_range(&mut rng, i..pool.len());
                pool.swap(i, j);
            }
            let mut included = vec![false; g.num_vertices()];
            let mut frontier: Vec<VertexId> = pool[..b].to_vec();
            for h in 1..=fanouts.num_hops() {
                let f = fanouts.hop(h);
                let mut next: Vec<VertexId> = Vec::new();
                for &v in &frontier {
                    spp_sampler::sample::sample_neighbors(&g, v, f, &mut rng, &mut scratch);
                    next.extend_from_slice(&scratch);
                }
                next.sort_unstable();
                next.dedup();
                for &u in &next {
                    included[u as usize] = true;
                }
                frontier = next;
            }
            for (v, &inc) in included.iter().enumerate() {
                if inc {
                    counts[v] += 1;
                }
            }
        }
        for v in 0..g.num_vertices() {
            let a = analytic[v];
            let emp = counts[v] as f64 / trials as f64;
            let sigma = (a * (1.0 - a) / trials as f64).sqrt().max(1e-3);
            assert!(
                (emp - a).abs() < 5.0 * sigma + 0.02,
                "vertex {v}: empirical {emp:.4} vs analytic {a:.4}"
            );
        }
    }

    #[test]
    fn partition_scores_shape() {
        let g = complete(10);
        let model = VipModel::new(Fanouts::new(vec![2]), 2);
        let parts = vec![vec![0, 1, 2], vec![5, 6]];
        let s = model.partition_scores(&g, &parts);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].len(), 10);
        // Partition 0's VIP of vertex 9 reflects reachability from {0,1,2}.
        assert!(s[0][9] > 0.0);
    }

    /// Bit-level equality for probability vectors (clippy's `float_cmp`
    /// is exactly what we want here: the determinism contract is
    /// bit-identity, not tolerance).
    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn hop_scores_bit_identical_across_pools_and_strategies() {
        let g = GeneratorConfig::rmat(1024, 8192).seed(7).build();
        let train: Vec<VertexId> = (0..64).collect();
        let model = VipModel::new(Fanouts::new(vec![7, 5, 3]), 16);
        let p0 = model.initial_probabilities(g.num_vertices(), &train);
        let reference = model.hop_scores_with(WorkerPool::serial(), &g, &p0, SweepStrategy::Dense);
        for workers in [1usize, 2, 8] {
            for strategy in [
                SweepStrategy::Auto,
                SweepStrategy::Dense,
                SweepStrategy::FrontierSparse,
            ] {
                let got = model.hop_scores_with(WorkerPool::new(workers), &g, &p0, strategy);
                assert_eq!(got.len(), reference.len());
                for (h, (a, b)) in reference.iter().zip(&got).enumerate() {
                    assert_bits_eq(a, b, &format!("workers={workers} {strategy:?} hop {h}"));
                }
            }
        }
    }

    #[test]
    fn scores_bit_identical_across_pools() {
        let g = GeneratorConfig::rmat(512, 4096).seed(11).build();
        let train: Vec<VertexId> = (100..140).collect();
        let model = VipModel::new(Fanouts::new(vec![4, 4]), 8);
        let reference = model.scores_with(WorkerPool::serial(), &g, &train, SweepStrategy::Dense);
        for workers in [2usize, 8] {
            let got = model.scores_with(
                WorkerPool::new(workers),
                &g,
                &train,
                SweepStrategy::FrontierSparse,
            );
            assert_bits_eq(&reference, &got, &format!("scores workers={workers}"));
        }
    }

    #[test]
    fn partition_scores_bit_identical_across_pools() {
        let g = GeneratorConfig::rmat(512, 4096).seed(13).build();
        let parts: Vec<Vec<VertexId>> = vec![
            (0..30).collect(),
            (200..230).collect(),
            (400..420).collect(),
        ];
        let model = VipModel::new(Fanouts::new(vec![5, 5]), 8);
        let reference =
            model.partition_scores_with(WorkerPool::serial(), &g, &parts, SweepStrategy::Dense);
        for workers in [1usize, 2, 8] {
            for strategy in [SweepStrategy::Auto, SweepStrategy::FrontierSparse] {
                let got =
                    model.partition_scores_with(WorkerPool::new(workers), &g, &parts, strategy);
                assert_eq!(got.len(), reference.len());
                for (k, (a, b)) in reference.iter().zip(&got).enumerate() {
                    assert_bits_eq(a, b, &format!("workers={workers} {strategy:?} part {k}"));
                }
            }
        }
    }

    #[test]
    fn frontier_skips_work_but_not_results_on_tiny_train_sets() {
        // One isolated train vertex in a big sparse graph: the frontier
        // sweep touches a handful of vertices, the dense sweep touches
        // all of them; outputs must still agree bitwise.
        let g = GeneratorConfig::rmat(2048, 6144).seed(17).build();
        let model = VipModel::new(Fanouts::new(vec![3, 3, 3]), 1);
        let pool = WorkerPool::new(4);
        let dense = model.scores_with(pool, &g, &[5], SweepStrategy::Dense);
        let sparse = model.scores_with(pool, &g, &[5], SweepStrategy::FrontierSparse);
        assert_bits_eq(&dense, &sparse, "tiny train set");
    }

    #[test]
    fn high_degree_hub_gets_high_vip() {
        let g = star(50);
        let train: Vec<VertexId> = (1..30).collect();
        let p = VipModel::new(Fanouts::new(vec![5, 5]), 8).scores(&g, &train);
        // Center is sampled by every minibatch vertex with prob 1.
        assert!(p[0] > 0.99);
        // A random leaf is reached only via the center's fanout.
        assert!(p[40] < p[0]);
    }
}
