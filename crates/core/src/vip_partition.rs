//! VIP-aware partition refinement (the paper's §6 future work).
//!
//! The paper proposes "apply[ing] the access pattern analysis to improve
//! the initial graph partitioning, with an aim of reducing the
//! communication volume orthogonally to the use of caching". This module
//! implements the feature-placement version of that idea: with
//! partition-wise VIP values `p_k(v)`, the expected per-epoch remote
//! volume (no caching) is
//!
//! ```text
//! E[volume] = Σ_k Σ_{v : part(v) ≠ k} batches_k · p_k(v)
//! ```
//!
//! Re-homing a (non-training) vertex `v` from partition `a` to `b` leaves
//! every `p_k` unchanged — minibatch streams are driven by training
//! vertices only — and changes the expected volume by exactly
//! `w_a·p_a(v) − w_b·p_b(v)` (with `w_k` the per-epoch batch counts), so
//! a greedy pass that moves vertices toward their highest-VIP partition
//! under balance constraints is an exact descent on the objective.

use crate::cache::StaticCache;
use spp_graph::VertexId;
use spp_partition::{Partitioning, VertexWeights, NUM_CONSTRAINTS};

/// Greedy VIP-aware re-homing of non-training vertex features.
///
/// # Example
///
/// ```
/// use spp_core::vip_partition::VipRefiner;
/// use spp_core::VipModel;
/// use spp_graph::generate::GeneratorConfig;
/// use spp_partition::simple::block_partition;
/// use spp_partition::VertexWeights;
/// use spp_sampler::Fanouts;
///
/// let g = GeneratorConfig::planted_partition(200, 1200, 2, 0.8).seed(1).build();
/// let part = block_partition(200, 2);
/// let w = VertexWeights::uniform(&g);
/// let train = vec![vec![0u32, 1, 2], vec![100, 101, 102]];
/// let vip = VipModel::new(Fanouts::new(vec![3, 3]), 2).partition_scores(&g, &train);
/// let protected = vec![false; 200];
/// let before = VipRefiner::expected_volume(&part, &vip, &[1.0, 1.0]);
/// let (refined, _moves) =
///     VipRefiner::new().refine(&part, &w, &vip, &[1.0, 1.0], &protected);
/// let after = VipRefiner::expected_volume(&refined, &vip, &[1.0, 1.0]);
/// assert!(after <= before);
/// ```
#[derive(Clone, Debug)]
pub struct VipRefiner {
    balance_tolerance: f64,
    max_moves: Option<usize>,
}

impl Default for VipRefiner {
    fn default() -> Self {
        Self {
            balance_tolerance: 1.05,
            max_moves: None,
        }
    }
}

impl VipRefiner {
    /// Creates a refiner with the default 5% balance tolerance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-constraint balance tolerance (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if the tolerance is below 1.
    pub fn balance_tolerance(mut self, tol: f64) -> Self {
        assert!(tol >= 1.0, "tolerance must be >= 1");
        self.balance_tolerance = tol;
        self
    }

    /// Caps the number of moves (default: unlimited).
    pub fn max_moves(mut self, m: usize) -> Self {
        self.max_moves = Some(m);
        self
    }

    /// The analytic expected remote volume of an assignment under
    /// per-partition VIP values and per-partition epoch weights
    /// (typically the number of minibatches each partition runs per
    /// epoch).
    pub fn expected_volume(
        partitioning: &Partitioning,
        vip: &[Vec<f64>],
        epoch_weight: &[f64],
    ) -> f64 {
        let k = partitioning.num_parts();
        assert_eq!(vip.len(), k, "one VIP vector per partition");
        assert_eq!(epoch_weight.len(), k, "one weight per partition");
        let mut total = 0.0;
        for (p, pv) in vip.iter().enumerate() {
            for v in 0..partitioning.num_vertices() {
                if partitioning.part_of(v as VertexId) != p as u32 {
                    total += epoch_weight[p] * pv[v];
                }
            }
        }
        total
    }

    /// Refines `partitioning` by re-homing unprotected vertices toward
    /// their highest expected-access partition, best-gain first, while
    /// all [`NUM_CONSTRAINTS`] balance constraints stay within tolerance.
    /// `protected[v]` marks vertices that must not move (training and
    /// validation vertices, whose placement defines minibatch streams).
    ///
    /// Returns the refined partitioning and the number of moves applied.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn refine(
        &self,
        partitioning: &Partitioning,
        weights: &VertexWeights,
        vip: &[Vec<f64>],
        epoch_weight: &[f64],
        protected: &[bool],
    ) -> (Partitioning, usize) {
        let n = partitioning.num_vertices();
        let k = partitioning.num_parts();
        assert_eq!(weights.len(), n, "weights size mismatch");
        assert_eq!(vip.len(), k, "one VIP vector per partition");
        assert_eq!(protected.len(), n, "protected size mismatch");

        // Balance state and limits.
        let mut loads = vec![[0u64; NUM_CONSTRAINTS]; k];
        for v in 0..n {
            let p = partitioning.part_of(v as VertexId) as usize;
            for c in 0..NUM_CONSTRAINTS {
                loads[p][c] += weights.of(v as VertexId)[c];
            }
        }
        let totals = weights.totals();
        let mut max_single = [0u64; NUM_CONSTRAINTS];
        for w in weights.as_slice() {
            for c in 0..NUM_CONSTRAINTS {
                max_single[c] = max_single[c].max(w[c]);
            }
        }
        let mut limits = [u64::MAX; NUM_CONSTRAINTS];
        for c in 0..NUM_CONSTRAINTS {
            if totals[c] > 0 {
                limits[c] = (totals[c] as f64 / k as f64 * self.balance_tolerance).ceil() as u64
                    + max_single[c];
            }
        }

        // Candidate moves: (gain, v, dst), gain > 0 only.
        let mut candidates: Vec<(f64, u32, u32)> = Vec::new();
        for v in 0..n as u32 {
            if protected[v as usize] {
                continue;
            }
            let home = partitioning.part_of(v) as usize;
            let cost_here = epoch_weight
                .iter()
                .enumerate()
                .filter(|&(p, _)| p != home)
                .map(|(p, &w)| w * vip[p][v as usize])
                .sum::<f64>();
            let mut best: Option<(f64, u32)> = None;
            for dst in 0..k {
                if dst == home {
                    continue;
                }
                let cost_there = epoch_weight
                    .iter()
                    .enumerate()
                    .filter(|&(p, _)| p != dst)
                    .map(|(p, &w)| w * vip[p][v as usize])
                    .sum::<f64>();
                let gain = cost_here - cost_there;
                if gain > 1e-12 && best.is_none_or(|(g, _)| gain > g) {
                    best = Some((gain, dst as u32));
                }
            }
            if let Some((gain, dst)) = best {
                candidates.push((gain, v, dst));
            }
        }
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut assignment = partitioning.assignment().to_vec();
        let mut moves = 0usize;
        let budget = self.max_moves.unwrap_or(usize::MAX);
        for (_, v, dst) in candidates {
            if moves >= budget {
                break;
            }
            let vi = v as usize;
            let src = assignment[vi] as usize;
            let dst = dst as usize;
            let w = weights.of(v);
            let fits = (0..NUM_CONSTRAINTS).all(|c| loads[dst][c] + w[c] <= limits[c]);
            if !fits {
                continue;
            }
            for c in 0..NUM_CONSTRAINTS {
                loads[src][c] -= w[c];
                loads[dst][c] += w[c];
            }
            assignment[vi] = dst as u32;
            moves += 1;
        }
        (Partitioning::new(assignment, k), moves)
    }

    /// Residual expected volume after applying per-partition caches on
    /// top of an assignment (cached vertices cost nothing).
    pub fn expected_volume_with_caches(
        partitioning: &Partitioning,
        vip: &[Vec<f64>],
        epoch_weight: &[f64],
        caches: &[StaticCache],
    ) -> f64 {
        let k = partitioning.num_parts();
        assert_eq!(caches.len(), k, "one cache per partition");
        let mut total = 0.0;
        for (p, pv) in vip.iter().enumerate() {
            for v in 0..partitioning.num_vertices() as VertexId {
                if partitioning.part_of(v) != p as u32 && !caches[p].contains(v) {
                    total += epoch_weight[p] * pv[v as usize];
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VipModel;
    use spp_graph::generate::GeneratorConfig;
    use spp_graph::CsrGraph;
    use spp_partition::simple::block_partition;
    use spp_sampler::Fanouts;

    type Fixture = (
        CsrGraph,
        Partitioning,
        Vec<Vec<VertexId>>,
        Vec<Vec<f64>>,
        Vec<f64>,
    );

    fn fixture() -> Fixture {
        // Homophily 0.65 keeps enough cross-partition VIP mass that the
        // block partition always admits beneficial moves; at 0.8 the
        // instance is marginal and flips with the RNG stream.
        let g = GeneratorConfig::planted_partition(400, 3200, 4, 0.65)
            .seed(2)
            .build();
        let part = block_partition(400, 4);
        let train: Vec<Vec<VertexId>> = (0..4u32)
            .map(|p| part.members(p).into_iter().take(20).collect())
            .collect();
        let vip = VipModel::new(Fanouts::new(vec![4, 4]), 4).partition_scores(&g, &train);
        let weights = vec![5.0; 4];
        (g, part, train, vip, weights)
    }

    #[test]
    fn refinement_never_increases_expected_volume() {
        let (g, part, train, vip, ew) = fixture();
        let w = VertexWeights::uniform(&g);
        let mut protected = vec![false; 400];
        for t in &train {
            for &v in t {
                protected[v as usize] = true;
            }
        }
        let before = VipRefiner::expected_volume(&part, &vip, &ew);
        let (refined, moves) = VipRefiner::new()
            .balance_tolerance(1.10)
            .refine(&part, &w, &vip, &ew, &protected);
        let after = VipRefiner::expected_volume(&refined, &vip, &ew);
        assert!(moves > 0, "expected some beneficial moves");
        assert!(
            after < before,
            "volume must drop: {before:.1} -> {after:.1} ({moves} moves)"
        );
    }

    #[test]
    fn protected_vertices_never_move() {
        let (g, part, train, vip, ew) = fixture();
        let w = VertexWeights::uniform(&g);
        let mut protected = vec![false; 400];
        for t in &train {
            for &v in t {
                protected[v as usize] = true;
            }
        }
        let (refined, _) = VipRefiner::new().refine(&part, &w, &vip, &ew, &protected);
        for (v, &p) in protected.iter().enumerate() {
            if p {
                assert_eq!(
                    refined.part_of(v as VertexId),
                    part.part_of(v as VertexId),
                    "protected vertex {v} moved"
                );
            }
        }
    }

    #[test]
    fn balance_respected_after_refinement() {
        let (g, part, _, vip, ew) = fixture();
        let w = VertexWeights::uniform(&g);
        let protected = vec![false; 400];
        let (refined, _) = VipRefiner::new()
            .balance_tolerance(1.05)
            .refine(&part, &w, &vip, &ew, &protected);
        let imb = spp_partition::metrics::imbalance(&refined, &w);
        // Tolerance plus one max-weight vertex of slack.
        assert!(imb[0] < 1.08, "imbalance {imb:?}");
    }

    #[test]
    fn max_moves_caps_work() {
        let (g, part, _, vip, ew) = fixture();
        let w = VertexWeights::uniform(&g);
        let protected = vec![false; 400];
        let (_, moves) = VipRefiner::new()
            .max_moves(3)
            .refine(&part, &w, &vip, &ew, &protected);
        assert!(moves <= 3);
    }

    #[test]
    fn cached_volume_is_no_larger_than_uncached() {
        let (_, part, _, vip, ew) = fixture();
        let empty: Vec<StaticCache> = (0..4).map(|_| StaticCache::empty()).collect();
        let v0 = VipRefiner::expected_volume(&part, &vip, &ew);
        let v1 = VipRefiner::expected_volume_with_caches(&part, &vip, &ew, &empty);
        assert!((v0 - v1).abs() < 1e-9);
        // Cache the globally hottest remote vertices for partition 0.
        let mut remote: Vec<VertexId> = (0..400u32).filter(|&v| part.part_of(v) != 0).collect();
        remote.sort_by(|&a, &b| vip[0][b as usize].partial_cmp(&vip[0][a as usize]).unwrap());
        let mut caches = empty;
        caches[0] = StaticCache::from_members(&remote[..50]);
        let v2 = VipRefiner::expected_volume_with_caches(&part, &vip, &ew, &caches);
        assert!(v2 < v0);
    }
}
