//! The generalized VIP model: Proposition 1 with arbitrary transition
//! probabilities.
//!
//! The paper notes that "the VIP model of Proposition 1 applies to any
//! initial sampling and hop-wise transition probability function for
//! node-wise sampling", with "non-uniform neighbor sampling models …
//! accommodated via the corresponding transition probability matrix or
//! matrices." [`GeneralVipModel`] implements exactly that: the caller
//! supplies `t_h(u, v)` per hop (e.g. from
//! [`spp_sampler::weighted::EdgeWeights`]) and arbitrary initial
//! probabilities, and the same log-space `O(L(M+N))` sweep produces the
//! VIP values.

use spp_graph::{CsrGraph, VertexId};
use spp_sampler::weighted::EdgeWeights;
use spp_sampler::Fanouts;

/// Hop-wise transition probabilities `t_h(u, v)`: the probability that a
/// vertex `v`, present in the hop-(h−1) set, samples its neighbor `u` at
/// hop `h`.
pub trait TransitionModel {
    /// `t_h(u, v)` for `u ∈ N(v)`; callers only query true neighbors.
    fn probability(&self, graph: &CsrGraph, hop: usize, u: VertexId, v: VertexId) -> f64;
}

/// The uniform GraphSAGE model: `t_h(u, v) = min(1, f_h / d(v))`.
#[derive(Clone, Debug)]
pub struct UniformTransitions {
    fanouts: Fanouts,
}

impl UniformTransitions {
    /// Creates uniform transitions for the given fanouts.
    pub fn new(fanouts: Fanouts) -> Self {
        Self { fanouts }
    }
}

impl TransitionModel for UniformTransitions {
    fn probability(&self, graph: &CsrGraph, hop: usize, _u: VertexId, v: VertexId) -> f64 {
        (self.fanouts.hop(hop) as f64 / graph.degree(v) as f64).min(1.0)
    }
}

/// Weighted sampling transitions backed by [`EdgeWeights`].
#[derive(Clone, Debug)]
pub struct WeightedTransitions<'w> {
    weights: &'w EdgeWeights,
    fanouts: Fanouts,
}

impl<'w> WeightedTransitions<'w> {
    /// Creates weighted transitions for the given edge weights + fanouts.
    pub fn new(weights: &'w EdgeWeights, fanouts: Fanouts) -> Self {
        Self { weights, fanouts }
    }
}

impl TransitionModel for WeightedTransitions<'_> {
    fn probability(&self, graph: &CsrGraph, hop: usize, u: VertexId, v: VertexId) -> f64 {
        self.weights
            .transition_probability(graph, v, u, self.fanouts.hop(hop))
    }
}

/// Proposition 1 with pluggable transitions.
///
/// # Example
///
/// ```
/// use spp_core::vip_general::{GeneralVipModel, UniformTransitions};
/// use spp_core::VipModel;
/// use spp_graph::generate::ring_with_chords;
/// use spp_sampler::Fanouts;
///
/// // With uniform transitions, the general model matches the
/// // specialized one exactly.
/// let g = ring_with_chords(32, 3);
/// let train: Vec<u32> = (0..8).collect();
/// let fanouts = Fanouts::new(vec![3, 2]);
/// let special = VipModel::new(fanouts.clone(), 4).scores(&g, &train);
/// let general = GeneralVipModel::new(fanouts.num_hops())
///     .scores(&g, &UniformTransitions::new(fanouts.clone()),
///             &VipModel::new(fanouts, 4).initial_probabilities(32, &train));
/// for (a, b) in special.iter().zip(&general) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct GeneralVipModel {
    hops: usize,
}

impl GeneralVipModel {
    /// Creates a model with the given hop count.
    ///
    /// # Panics
    ///
    /// Panics if `hops` is zero.
    pub fn new(hops: usize) -> Self {
        assert!(hops > 0, "need at least one hop");
        Self { hops }
    }

    /// Hop-wise VIP vectors under the supplied transition model.
    ///
    /// # Panics
    ///
    /// Panics if `p0.len() != graph.num_vertices()`.
    pub fn hop_scores<T: TransitionModel>(
        &self,
        graph: &CsrGraph,
        transitions: &T,
        p0: &[f64],
    ) -> Vec<Vec<f64>> {
        assert_eq!(p0.len(), graph.num_vertices(), "p0 size mismatch");
        let n = graph.num_vertices();
        let mut hops = Vec::with_capacity(self.hops);
        let mut prev: Vec<f64> = p0.to_vec();
        for h in 1..=self.hops {
            let mut cur = vec![0.0f64; n];
            for u in 0..n as VertexId {
                let mut log_miss = 0.0f64;
                for &v in graph.neighbors(u) {
                    let pv = prev[v as usize];
                    if pv <= 0.0 {
                        continue;
                    }
                    let t = transitions.probability(graph, h, u, v);
                    let x = (t * pv).clamp(0.0, 1.0);
                    if x >= 1.0 {
                        log_miss = f64::NEG_INFINITY;
                        break;
                    }
                    log_miss += (-x).ln_1p();
                }
                cur[u as usize] = crate::clamp01(1.0 - log_miss.exp());
            }
            hops.push(cur.clone());
            prev = cur;
        }
        hops
    }

    /// Combined VIP values `p(u) = 1 - Π_h (1 - p[h](u))`.
    pub fn scores<T: TransitionModel>(
        &self,
        graph: &CsrGraph,
        transitions: &T,
        p0: &[f64],
    ) -> Vec<f64> {
        crate::vip::VipModel::combine(&self.hop_scores(graph, transitions, p0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VipModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spp_graph::generate::{complete, GeneratorConfig};
    use spp_sampler::weighted::WeightedNodeWiseSampler;

    #[test]
    fn matches_specialized_model_with_uniform_transitions() {
        let g = GeneratorConfig::rmat(256, 2048).seed(1).build();
        let train: Vec<VertexId> = (0..40).collect();
        let fanouts = Fanouts::new(vec![5, 3]);
        let special = VipModel::new(fanouts.clone(), 8);
        let p0 = special.initial_probabilities(256, &train);
        let a = special.scores(&g, &train);
        let b = GeneralVipModel::new(2).scores(&g, &UniformTransitions::new(fanouts), &p0);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn weighted_transitions_shift_vip_mass() {
        // Boost the attractiveness of vertex 1: its VIP under weighted
        // sampling must exceed its uniform VIP; a deflated vertex's must
        // drop.
        let g = complete(20);
        let train: Vec<VertexId> = (5..15).collect();
        let fanouts = Fanouts::new(vec![2]);
        let mut score = vec![1.0f32; 20];
        score[1] = 20.0;
        score[2] = 0.05;
        let w = spp_sampler::weighted::EdgeWeights::from_target_scores(&g, &score);
        let p0 = VipModel::new(fanouts.clone(), 4).initial_probabilities(20, &train);
        let uni =
            GeneralVipModel::new(1).scores(&g, &UniformTransitions::new(fanouts.clone()), &p0);
        let wtd = GeneralVipModel::new(1).scores(&g, &WeightedTransitions::new(&w, fanouts), &p0);
        assert!(wtd[1] > uni[1] * 1.5, "boosted: {} vs {}", wtd[1], uni[1]);
        assert!(wtd[2] < uni[2] * 0.5, "deflated: {} vs {}", wtd[2], uni[2]);
    }

    #[test]
    fn weighted_vip_agrees_with_weighted_monte_carlo() {
        // Frontier-process simulation with the weighted sampler vs the
        // generalized analytic model. Proposition 1 assumes independence
        // across the product terms, which is accurate when per-term
        // probabilities are small (the realistic regime: B << |T| and
        // fanout << degree) — so the fixture keeps both small.
        let g = complete(40);
        let train: Vec<VertexId> = (0..40).collect();
        let fanouts = Fanouts::new(vec![3]);
        let b = 2usize;
        let mut score = vec![1.0f32; 40];
        score[0] = 4.0;
        let w = spp_sampler::weighted::EdgeWeights::from_target_scores(&g, &score);
        let p0 = VipModel::new(fanouts.clone(), b).initial_probabilities(40, &train);
        let analytic =
            GeneralVipModel::new(1).scores(&g, &WeightedTransitions::new(&w, fanouts.clone()), &p0);

        let sampler = WeightedNodeWiseSampler::new(&g, &w, fanouts);
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 3000;
        let mut counts = vec![0usize; 40];
        for _ in 0..trials {
            let mut pool = train.clone();
            for i in 0..b {
                let j = rand::Rng::gen_range(&mut rng, i..pool.len());
                pool.swap(i, j);
            }
            let mfg = sampler.sample(&pool[..b], &mut rng);
            let mut included = [false; 40];
            for t in 0..mfg.hops[0].num_targets {
                for &local in mfg.hops[0].neighbors(t) {
                    included[mfg.nodes[local as usize] as usize] = true;
                }
            }
            for (v, &inc) in included.iter().enumerate() {
                if inc {
                    counts[v] += 1;
                }
            }
        }
        for v in 0..40 {
            let emp = counts[v] as f64 / trials as f64;
            let a = analytic[v];
            let sigma = (a * (1.0 - a) / trials as f64).sqrt().max(1e-3);
            assert!(
                (emp - a).abs() < 5.0 * sigma + 0.04,
                "vertex {v}: empirical {emp:.3} vs analytic {a:.3}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "need at least one hop")]
    fn zero_hops_rejected() {
        GeneralVipModel::new(0);
    }
}
