//! Fast vertex deduplication for neighborhood expansion.

use spp_graph::VertexId;

/// An open-addressing hash map from global vertex ids to dense local ids,
/// specialized for the sampler's hot loop.
///
/// SALIENT's `fast_sampler` performance-engineers exactly this step: for
/// every sampled neighbor we must answer "have we seen this vertex, and if
/// so what's its local index?". A general-purpose `HashMap` pays SipHash
/// and `Option` overhead; this table uses a multiplicative hash with linear
/// probing and stores entries in flat arrays.
///
/// # Example
///
/// ```
/// use spp_sampler::VertexIndexer;
///
/// let mut idx = VertexIndexer::with_capacity(8);
/// assert_eq!(idx.insert(42), 0);
/// assert_eq!(idx.insert(7), 1);
/// assert_eq!(idx.insert(42), 0); // already present
/// assert_eq!(idx.len(), 2);
/// assert_eq!(idx.nodes(), &[42, 7]);
/// ```
#[derive(Clone, Debug)]
pub struct VertexIndexer {
    /// Probe table storing `local_id + 1` (0 = empty slot).
    slots: Vec<u32>,
    /// Dense list of inserted global vertex ids, in insertion order.
    nodes: Vec<VertexId>,
    mask: usize,
}

const EMPTY: u32 = 0;

impl VertexIndexer {
    /// Creates an indexer sized for roughly `expected` distinct vertices.
    pub fn with_capacity(expected: usize) -> Self {
        // Load factor <= 0.5.
        let cap = (expected.max(4) * 2).next_power_of_two();
        Self {
            // spp-hot: alloc(dedup table, sized once per batch from the fanout bound)
            slots: vec![EMPTY; cap],
            nodes: Vec::with_capacity(expected), // spp-hot: alloc(dense node list, sized once per batch from the fanout bound)
            mask: cap - 1,
        }
    }

    #[inline]
    fn hash(v: VertexId) -> usize {
        // Fibonacci hashing: odd multiplicative constant, high bits spread.
        (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize
    }

    /// Inserts `v` if absent; returns its dense local id either way.
    #[inline]
    pub fn insert(&mut self, v: VertexId) -> u32 {
        if self.nodes.len() * 2 >= self.slots.len() {
            self.grow();
        }
        let mut i = Self::hash(v) & self.mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                let local = self.nodes.len() as u32;
                self.slots[i] = local + 1;
                self.nodes.push(v); // spp-hot: alloc(appends the batch node list; capacity reserved at construction (amortized))
                return local;
            }
            if self.nodes[(s - 1) as usize] == v {
                return s - 1;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Looks up `v` without inserting.
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<u32> {
        let mut i = Self::hash(v) & self.mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return None;
            }
            if self.nodes[(s - 1) as usize] == v {
                return Some(s - 1);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        self.mask = cap - 1;
        self.slots = vec![EMPTY; cap]; // spp-hot: alloc(hash-table doubling; amortized, rare once with_capacity guessed right)
        for (local, &v) in self.nodes.iter().enumerate() {
            let mut i = Self::hash(v) & self.mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = local as u32 + 1;
        }
    }

    /// Number of distinct vertices inserted.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no vertices have been inserted.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The dense vertex list, in insertion order (local id = position).
    pub fn nodes(&self) -> &[VertexId] {
        &self.nodes
    }

    /// Consumes the indexer and returns the dense vertex list.
    pub fn into_nodes(self) -> Vec<VertexId> {
        self.nodes
    }

    /// Clears all entries, retaining allocations.
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.nodes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut idx = VertexIndexer::with_capacity(4);
        assert_eq!(idx.insert(10), 0);
        assert_eq!(idx.insert(20), 1);
        assert_eq!(idx.insert(10), 0);
        assert_eq!(idx.get(20), Some(1));
        assert_eq!(idx.get(30), None);
    }

    #[test]
    fn grows_past_capacity() {
        let mut idx = VertexIndexer::with_capacity(2);
        for v in 0..1000u32 {
            assert_eq!(idx.insert(v * 7), v);
        }
        assert_eq!(idx.len(), 1000);
        for v in 0..1000u32 {
            assert_eq!(idx.get(v * 7), Some(v));
        }
    }

    #[test]
    fn insertion_order_preserved() {
        let mut idx = VertexIndexer::with_capacity(4);
        idx.insert(5);
        idx.insert(3);
        idx.insert(9);
        assert_eq!(idx.nodes(), &[5, 3, 9]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut idx = VertexIndexer::with_capacity(4);
        idx.insert(1);
        idx.insert(2);
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.get(1), None);
        assert_eq!(idx.insert(3), 0);
    }

    #[test]
    fn dense_order_is_independent_of_table_geometry() {
        // §9: local ids are assigned in insertion order, a pure function
        // of the insert sequence — never of capacity, growth schedule, or
        // probe layout. Replay the same sequence through tables of very
        // different geometry and require identical dense node lists.
        let seq: Vec<VertexId> = (0..600u32).map(|i| (i * 37) % 200).collect();
        let mut tiny = VertexIndexer::with_capacity(4); // grows many times
        let mut huge = VertexIndexer::with_capacity(4096); // never grows
        for &v in &seq {
            let a = tiny.insert(v);
            let b = huge.insert(v);
            assert_eq!(a, b, "local id of {v} diverged across geometries");
        }
        assert_eq!(tiny.nodes(), huge.nodes());
        assert_eq!(tiny.len(), 200);
    }

    #[test]
    fn colliding_keys_resolve() {
        // Keys chosen to collide in a tiny table; correctness must not
        // depend on hash spread.
        let mut idx = VertexIndexer::with_capacity(4);
        let keys = [0u32, 8, 16, 24, 32, 40];
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(idx.insert(k), i as u32);
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(idx.get(k), Some(i as u32));
        }
    }
}
