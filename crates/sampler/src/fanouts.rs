//! Per-hop fanout configuration.

/// Per-hop sampling fanouts, ordered from the seed minibatch outward:
/// `fanouts.hop(1)` is the number of neighbors sampled for each seed.
///
/// The paper writes fanouts as tuples like `(15, 10, 5)` for a 3-layer
/// GraphSAGE model: hop 1 samples 15, hop 2 samples 10, hop 3 samples 5.
///
/// # Example
///
/// ```
/// use spp_sampler::Fanouts;
///
/// let f = Fanouts::new(vec![15, 10, 5]);
/// assert_eq!(f.num_hops(), 3);
/// assert_eq!(f.hop(1), 15);
/// assert_eq!(f.hop(3), 5);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Fanouts(Vec<usize>);

impl Fanouts {
    /// Creates fanouts from a per-hop list (hop 1 first).
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or any fanout is zero.
    pub fn new(fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty(), "need at least one hop");
        assert!(fanouts.iter().all(|&f| f > 0), "fanouts must be positive");
        Self(fanouts)
    }

    /// Uniform fanout `f` for `hops` hops.
    pub fn uniform(f: usize, hops: usize) -> Self {
        Self::new(vec![f; hops])
    }

    /// Number of hops (equals the number of GNN layers).
    pub fn num_hops(&self) -> usize {
        self.0.len()
    }

    /// Fanout at hop `h` (1-indexed).
    ///
    /// # Panics
    ///
    /// Panics if `h` is 0 or greater than [`Fanouts::num_hops`].
    pub fn hop(&self, h: usize) -> usize {
        assert!(h >= 1 && h <= self.0.len(), "hop {h} out of range");
        self.0[h - 1]
    }

    /// All fanouts as a slice (hop 1 first).
    pub fn as_slice(&self) -> &[usize] {
        &self.0
    }

    /// Upper bound on the number of vertices in a sampled neighborhood of a
    /// minibatch of `batch_size` seeds (full expansion, no dedup).
    pub fn max_expanded_size(&self, batch_size: usize) -> usize {
        let mut total = batch_size;
        let mut frontier = batch_size;
        for &f in &self.0 {
            frontier *= f;
            total += frontier;
        }
        total
    }
}

impl std::fmt::Display for Fanouts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, x) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_indexing() {
        let f = Fanouts::new(vec![15, 10, 5]);
        assert_eq!(f.hop(1), 15);
        assert_eq!(f.hop(2), 10);
        assert_eq!(f.hop(3), 5);
    }

    #[test]
    #[should_panic(expected = "hop 4 out of range")]
    fn hop_out_of_range() {
        Fanouts::new(vec![15, 10, 5]).hop(4);
    }

    #[test]
    #[should_panic(expected = "need at least one hop")]
    fn empty_rejected() {
        Fanouts::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "fanouts must be positive")]
    fn zero_fanout_rejected() {
        Fanouts::new(vec![5, 0]);
    }

    #[test]
    fn uniform_builder() {
        let f = Fanouts::uniform(5, 3);
        assert_eq!(f.as_slice(), &[5, 5, 5]);
    }

    #[test]
    fn max_expanded_size_counts_all_layers() {
        let f = Fanouts::new(vec![2, 3]);
        // 4 seeds + 8 hop-1 + 24 hop-2 = 36
        assert_eq!(f.max_expanded_size(4), 36);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(format!("{}", Fanouts::new(vec![15, 10, 5])), "(15,10,5)");
    }
}
