//! Epoch-wise minibatch iteration with deterministic shuffling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spp_graph::VertexId;

/// Iterates over minibatches of a (training) vertex set for one epoch.
///
/// The vertex order is reshuffled deterministically from
/// `(seed, epoch)`, so distributed machines can generate disjoint local
/// minibatch streams that are nevertheless reproducible.
///
/// # Example
///
/// ```
/// use spp_sampler::MinibatchIter;
///
/// let ids = vec![0, 1, 2, 3, 4];
/// let batches: Vec<_> = MinibatchIter::new(&ids, 2, 42, 0).collect();
/// assert_eq!(batches.len(), 3); // 2 + 2 + 1
/// let total: usize = batches.iter().map(|b| b.len()).sum();
/// assert_eq!(total, 5);
/// ```
#[derive(Clone, Debug)]
pub struct MinibatchIter {
    order: Vec<VertexId>,
    batch_size: usize,
    pos: usize,
}

/// Derives the RNG stream seed for one minibatch from
/// `(seed, epoch, batch)` with a SplitMix64-style finalizer.
///
/// Giving every batch its own `StdRng` stream (instead of threading one
/// RNG through the epoch) is what makes minibatch preparation
/// order-free: batches can be sampled concurrently on any number of
/// workers, and the sampled MFGs are identical to a serial run. Distinct
/// purposes (sampling vs. dropout) should salt `seed` before calling.
pub fn batch_stream_seed(seed: u64, epoch: u64, batch: u64) -> u64 {
    let mut z = seed
        .wrapping_add(epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(batch.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl MinibatchIter {
    /// Creates an iterator over `ids`, shuffled by `(seed, epoch)`,
    /// yielding batches of up to `batch_size` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(ids: &[VertexId], batch_size: usize, seed: u64, epoch: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order = ids.to_vec();
        let mut rng = StdRng::seed_from_u64(seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        Self {
            order,
            batch_size,
            pos: 0,
        }
    }

    /// Number of batches this epoch will yield.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }
}

impl Iterator for MinibatchIter {
    type Item = Vec<VertexId>;

    fn next(&mut self) -> Option<Vec<VertexId>> {
        if self.pos >= self.order.len() {
            return None;
        }
        let end = (self.pos + self.batch_size).min(self.order.len());
        let batch = self.order[self.pos..end].to_vec();
        self.pos = end;
        Some(batch)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.order.len() - self.pos).div_ceil(self.batch_size);
        (left, Some(left))
    }
}

impl ExactSizeIterator for MinibatchIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_ids_exactly_once() {
        let ids: Vec<VertexId> = (0..103).collect();
        let mut seen: Vec<VertexId> = MinibatchIter::new(&ids, 10, 1, 0).flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, ids);
    }

    #[test]
    fn epochs_shuffle_differently() {
        let ids: Vec<VertexId> = (0..50).collect();
        let e0: Vec<_> = MinibatchIter::new(&ids, 50, 1, 0).flatten().collect();
        let e1: Vec<_> = MinibatchIter::new(&ids, 50, 1, 1).flatten().collect();
        assert_ne!(e0, e1);
    }

    #[test]
    fn same_epoch_is_deterministic() {
        let ids: Vec<VertexId> = (0..50).collect();
        let a: Vec<_> = MinibatchIter::new(&ids, 7, 3, 5).collect();
        let b: Vec<_> = MinibatchIter::new(&ids, 7, 3, 5).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn num_batches_matches_iteration() {
        let ids: Vec<VertexId> = (0..25).collect();
        let it = MinibatchIter::new(&ids, 10, 0, 0);
        assert_eq!(it.num_batches(), 3);
        assert_eq!(it.len(), 3);
        assert_eq!(it.count(), 3);
    }

    #[test]
    fn empty_ids_yield_nothing() {
        let it = MinibatchIter::new(&[], 4, 0, 0);
        assert_eq!(it.num_batches(), 0);
        assert_eq!(it.count(), 0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        MinibatchIter::new(&[1], 0, 0, 0);
    }

    #[test]
    fn batch_stream_seeds_are_deterministic_and_distinct() {
        assert_eq!(batch_stream_seed(1, 2, 3), batch_stream_seed(1, 2, 3));
        let mut seen: Vec<u64> = Vec::new();
        for seed in 0..4u64 {
            for epoch in 0..4u64 {
                for batch in 0..4u64 {
                    seen.push(batch_stream_seed(seed, epoch, batch));
                }
            }
        }
        let n = seen.len();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), n, "colliding batch stream seeds");
    }
}
