//! Layer-wise sampling (FastGCN/LADIES-style, paper §2.3).
//!
//! Instead of each vertex sampling its own neighbors (node-wise),
//! layer-wise sampling pools the neighbors of *all* current vertices and
//! samples a fixed per-layer budget from the union. The paper's analytic
//! VIP model does not cover this scheme ("The VIP model for node-wise
//! sampling derived in this section does not apply to other sampling
//! schemes"), but its empirical ("sim.") caching policy does — the
//! `layerwise_vip` harness demonstrates exactly that.

use crate::{HopAdj, Mfg, VertexIndexer};
use rand::Rng;
use spp_graph::{CsrGraph, VertexId};

/// Layer-wise sampler with per-hop node budgets.
///
/// The produced [`Mfg`] keeps the node-wise MFG contract (seeds first,
/// cumulative prefixes, per-hop CSR adjacency), so the same GNN layers
/// consume it; a target with no sampled neighbors aggregates to zero.
///
/// # Example
///
/// ```
/// use spp_graph::generate::complete;
/// use spp_sampler::layerwise::LayerWiseSampler;
/// use rand::SeedableRng;
///
/// let g = complete(30);
/// let s = LayerWiseSampler::new(&g, vec![8, 4]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mfg = s.sample(&[0, 1], &mut rng);
/// assert!(mfg.validate().is_ok());
/// // At most `budget` fresh vertices join per hop.
/// assert!(mfg.sizes[1] - mfg.sizes[0] <= 8);
/// assert!(mfg.sizes[2] - mfg.sizes[1] <= 4);
/// ```
#[derive(Debug)]
pub struct LayerWiseSampler<'g> {
    graph: &'g CsrGraph,
    budgets: Vec<usize>,
}

impl<'g> LayerWiseSampler<'g> {
    /// Creates a sampler with the given per-hop budgets (hop 1 first).
    ///
    /// # Panics
    ///
    /// Panics if `budgets` is empty or contains zero.
    pub fn new(graph: &'g CsrGraph, budgets: Vec<usize>) -> Self {
        assert!(!budgets.is_empty(), "need at least one hop budget");
        assert!(budgets.iter().all(|&b| b > 0), "budgets must be positive");
        Self { graph, budgets }
    }

    /// Number of hops.
    pub fn num_hops(&self) -> usize {
        self.budgets.len()
    }

    /// Samples the layer-wise expanded neighborhood of `seeds`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate seeds.
    pub fn sample<R: Rng>(&self, seeds: &[VertexId], rng: &mut R) -> Mfg {
        let mut indexer =
            VertexIndexer::with_capacity(seeds.len() + self.budgets.iter().sum::<usize>() + 16);
        for (i, &s) in seeds.iter().enumerate() {
            indexer.insert(s);
            assert_eq!(indexer.len(), i + 1, "duplicate seed {s} in minibatch");
        }
        let mut sizes = vec![seeds.len()];
        let mut hops = Vec::with_capacity(self.budgets.len());

        for &budget in &self.budgets {
            let num_targets = sizes.last().copied().unwrap_or(0);
            // Union of all targets' neighbors (global ids, deduplicated).
            let mut union = VertexIndexer::with_capacity(num_targets * 8);
            for t in 0..num_targets {
                let v = indexer.nodes()[t];
                for &u in self.graph.neighbors(v) {
                    union.insert(u);
                }
            }
            let mut pool: Vec<VertexId> = union.into_nodes();
            // Sample `budget` distinct vertices from the union via partial
            // Fisher–Yates.
            let take = budget.min(pool.len());
            for i in 0..take {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
            }
            let sampled = &pool[..take];
            // A membership set over the sampled layer for adjacency builds.
            let mut layer = VertexIndexer::with_capacity(take * 2);
            for &u in sampled {
                layer.insert(u);
            }
            // Register sampled vertices in the MFG node list.
            for &u in sampled {
                indexer.insert(u);
            }
            // Adjacency: target t keeps its true neighbors that fall in
            // the sampled layer.
            let mut row_ptr = vec![0usize];
            let mut col: Vec<u32> = Vec::new();
            for t in 0..num_targets {
                let v = indexer.nodes()[t];
                for &u in self.graph.neighbors(v) {
                    if layer.get(u).is_none() {
                        continue;
                    }
                    debug_assert!(indexer.get(u).is_some(), "sampled vertex registered");
                    if let Some(local) = indexer.get(u) {
                        col.push(local);
                    }
                }
                row_ptr.push(col.len());
            }
            let num_sources = indexer.len();
            hops.push(HopAdj {
                num_targets,
                num_sources,
                row_ptr,
                col,
            });
            sizes.push(num_sources);
        }

        Mfg {
            nodes: indexer.into_nodes(),
            sizes,
            hops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spp_graph::generate::{complete, ring_with_chords, GeneratorConfig};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn mfg_valid_and_budgeted() {
        let g = GeneratorConfig::erdos_renyi(200, 1500).seed(1).build();
        let s = LayerWiseSampler::new(&g, vec![20, 10]);
        let mfg = s.sample(&[0, 5, 9], &mut rng(2));
        mfg.validate().unwrap();
        assert!(mfg.sizes[1] - mfg.sizes[0] <= 20);
        assert!(mfg.sizes[2] - mfg.sizes[1] <= 10);
    }

    #[test]
    fn adjacency_edges_are_real() {
        let g = ring_with_chords(64, 5);
        let s = LayerWiseSampler::new(&g, vec![12]);
        let mfg = s.sample(&[3, 17], &mut rng(3));
        let adj = mfg.layer_adj(1);
        for t in 0..adj.num_targets {
            let v = mfg.nodes[t];
            for &local in adj.neighbors(t) {
                assert!(g.has_edge(v, mfg.nodes[local as usize]));
            }
        }
    }

    #[test]
    fn shared_layer_across_targets() {
        // In layer-wise sampling all targets draw from one sampled layer:
        // the distinct new vertices per hop are bounded by the budget no
        // matter how many targets there are (unlike node-wise fanout).
        let g = complete(100);
        let s = LayerWiseSampler::new(&g, vec![5]);
        let seeds: Vec<u32> = (0..30).collect();
        let mfg = s.sample(&seeds, &mut rng(4));
        assert!(mfg.num_nodes() <= 35, "nodes {}", mfg.num_nodes());
    }

    #[test]
    fn small_union_takes_everything() {
        let g = ring_with_chords(8, 1);
        let s = LayerWiseSampler::new(&g, vec![100]);
        let mfg = s.sample(&[0], &mut rng(5));
        // Vertex 0's whole neighborhood {1, 7} is sampled.
        assert_eq!(mfg.layer_adj(1).neighbors(0).len(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = GeneratorConfig::rmat(128, 1000).seed(6).build();
        let s = LayerWiseSampler::new(&g, vec![10, 10]);
        let a = s.sample(&[1, 2, 3], &mut rng(7));
        let b = s.sample(&[1, 2, 3], &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "duplicate seed")]
    fn duplicate_seeds_rejected() {
        let g = complete(5);
        LayerWiseSampler::new(&g, vec![2]).sample(&[1, 1], &mut rng(8));
    }
}
