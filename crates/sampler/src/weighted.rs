//! Non-uniform (weighted) node-wise sampling.
//!
//! GraphSAGE samples neighbors uniformly, but the paper's Proposition 1
//! "applies to any initial sampling and hop-wise transition probability
//! function for node-wise sampling", with non-uniform models
//! "accommodated via the corresponding transition probability matrix".
//! This module provides the sampling side of that generality: each edge
//! carries a weight, and every hop samples up to `fanout` *distinct*
//! neighbors by successive weighted draws without replacement.

use crate::{Fanouts, HopAdj, Mfg, VertexIndexer};
use rand::Rng;
use spp_graph::{CsrGraph, VertexId};

/// Per-edge sampling weights aligned with a graph's CSR edge order.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeWeights {
    weights: Vec<f32>,
}

impl EdgeWeights {
    /// Uniform weights (reduces weighted sampling to the uniform case).
    pub fn uniform(graph: &CsrGraph) -> Self {
        Self {
            weights: vec![1.0; graph.num_edges()],
        }
    }

    /// Builds from a weight per CSR edge slot.
    ///
    /// # Panics
    ///
    /// Panics if the length mismatches or any weight is not positive and
    /// finite.
    pub fn from_vec(graph: &CsrGraph, weights: Vec<f32>) -> Self {
        assert_eq!(weights.len(), graph.num_edges(), "one weight per edge");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive and finite"
        );
        Self { weights }
    }

    /// Derives weights from a per-vertex attractiveness score: the weight
    /// of edge `(v, u)` is `score[u]`. Models samplers biased toward
    /// high-importance neighbors (e.g. degree- or VIP-biased sampling).
    ///
    /// # Panics
    ///
    /// Panics if `score.len() != graph.num_vertices()` or any score is
    /// not positive and finite.
    pub fn from_target_scores(graph: &CsrGraph, score: &[f32]) -> Self {
        assert_eq!(score.len(), graph.num_vertices(), "one score per vertex");
        assert!(
            score.iter().all(|s| s.is_finite() && *s > 0.0),
            "scores must be positive and finite"
        );
        let weights = graph.col().iter().map(|&u| score[u as usize]).collect();
        Self { weights }
    }

    /// The weights of `v`'s out-edges, aligned with `graph.neighbors(v)`.
    pub fn of(&self, graph: &CsrGraph, v: VertexId) -> &[f32] {
        &self.weights[graph.neighbor_range(v)]
    }

    /// The transition probability `t(u, v)` that `v` includes `u` among
    /// `fanout` weighted draws without replacement — approximated by the
    /// complement of the independent-miss product
    /// `1 - (1 - w_u/W)^fanout`, which is exact for fanout 1 and an upper
    /// bound that stays within a few percent of the true
    /// without-replacement probability for the small fanouts GNNs use.
    /// This is the matrix entry the generalized VIP model consumes.
    pub fn transition_probability(
        &self,
        graph: &CsrGraph,
        v: VertexId,
        u: VertexId,
        fanout: usize,
    ) -> f64 {
        let neigh = graph.neighbors(v);
        if neigh.len() <= fanout {
            return if neigh.contains(&u) { 1.0 } else { 0.0 };
        }
        let ws = self.of(graph, v);
        let total: f64 = ws.iter().map(|&w| w as f64).sum();
        match neigh.binary_search(&u) {
            Ok(i) => {
                let p1 = ws[i] as f64 / total;
                1.0 - (1.0 - p1).powi(fanout as i32)
            }
            Err(_) => 0.0,
        }
    }
}

/// Node-wise sampler drawing neighbors proportionally to edge weights,
/// without replacement.
///
/// # Example
///
/// ```
/// use spp_graph::generate::complete;
/// use spp_sampler::weighted::{EdgeWeights, WeightedNodeWiseSampler};
/// use spp_sampler::Fanouts;
/// use rand::SeedableRng;
///
/// let g = complete(10);
/// let w = EdgeWeights::uniform(&g);
/// let s = WeightedNodeWiseSampler::new(&g, &w, Fanouts::new(vec![3]));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mfg = s.sample(&[0], &mut rng);
/// assert_eq!(mfg.layer_adj(1).neighbors(0).len(), 3);
/// ```
#[derive(Debug)]
pub struct WeightedNodeWiseSampler<'g> {
    graph: &'g CsrGraph,
    weights: &'g EdgeWeights,
    fanouts: Fanouts,
}

impl<'g> WeightedNodeWiseSampler<'g> {
    /// Creates a weighted sampler.
    pub fn new(graph: &'g CsrGraph, weights: &'g EdgeWeights, fanouts: Fanouts) -> Self {
        Self {
            graph,
            weights,
            fanouts,
        }
    }

    /// The configured fanouts.
    pub fn fanouts(&self) -> &Fanouts {
        &self.fanouts
    }

    /// Samples the expanded neighborhood of `seeds` (same MFG contract as
    /// the uniform sampler).
    ///
    /// # Panics
    ///
    /// Panics on duplicate seeds.
    pub fn sample<R: Rng>(&self, seeds: &[VertexId], rng: &mut R) -> Mfg {
        let mut indexer =
            VertexIndexer::with_capacity(self.fanouts.max_expanded_size(seeds.len()).min(1 << 20));
        for (i, &s) in seeds.iter().enumerate() {
            indexer.insert(s);
            assert_eq!(indexer.len(), i + 1, "duplicate seed {s} in minibatch");
        }
        let mut sizes = vec![seeds.len()];
        let mut hops = Vec::with_capacity(self.fanouts.num_hops());
        let mut scratch: Vec<VertexId> = Vec::new();

        for h in 1..=self.fanouts.num_hops() {
            let fanout = self.fanouts.hop(h);
            let num_targets = sizes.last().copied().unwrap_or(0);
            let mut row_ptr = vec![0usize];
            let mut col: Vec<u32> = Vec::with_capacity(num_targets * fanout);
            for t in 0..num_targets {
                let v = indexer.nodes()[t];
                self.sample_weighted(v, fanout, rng, &mut scratch);
                for &u in &scratch {
                    col.push(indexer.insert(u));
                }
                row_ptr.push(col.len());
            }
            let num_sources = indexer.len();
            hops.push(HopAdj {
                num_targets,
                num_sources,
                row_ptr,
                col,
            });
            sizes.push(num_sources);
        }
        Mfg {
            nodes: indexer.into_nodes(),
            sizes,
            hops,
        }
    }

    /// Weighted draws without replacement via repeated inverse-CDF over
    /// the remaining mass (A-Res would be asymptotically better; degrees
    /// here are small enough that the simple scheme wins).
    fn sample_weighted<R: Rng>(
        &self,
        v: VertexId,
        fanout: usize,
        rng: &mut R,
        out: &mut Vec<VertexId>,
    ) {
        out.clear();
        let neigh = self.graph.neighbors(v);
        if neigh.len() <= fanout {
            out.extend_from_slice(neigh);
            return;
        }
        let ws = self.weights.of(self.graph, v);
        let mut remaining: Vec<f64> = ws.iter().map(|&w| w as f64).collect();
        let mut total: f64 = remaining.iter().sum();
        for _ in 0..fanout {
            let mut x = rng.gen::<f64>() * total;
            let mut pick = remaining.len() - 1;
            for (i, &w) in remaining.iter().enumerate() {
                if w <= 0.0 {
                    continue;
                }
                if x < w {
                    pick = i;
                    break;
                }
                x -= w;
            }
            out.push(neigh[pick]);
            total -= remaining[pick];
            remaining[pick] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spp_graph::generate::{complete, star};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_weights_behave_like_uniform_sampler() {
        let g = complete(20);
        let w = EdgeWeights::uniform(&g);
        let s = WeightedNodeWiseSampler::new(&g, &w, Fanouts::new(vec![4, 2]));
        let mfg = s.sample(&[0, 3], &mut rng(1));
        mfg.validate().unwrap();
        assert_eq!(mfg.num_seeds(), 2);
        for (h, adj) in mfg.hops.iter().enumerate() {
            let f = s.fanouts().hop(h + 1);
            for t in 0..adj.num_targets {
                assert!(adj.neighbors(t).len() <= f);
            }
        }
    }

    #[test]
    fn heavy_weights_are_sampled_more_often() {
        // Vertex 0's neighbors 1..=10; neighbor 1 has 50x the weight.
        let g = complete(11);
        let mut score = vec![1.0f32; 11];
        score[1] = 50.0;
        let w = EdgeWeights::from_target_scores(&g, &score);
        let s = WeightedNodeWiseSampler::new(&g, &w, Fanouts::new(vec![2]));
        let mut r = rng(2);
        let mut count1 = 0;
        let trials = 500;
        for _ in 0..trials {
            let mfg = s.sample(&[0], &mut r);
            if mfg.nodes.contains(&1) {
                count1 += 1;
            }
        }
        assert!(
            count1 > (trials * 85) / 100,
            "heavy neighbor sampled only {count1}/{trials}"
        );
    }

    #[test]
    fn draws_are_distinct() {
        let g = complete(30);
        let w = EdgeWeights::uniform(&g);
        let s = WeightedNodeWiseSampler::new(&g, &w, Fanouts::new(vec![10]));
        let mfg = s.sample(&[0], &mut rng(3));
        let adj = mfg.layer_adj(1);
        let mut picked: Vec<u32> = adj.neighbors(0).to_vec();
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 10);
    }

    #[test]
    fn low_degree_takes_everything() {
        let g = star(6);
        let w = EdgeWeights::uniform(&g);
        let s = WeightedNodeWiseSampler::new(&g, &w, Fanouts::new(vec![10]));
        let mfg = s.sample(&[0], &mut rng(4));
        assert_eq!(mfg.num_nodes(), 6);
    }

    #[test]
    fn transition_probability_extremes() {
        let g = complete(5);
        let w = EdgeWeights::uniform(&g);
        // fanout >= degree: certain.
        assert_eq!(w.transition_probability(&g, 0, 1, 10), 1.0);
        // non-neighbor: zero.
        assert_eq!(w.transition_probability(&g, 0, 0, 2), 0.0);
        // fanout 1 uniform over 4 neighbors: 1/4.
        let p = w.transition_probability(&g, 0, 1, 1);
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn transition_probability_tracks_weights() {
        let g = complete(5);
        let mut score = vec![1.0f32; 5];
        score[1] = 3.0;
        let w = EdgeWeights::from_target_scores(&g, &score);
        // From vertex 0: neighbor weights [3,1,1,1] (vertices 1..4).
        let p_heavy = w.transition_probability(&g, 0, 1, 1);
        let p_light = w.transition_probability(&g, 0, 2, 1);
        assert!((p_heavy - 0.5).abs() < 1e-12);
        assert!((p_light - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn rejects_nonpositive_weights() {
        let g = complete(3);
        EdgeWeights::from_vec(&g, vec![1.0, 0.0, 1.0, 1.0, 1.0, 1.0]);
    }
}
