//! The node-wise neighborhood sampler.

use crate::{Fanouts, HopAdj, Mfg, VertexIndexer};
use rand::Rng;
use spp_graph::{CsrGraph, VertexId};
use spp_telemetry::metrics::{self, Counter};
use std::sync::OnceLock;

/// Cached telemetry counters for minibatch expansion (no-ops while
/// telemetry is disabled; never read back, so sampling stays
/// bit-deterministic with tracing on or off).
struct SamplerMetrics {
    batches: Counter,
    nodes: Counter,
    edges: Counter,
}

fn sampler_metrics() -> &'static SamplerMetrics {
    static METRICS: OnceLock<SamplerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SamplerMetrics {
        batches: metrics::counter("sampler.batches"),
        nodes: metrics::counter("sampler.mfg_nodes"),
        edges: metrics::counter("sampler.mfg_edges"),
    })
}

/// Samples L-hop neighborhoods with per-hop fanouts, uniformly without
/// replacement, exactly matching the random process analyzed by the
/// paper's Proposition 1: each hop samples `min(fanout, degree)` distinct
/// neighbors independently for every vertex in the cumulative node set.
///
/// # Example
///
/// ```
/// use spp_graph::generate::complete;
/// use spp_sampler::{Fanouts, NodeWiseSampler};
/// use rand::SeedableRng;
///
/// let g = complete(10);
/// let s = NodeWiseSampler::new(&g, Fanouts::new(vec![4]));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mfg = s.sample(&[0], &mut rng);
/// assert_eq!(mfg.layer_adj(1).neighbors(0).len(), 4);
/// ```
#[derive(Debug)]
pub struct NodeWiseSampler<'g> {
    graph: &'g CsrGraph,
    fanouts: Fanouts,
}

impl<'g> NodeWiseSampler<'g> {
    /// Creates a sampler over `graph` with the given fanouts.
    pub fn new(graph: &'g CsrGraph, fanouts: Fanouts) -> Self {
        Self { graph, fanouts }
    }

    /// The configured fanouts.
    pub fn fanouts(&self) -> &Fanouts {
        &self.fanouts
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        self.graph
    }

    /// Samples the expanded neighborhood of `seeds`.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` contains duplicates (a minibatch is a set).
    // spp-hot(sampler.batch_prep)
    pub fn sample<R: Rng>(&self, seeds: &[VertexId], rng: &mut R) -> Mfg {
        let cap = self.fanouts.max_expanded_size(seeds.len()).min(1 << 20);
        let mut indexer = VertexIndexer::with_capacity(cap); // spp-hot: alloc(batch dedup indexer, sized once from the fanout bound)
        for (i, &s) in seeds.iter().enumerate() {
            indexer.insert(s);
            assert_eq!(indexer.len(), i + 1, "duplicate seed {s} in minibatch");
        }
        let mut sizes = vec![seeds.len()]; // spp-hot: alloc(per-hop frontier sizes, num_hops+1 entries — MFG output)
        let mut hops = Vec::with_capacity(self.fanouts.num_hops()); // spp-hot: alloc(hop adjacency list, one entry per hop — MFG output)
        let mut scratch: Vec<VertexId> = Vec::new(); // spp-hot: alloc(neighbor scratch, reused across every vertex of the batch)

        for h in 1..=self.fanouts.num_hops() {
            let fanout = self.fanouts.hop(h);
            let num_targets = sizes.last().copied().unwrap_or(0);
            let mut row_ptr = Vec::with_capacity(num_targets + 1); // spp-hot: alloc(hop CSR row_ptr — MFG output, sized once per hop)
            row_ptr.push(0usize); // spp-hot: alloc(hop CSR entry; capacity reserved above)
            let mut col: Vec<u32> = Vec::with_capacity(num_targets * fanout); // spp-hot: alloc(hop CSR col — MFG output, sized once per hop)
            for t in 0..num_targets {
                let v = indexer.nodes()[t];
                sample_neighbors(self.graph, v, fanout, rng, &mut scratch);
                for &u in &scratch {
                    col.push(indexer.insert(u)); // spp-hot: alloc(hop CSR entry; capacity reserved above)
                }
                row_ptr.push(col.len()); // spp-hot: alloc(hop CSR entry; capacity reserved above)
            }
            let num_sources = indexer.len();
            let hop = HopAdj {
                num_targets,
                num_sources,
                row_ptr,
                col,
            };
            hops.push(hop); // spp-hot: alloc(hop record; capacity reserved above)
            sizes.push(num_sources); // spp-hot: alloc(frontier-size entry, num_hops total)
        }

        let mfg = Mfg {
            nodes: indexer.into_nodes(),
            sizes,
            hops,
        };
        if metrics::enabled() {
            let m = sampler_metrics();
            m.batches.inc();
            m.nodes.add(mfg.num_nodes() as u64);
            m.edges.add(mfg.num_edges() as u64);
        }
        mfg
    }
}

/// Samples `min(fanout, degree(v))` distinct neighbors of `v` into `out`.
///
/// Uses full copy when the whole neighborhood fits, a partial
/// Fisher–Yates when the fanout is a large fraction of the degree, and
/// Floyd's algorithm (O(fanout) expected) when the degree is much larger
/// than the fanout — the common case on power-law graphs.
pub fn sample_neighbors<R: Rng>(
    graph: &CsrGraph,
    v: VertexId,
    fanout: usize,
    rng: &mut R,
    out: &mut Vec<VertexId>,
) {
    out.clear();
    let neigh = graph.neighbors(v);
    let d = neigh.len();
    if d <= fanout {
        out.extend_from_slice(neigh);
        return;
    }
    if fanout * 4 >= d {
        // Partial Fisher–Yates on a scratch index array.
        let mut idx: Vec<u32> = (0..d as u32).collect(); // spp-hot: alloc(index permutation scratch for the dense branch, fanout >= degree/4)
        for i in 0..fanout {
            let j = rng.gen_range(i..d);
            idx.swap(i, j);
            out.push(neigh[idx[i] as usize]); // spp-hot: alloc(writes caller-owned scratch; capacity amortizes across vertices)
        }
    } else {
        // Floyd's sampling: distinct indices without materializing 0..d.
        // For the tiny fanouts used here a linear scan beats a hash set.
        // Indices are staged directly in `out` (caller-owned scratch)
        // and mapped to vertex ids in place, so this branch allocates
        // nothing once `out`'s capacity has warmed up.
        for i in (d - fanout)..d {
            let j = rng.gen_range(0..=i) as u32;
            if out.contains(&j) {
                out.push(i as u32); // spp-hot: alloc(writes caller-owned scratch; capacity amortizes across vertices)
            } else {
                out.push(j); // spp-hot: alloc(writes caller-owned scratch; capacity amortizes across vertices)
            }
        }
        for slot in out.iter_mut() {
            *slot = neigh[*slot as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spp_graph::generate::{complete, ring_with_chords, star};
    use spp_graph::GraphBuilder;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn fanout_bounds_respected() {
        let g = complete(20);
        let s = NodeWiseSampler::new(&g, Fanouts::new(vec![5, 3]));
        let mfg = s.sample(&[0, 1], &mut rng(1));
        mfg.validate().unwrap();
        for (h, adj) in mfg.hops.iter().enumerate() {
            let f = s.fanouts().hop(h + 1);
            for t in 0..adj.num_targets {
                assert!(adj.neighbors(t).len() <= f);
            }
        }
    }

    #[test]
    fn low_degree_takes_all_neighbors() {
        let g = star(5); // leaves have degree 1
        let s = NodeWiseSampler::new(&g, Fanouts::new(vec![10]));
        let mfg = s.sample(&[1], &mut rng(2));
        // Leaf 1's only neighbor is the center 0.
        assert_eq!(mfg.nodes, vec![1, 0]);
        assert_eq!(mfg.layer_adj(1).neighbors(0), &[1]);
    }

    #[test]
    fn sampled_neighbors_are_distinct_and_real() {
        let g = complete(50);
        let mut out = Vec::new();
        sample_neighbors(&g, 0, 10, &mut rng(3), &mut out);
        assert_eq!(out.len(), 10);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "duplicates in sample");
        assert!(out.iter().all(|&u| g.has_edge(0, u)));
    }

    #[test]
    fn floyd_path_is_uniform_ish() {
        // Sample 2 of 20 many times; every neighbor should appear.
        let g = complete(21);
        let mut counts = [0usize; 21];
        let mut out = Vec::new();
        let mut r = rng(4);
        for _ in 0..2000 {
            sample_neighbors(&g, 0, 2, &mut r, &mut out);
            for &u in &out {
                counts[u as usize] += 1;
            }
        }
        // Exact uniform would be 200 each; allow generous slack.
        for (u, &c) in counts.iter().enumerate().skip(1) {
            assert!(
                c > 100 && c < 320,
                "neighbor {u} count {c} outside plausible range"
            );
        }
    }

    #[test]
    fn deterministic_with_same_seed() {
        let g = ring_with_chords(64, 7);
        let s = NodeWiseSampler::new(&g, Fanouts::new(vec![3, 3]));
        let a = s.sample(&[0, 5, 9], &mut rng(7));
        let b = s.sample(&[0, 5, 9], &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_come_first() {
        let g = ring_with_chords(64, 7);
        let s = NodeWiseSampler::new(&g, Fanouts::new(vec![2]));
        let mfg = s.sample(&[9, 3, 27], &mut rng(8));
        assert_eq!(&mfg.nodes[..3], &[9, 3, 27]);
    }

    #[test]
    #[should_panic(expected = "duplicate seed")]
    fn duplicate_seeds_rejected() {
        let g = complete(5);
        let s = NodeWiseSampler::new(&g, Fanouts::new(vec![2]));
        s.sample(&[1, 1], &mut rng(9));
    }

    #[test]
    fn isolated_vertex_expands_to_itself() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected_edge(1, 2);
        let g = b.build();
        let s = NodeWiseSampler::new(&g, Fanouts::new(vec![4, 4]));
        let mfg = s.sample(&[0], &mut rng(10));
        assert_eq!(mfg.num_nodes(), 1);
        assert_eq!(mfg.num_edges(), 0);
        mfg.validate().unwrap();
    }

    #[test]
    fn cumulative_targets_each_hop() {
        // With 2 hops, hop 2 must sample for *all* nodes discovered so far
        // (cumulative set), not just the hop-1 frontier.
        let g = complete(30);
        let s = NodeWiseSampler::new(&g, Fanouts::new(vec![3, 2]));
        let mfg = s.sample(&[0, 1], &mut rng(11));
        assert_eq!(mfg.hops[1].num_targets, mfg.sizes[1]);
        assert!(mfg.hops[1].num_targets >= 2);
    }
}
