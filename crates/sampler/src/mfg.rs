//! Message-flow graphs: the layered bipartite structure a sampled
//! minibatch neighborhood induces.

use spp_graph::VertexId;

/// Sampled adjacency for one expansion hop.
///
/// Targets are the first `num_targets` entries of the MFG's node list;
/// sources are the first `num_sources` entries (targets are a prefix of
/// sources, so a target can aggregate its own previous-layer state).
/// `row_ptr`/`col` form a CSR over *local* node indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HopAdj {
    /// Number of target (aggregating) nodes.
    pub num_targets: usize,
    /// Number of source nodes (targets plus their sampled neighbors).
    pub num_sources: usize,
    /// CSR row pointers, length `num_targets + 1`.
    pub row_ptr: Vec<usize>,
    /// Local indices of sampled neighbors, all `< num_sources`.
    pub col: Vec<u32>,
}

impl HopAdj {
    /// Sampled neighbors (local indices) of target `t`.
    #[inline]
    pub fn neighbors(&self, t: usize) -> &[u32] {
        // spp-lint: allow(l2-csr-index): this IS HopAdj's checked accessor, the MFG analogue of CsrGraph::neighbors
        &self.col[self.row_ptr[t]..self.row_ptr[t + 1]] // spp-hot: allow(h2-panic): row_ptr bounds are MFG-construction CSR invariants
    }

    /// Number of sampled edges in this hop.
    pub fn num_edges(&self) -> usize {
        self.col.len()
    }
}

/// A message-flow graph: the full sampled L-hop neighborhood of one
/// minibatch, with hop-wise adjacency.
///
/// `nodes[0..sizes[0]]` are the seeds; `nodes[0..sizes[h]]` are all
/// distinct vertices within `h` sampled hops. GNN layer `ℓ` (of `L`)
/// consumes `hops[L - ℓ]` — the outermost hop feeds the first layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mfg {
    /// Distinct global vertex ids; position = local id; seeds first, then
    /// vertices in hop-discovery order.
    pub nodes: Vec<VertexId>,
    /// Cumulative distinct-node counts: `sizes[h]` = nodes within `h` hops.
    /// `sizes[0]` = number of seeds; `sizes.len() == num_hops() + 1`.
    pub sizes: Vec<usize>,
    /// Per-hop sampled adjacency, hop 1 first.
    pub hops: Vec<HopAdj>,
}

impl Mfg {
    /// Number of seed vertices (the minibatch).
    pub fn num_seeds(&self) -> usize {
        self.sizes[0]
    }

    /// Number of sampling hops (== number of GNN layers).
    pub fn num_hops(&self) -> usize {
        self.hops.len()
    }

    /// Total distinct vertices in the expanded neighborhood.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total sampled edges across all hops.
    pub fn num_edges(&self) -> usize {
        self.hops.iter().map(HopAdj::num_edges).sum()
    }

    /// The seed vertex ids.
    pub fn seeds(&self) -> &[VertexId] {
        &self.nodes[..self.sizes[0]]
    }

    /// The hop adjacency consumed by GNN layer `layer` (1-indexed, of
    /// `self.num_hops()` layers): layer 1 uses the outermost hop.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is 0 or exceeds the number of hops.
    pub fn layer_adj(&self, layer: usize) -> &HopAdj {
        let l = self.num_hops();
        assert!(layer >= 1 && layer <= l, "layer {layer} out of range");
        &self.hops[l - layer]
    }

    /// Checks structural invariants; returns a description of the first
    /// violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.sizes.len() != self.hops.len() + 1 {
            return Err(format!(
                "sizes/hops mismatch: {} vs {}",
                self.sizes.len(),
                self.hops.len()
            ));
        }
        if self.sizes.last().copied() != Some(self.nodes.len()) {
            return Err("last size must equal node count".into());
        }
        if self.sizes.windows(2).any(|w| w[0] > w[1]) {
            return Err("sizes must be non-decreasing".into());
        }
        // Nodes must be distinct.
        let mut sorted = self.nodes.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err("duplicate node in MFG".into());
        }
        for (h, adj) in self.hops.iter().enumerate() {
            if adj.num_targets != self.sizes[h] {
                return Err(format!("hop {} target count mismatch", h + 1));
            }
            if adj.num_sources != self.sizes[h + 1] {
                return Err(format!("hop {} source count mismatch", h + 1));
            }
            if adj.row_ptr.len() != adj.num_targets + 1 {
                return Err(format!("hop {} row_ptr length mismatch", h + 1));
            }
            if *adj.row_ptr.last().unwrap_or(&0) != adj.col.len() {
                return Err(format!("hop {} row_ptr end mismatch", h + 1));
            }
            if adj.col.iter().any(|&c| (c as usize) >= adj.num_sources) {
                return Err(format!("hop {} col out of range", h + 1));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_mfg() -> Mfg {
        // 2 seeds {10, 11}; hop 1 discovers {12}; adjacency: 10 -> {11, 12},
        // 11 -> {12}.
        Mfg {
            nodes: vec![10, 11, 12],
            sizes: vec![2, 3],
            hops: vec![HopAdj {
                num_targets: 2,
                num_sources: 3,
                row_ptr: vec![0, 2, 3],
                col: vec![1, 2, 2],
            }],
        }
    }

    #[test]
    fn accessors() {
        let m = tiny_mfg();
        assert_eq!(m.num_seeds(), 2);
        assert_eq!(m.num_hops(), 1);
        assert_eq!(m.num_nodes(), 3);
        assert_eq!(m.num_edges(), 3);
        assert_eq!(m.seeds(), &[10, 11]);
        assert_eq!(m.layer_adj(1).neighbors(0), &[1, 2]);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn validate_catches_duplicate_nodes() {
        let mut m = tiny_mfg();
        m.nodes[2] = 10;
        assert!(m.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn validate_catches_col_out_of_range() {
        let mut m = tiny_mfg();
        m.hops[0].col[0] = 5;
        assert!(m.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn validate_catches_size_mismatch() {
        let mut m = tiny_mfg();
        m.sizes[1] = 2;
        assert!(m.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "layer 2 out of range")]
    fn layer_adj_bounds() {
        tiny_mfg().layer_adj(2);
    }
}
