//! Node-wise neighborhood sampling for GNN minibatch training.
//!
//! Implements the sampling scheme of GraphSAGE (Hamilton et al., 2017) as
//! used by SALIENT/SALIENT++: starting from a minibatch of seed vertices,
//! each hop samples up to `fanout[h]` neighbors *without replacement* for
//! every vertex in the current node set, producing a layered
//! [message-flow graph](Mfg) (MFG) that the GNN consumes.
//!
//! # Example
//!
//! ```
//! use spp_graph::generate::ring_with_chords;
//! use spp_sampler::{Fanouts, NodeWiseSampler};
//! use rand::SeedableRng;
//!
//! let g = ring_with_chords(32, 5);
//! let sampler = NodeWiseSampler::new(&g, Fanouts::new(vec![3, 2]));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mfg = sampler.sample(&[0, 1, 2, 3], &mut rng);
//! assert_eq!(mfg.num_seeds(), 4);
//! assert_eq!(mfg.num_hops(), 2);
//! mfg.validate().unwrap();
//! ```

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]

pub mod batch;
pub mod dedup;
pub mod fanouts;
pub mod layerwise;
pub mod mfg;
pub mod sample;
pub mod weighted;

pub use batch::{batch_stream_seed, MinibatchIter};
pub use dedup::VertexIndexer;
pub use fanouts::Fanouts;
pub use mfg::{HopAdj, Mfg};
pub use sample::NodeWiseSampler;
