//! Property-based tests for node-wise sampling.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spp_graph::generate::GeneratorConfig;
use spp_sampler::layerwise::LayerWiseSampler;
use spp_sampler::weighted::{EdgeWeights, WeightedNodeWiseSampler};
use spp_sampler::{Fanouts, MinibatchIter, NodeWiseSampler};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mfg_is_always_valid(
        n in 8usize..128,
        m in 1usize..400,
        f1 in 1usize..8,
        f2 in 1usize..8,
        num_seeds in 1usize..6,
        seed in 0u64..500,
    ) {
        let g = GeneratorConfig::erdos_renyi(n, m).seed(seed).build();
        let sampler = NodeWiseSampler::new(&g, Fanouts::new(vec![f1, f2]));
        let seeds: Vec<u32> = (0..num_seeds.min(n) as u32).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 7);
        let mfg = sampler.sample(&seeds, &mut rng);
        prop_assert!(mfg.validate().is_ok(), "{:?}", mfg.validate());
        prop_assert_eq!(mfg.num_seeds(), seeds.len());
    }

    #[test]
    fn sampled_neighbors_respect_fanout_and_adjacency(
        n in 8usize..96,
        m in 1usize..300,
        fanout in 1usize..6,
        seed in 0u64..500,
    ) {
        let g = GeneratorConfig::erdos_renyi(n, m).seed(seed).build();
        let sampler = NodeWiseSampler::new(&g, Fanouts::new(vec![fanout]));
        let seeds: Vec<u32> = vec![0, (n / 2) as u32];
        let mut rng = StdRng::seed_from_u64(seed);
        let mfg = sampler.sample(&seeds, &mut rng);
        let adj = mfg.layer_adj(1);
        for (t, &seed_v) in mfg.seeds().iter().enumerate() {
            let sampled = adj.neighbors(t);
            prop_assert!(sampled.len() <= fanout);
            prop_assert!(sampled.len() == fanout.min(g.degree(seed_v)));
            // Every sampled local index maps to a true graph neighbor.
            let mut seen = std::collections::HashSet::new();
            for &local in sampled {
                let global = mfg.nodes[local as usize];
                prop_assert!(g.has_edge(seed_v, global));
                prop_assert!(seen.insert(local), "duplicate sampled neighbor");
            }
        }
    }

    #[test]
    fn minibatch_iter_partitions_ids(
        len in 0usize..200,
        batch in 1usize..32,
        seed in 0u64..100,
        epoch in 0u64..4,
    ) {
        let ids: Vec<u32> = (0..len as u32).map(|v| v * 3).collect();
        let mut seen: Vec<u32> = MinibatchIter::new(&ids, batch, seed, epoch).flatten().collect();
        seen.sort_unstable();
        let mut expect = ids.clone();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
        // All batches except possibly the last are full.
        let batches: Vec<_> = MinibatchIter::new(&ids, batch, seed, epoch).collect();
        for b in batches.iter().take(batches.len().saturating_sub(1)) {
            prop_assert_eq!(b.len(), batch);
        }
    }

    #[test]
    fn weighted_sampler_mfg_always_valid(
        n in 8usize..96,
        m in 1usize..300,
        f1 in 1usize..6,
        f2 in 1usize..6,
        seed in 0u64..300,
    ) {
        let g = GeneratorConfig::erdos_renyi(n, m).seed(seed).build();
        // Degree-derived positive scores.
        let score: Vec<f32> = (0..n as u32)
            .map(|v| (g.degree(v) + 1) as f32)
            .collect();
        let w = EdgeWeights::from_target_scores(&g, &score);
        let s = WeightedNodeWiseSampler::new(&g, &w, Fanouts::new(vec![f1, f2]));
        let mut rng = StdRng::seed_from_u64(seed ^ 11);
        let mfg = s.sample(&[0, (n / 2) as u32], &mut rng);
        prop_assert!(mfg.validate().is_ok(), "{:?}", mfg.validate());
        // Fanout bounds.
        for (h, adj) in mfg.hops.iter().enumerate() {
            let f = [f1, f2][h];
            for t in 0..adj.num_targets {
                prop_assert!(adj.neighbors(t).len() <= f);
            }
        }
    }

    #[test]
    fn layerwise_sampler_mfg_always_valid(
        n in 8usize..96,
        m in 1usize..300,
        b1 in 1usize..20,
        b2 in 1usize..20,
        seed in 0u64..300,
    ) {
        let g = GeneratorConfig::erdos_renyi(n, m).seed(seed).build();
        let s = LayerWiseSampler::new(&g, vec![b1, b2]);
        let mut rng = StdRng::seed_from_u64(seed ^ 13);
        let mfg = s.sample(&[0], &mut rng);
        prop_assert!(mfg.validate().is_ok(), "{:?}", mfg.validate());
        prop_assert!(mfg.sizes[1] - mfg.sizes[0] <= b1);
        prop_assert!(mfg.sizes[2] - mfg.sizes[1] <= b2);
    }
}
