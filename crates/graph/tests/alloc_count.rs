//! Counts heap allocations through the quantized feature-gather path
//! with a wrapping global allocator: once a [`QuantizedFeatures`] tier
//! is built, the steady-state serving loop — decode a row into a
//! caller buffer ([`QuantizedFeatures::read_row_into`]), admit a row
//! ([`QuantizedFeatures::set_row`]), round-trip a fetched row through
//! the wire codec ([`quant::wire_roundtrip`]) — must never touch the
//! heap, for every scheme. This is the companion of
//! `crates/tensor/tests/alloc_count.rs` for the cache tiers of
//! DESIGN.md §14.
//!
//! The counter is process-global, so every assertion lives in one test
//! function — Rust runs integration-test functions on separate threads
//! and a second test would race the counter.

use spp_graph::{quant, FeatureMatrix, QuantScheme, QuantizedFeatures};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with the counter armed, returning (allocations, bytes).
fn counted<R>(f: impl FnOnce() -> R) -> (u64, u64, R) {
    ALLOCS.store(0, Ordering::SeqCst);
    BYTES.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let r = f();
    ARMED.store(false, Ordering::SeqCst);
    (
        ALLOCS.load(Ordering::SeqCst),
        BYTES.load(Ordering::SeqCst),
        r,
    )
}

#[test]
fn quantized_gather_path_never_allocates_after_build() {
    let (rows, dim) = (64usize, 50); // 50: exercises the non-multiple-of-8 tail
    let mut s = 0x9e37_79b9u32;
    let flat: Vec<f32> = (0..rows * dim)
        .map(|_| {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            (s >> 8) as f32 / (1u32 << 24) as f32 - 0.5
        })
        .collect();
    let features = FeatureMatrix::from_flat(flat, dim);

    let mut buf = vec![0.0f32; dim];
    let admit = features.row(7).to_vec();
    for scheme in [QuantScheme::F32, QuantScheme::F16, QuantScheme::I8] {
        let mut tier = QuantizedFeatures::from_matrix(&features, scheme);
        let (allocs, bytes, ()) = counted(|| {
            for r in 0..rows {
                tier.read_row_into(r, &mut buf);
                quant::wire_roundtrip(&mut buf, scheme);
                tier.set_row(r, &admit);
            }
        });
        assert_eq!(
            (allocs, bytes),
            (0, 0),
            "{}: decode/admit/wire must not touch the heap",
            scheme.name()
        );
    }
}
