//! Property-based tests for the graph substrate.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use proptest::prelude::*;
use spp_graph::{CsrGraph, GraphBuilder, Permutation};

fn arb_edges(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..200);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for &(s, d) in edges {
        b.add_edge(s, d);
    }
    b.build()
}

proptest! {
    #[test]
    fn csr_neighbors_sorted_unique_no_self_loops((n, edges) in arb_edges(64)) {
        let g = build(n, &edges);
        for v in 0..n as u32 {
            let neigh = g.neighbors(v);
            prop_assert!(neigh.windows(2).all(|w| w[0] < w[1]), "sorted+unique");
            prop_assert!(!neigh.contains(&v), "no self loop");
        }
    }

    #[test]
    fn csr_edge_membership_matches_input((n, edges) in arb_edges(64)) {
        let g = build(n, &edges);
        for &(s, d) in &edges {
            if s != d {
                prop_assert!(g.has_edge(s, d));
            }
        }
        prop_assert!(g.num_edges() <= edges.len());
    }

    #[test]
    fn symmetrize_produces_symmetric_graph((n, edges) in arb_edges(64)) {
        let mut b = GraphBuilder::new(n);
        for &(s, d) in &edges {
            b.add_edge(s, d);
        }
        b.symmetrize();
        let g = b.build();
        prop_assert!(g.is_symmetric());
    }

    #[test]
    fn transpose_is_involution((n, edges) in arb_edges(64)) {
        let g = build(n, &edges);
        prop_assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn permutation_roundtrip_preserves_graph(
        (n, edges) in arb_edges(48),
        seed in 0u64..1000,
    ) {
        let g = build(n, &edges);
        // Derive a pseudo-random permutation from the seed.
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut s = seed.wrapping_add(1);
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let p = Permutation::from_forward(order);
        let gp = p.apply_to_graph(&g);
        let back = p.inverse().apply_to_graph(&gp);
        prop_assert_eq!(back, g.clone());
        // Degrees preserved under relabeling.
        for v in 0..n as u32 {
            prop_assert_eq!(g.degree(v), gp.degree(p.to_new(v)));
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_rule((n, edges) in arb_edges(48)) {
        let mut b = GraphBuilder::new(n);
        for &(s, d) in &edges {
            b.add_edge(s, d);
        }
        b.symmetrize();
        let g = b.build();
        let dist = g.bfs_distances(0);
        // Adjacent vertices differ by at most 1 in distance.
        for (v, u) in g.edges() {
            let (dv, du) = (dist[v as usize], dist[u as usize]);
            if dv != usize::MAX && du != usize::MAX {
                prop_assert!(dv.abs_diff(du) <= 1);
            } else {
                prop_assert_eq!(dv, du, "reachability must agree across an edge");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fuzz the dataset loader: arbitrary bytes must never panic — they
    /// either parse (vanishingly unlikely) or produce a clean error.
    #[test]
    fn dataset_loader_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let path = std::env::temp_dir().join(format!(
            "spp-fuzz-{}-{}",
            std::process::id(),
            bytes.len()
        ));
        std::fs::write(&path, &bytes).unwrap();
        let _ = spp_graph::Dataset::load(&path);
        std::fs::remove_file(&path).ok();
    }

    /// Same, but starting from a VALID file with one corrupted byte.
    #[test]
    fn dataset_loader_survives_single_byte_corruption(
        pos_frac in 0.0f64..1.0,
        value in any::<u8>(),
    ) {
        use spp_graph::dataset::SyntheticSpec;
        let ds = SyntheticSpec::new("fz", 60, 4.0, 3, 2).seed(9).build();
        let path = std::env::temp_dir().join(format!(
            "spp-fuzz2-{}-{}",
            std::process::id(),
            (pos_frac * 1e6) as u64
        ));
        ds.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[idx] = value;
        std::fs::write(&path, &bytes).unwrap();
        let _ = spp_graph::Dataset::load(&path); // must not panic
        std::fs::remove_file(&path).ok();
    }
}

// ---------------------------------------------------------------------
// Quantized feature storage (DESIGN.md §14)
// ---------------------------------------------------------------------

proptest! {
    /// f32 -> f16 -> f32 stays within half a ULP of the f16 grid:
    /// relative error <= 2^-11 for normals, absolute error <= 2^-25
    /// inside the subnormal range, and saturation only past f16::MAX.
    #[test]
    fn f16_round_trip_error_bounds(v in -70000.0f32..70000.0) {
        use spp_graph::quant::{f16_bits_to_f32, f32_to_f16_bits};
        let rt = f16_bits_to_f32(f32_to_f16_bits(v));
        if v.abs() >= 65520.0 {
            // Beyond the f16 overflow threshold: rounds to infinity.
            prop_assert!(rt.is_infinite() && rt.signum() == v.signum());
        } else if v.abs() >= 6.104e-5 {
            prop_assert!(((rt - v) / v).abs() <= 2.0f32.powi(-11), "v={v} rt={rt}");
        } else {
            prop_assert!((rt - v).abs() <= 2.0f32.powi(-25), "v={v} rt={rt}");
        }
    }

    /// The i8 affine codec inverts to within half a quantization step
    /// of the row's own (min, scale) codebook.
    #[test]
    fn i8_round_trip_within_half_step(
        row in prop::collection::vec(-100.0f32..100.0, 1..96),
    ) {
        use spp_graph::{QuantScheme, QuantizedFeatures};
        let dim = row.len();
        let mut q = QuantizedFeatures::with_rows(1, dim, QuantScheme::I8);
        q.set_row(0, &row);
        let mut back = vec![0.0f32; dim];
        q.read_row_into(0, &mut back);
        let lo = row.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        // Half a step plus FP slack from the decode multiply-add.
        let tol = (hi - lo) / 255.0 * 0.5001 + (hi - lo).abs() * 1e-6 + 1e-6;
        for (a, b) in row.iter().zip(&back) {
            prop_assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
        }
    }

    /// Encoding is deterministic and set_row slots are independent.
    #[test]
    fn quantized_rows_are_independent_and_deterministic(
        rows in prop::collection::vec(
            prop::collection::vec(-50.0f32..50.0, 8), 1..12),
        scheme_idx in 0usize..3,
    ) {
        use spp_graph::{QuantScheme, QuantizedFeatures};
        let scheme = [QuantScheme::F32, QuantScheme::F16, QuantScheme::I8][scheme_idx];
        let n = rows.len();
        let mut q = QuantizedFeatures::with_rows(n, 8, scheme);
        // Write in reverse order; reads must still match a fresh
        // forward-order encoding row for row.
        for (i, r) in rows.iter().enumerate().rev() {
            q.set_row(i, r);
        }
        let mut q2 = QuantizedFeatures::with_rows(n, 8, scheme);
        for (i, r) in rows.iter().enumerate() {
            q2.set_row(i, r);
        }
        let mut a = vec![0.0f32; 8];
        let mut b = vec![0.0f32; 8];
        for i in 0..n {
            q.read_row_into(i, &mut a);
            q2.read_row_into(i, &mut b);
            prop_assert_eq!(&a, &b, "row {} diverged", i);
        }
    }
}
