//! Property-based tests for the graph substrate.

// Tests assert by panicking; the workspace panic-family denies apply
// to library code only (see [workspace.lints] in Cargo.toml).
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use proptest::prelude::*;
use spp_graph::{CsrGraph, GraphBuilder, Permutation};

fn arb_edges(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..200);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for &(s, d) in edges {
        b.add_edge(s, d);
    }
    b.build()
}

proptest! {
    #[test]
    fn csr_neighbors_sorted_unique_no_self_loops((n, edges) in arb_edges(64)) {
        let g = build(n, &edges);
        for v in 0..n as u32 {
            let neigh = g.neighbors(v);
            prop_assert!(neigh.windows(2).all(|w| w[0] < w[1]), "sorted+unique");
            prop_assert!(!neigh.contains(&v), "no self loop");
        }
    }

    #[test]
    fn csr_edge_membership_matches_input((n, edges) in arb_edges(64)) {
        let g = build(n, &edges);
        for &(s, d) in &edges {
            if s != d {
                prop_assert!(g.has_edge(s, d));
            }
        }
        prop_assert!(g.num_edges() <= edges.len());
    }

    #[test]
    fn symmetrize_produces_symmetric_graph((n, edges) in arb_edges(64)) {
        let mut b = GraphBuilder::new(n);
        for &(s, d) in &edges {
            b.add_edge(s, d);
        }
        b.symmetrize();
        let g = b.build();
        prop_assert!(g.is_symmetric());
    }

    #[test]
    fn transpose_is_involution((n, edges) in arb_edges(64)) {
        let g = build(n, &edges);
        prop_assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn permutation_roundtrip_preserves_graph(
        (n, edges) in arb_edges(48),
        seed in 0u64..1000,
    ) {
        let g = build(n, &edges);
        // Derive a pseudo-random permutation from the seed.
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut s = seed.wrapping_add(1);
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let p = Permutation::from_forward(order);
        let gp = p.apply_to_graph(&g);
        let back = p.inverse().apply_to_graph(&gp);
        prop_assert_eq!(back, g.clone());
        // Degrees preserved under relabeling.
        for v in 0..n as u32 {
            prop_assert_eq!(g.degree(v), gp.degree(p.to_new(v)));
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_rule((n, edges) in arb_edges(48)) {
        let mut b = GraphBuilder::new(n);
        for &(s, d) in &edges {
            b.add_edge(s, d);
        }
        b.symmetrize();
        let g = b.build();
        let dist = g.bfs_distances(0);
        // Adjacent vertices differ by at most 1 in distance.
        for (v, u) in g.edges() {
            let (dv, du) = (dist[v as usize], dist[u as usize]);
            if dv != usize::MAX && du != usize::MAX {
                prop_assert!(dv.abs_diff(du) <= 1);
            } else {
                prop_assert_eq!(dv, du, "reachability must agree across an edge");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fuzz the dataset loader: arbitrary bytes must never panic — they
    /// either parse (vanishingly unlikely) or produce a clean error.
    #[test]
    fn dataset_loader_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let path = std::env::temp_dir().join(format!(
            "spp-fuzz-{}-{}",
            std::process::id(),
            bytes.len()
        ));
        std::fs::write(&path, &bytes).unwrap();
        let _ = spp_graph::Dataset::load(&path);
        std::fs::remove_file(&path).ok();
    }

    /// Same, but starting from a VALID file with one corrupted byte.
    #[test]
    fn dataset_loader_survives_single_byte_corruption(
        pos_frac in 0.0f64..1.0,
        value in any::<u8>(),
    ) {
        use spp_graph::dataset::SyntheticSpec;
        let ds = SyntheticSpec::new("fz", 60, 4.0, 3, 2).seed(9).build();
        let path = std::env::temp_dir().join(format!(
            "spp-fuzz2-{}-{}",
            std::process::id(),
            (pos_frac * 1e6) as u64
        ));
        ds.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[idx] = value;
        std::fs::write(&path, &bytes).unwrap();
        let _ = spp_graph::Dataset::load(&path); // must not panic
        std::fs::remove_file(&path).ok();
    }
}
