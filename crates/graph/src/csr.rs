//! Compressed-sparse-row graph representation.

use crate::VertexId;

/// An immutable directed graph in compressed-sparse-row form.
///
/// For undirected graphs every edge is stored in both directions; use
/// [`CsrGraph::is_symmetric`] to check. Neighbor lists are sorted by
/// vertex id and free of duplicates and self-loops (the [`crate::GraphBuilder`]
/// enforces this).
///
/// # Example
///
/// ```
/// use spp_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_undirected_edge(0, 1);
/// b.add_undirected_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    row_ptr: Vec<usize>,
    col: Vec<VertexId>,
}

impl CsrGraph {
    /// Creates a graph directly from CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent: `row_ptr` must be
    /// non-decreasing, start at 0, end at `col.len()`, and every column
    /// index must be `< row_ptr.len() - 1`.
    pub fn from_raw_parts(row_ptr: Vec<usize>, col: Vec<VertexId>) -> Self {
        assert!(!row_ptr.is_empty(), "row_ptr must have at least one entry");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(
            row_ptr.last().copied().unwrap_or(0),
            col.len(),
            "row_ptr must end at col.len()"
        );
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be non-decreasing"
        );
        let n = row_ptr.len() - 1;
        assert!(
            col.iter().all(|&c| (c as usize) < n),
            "column index out of range"
        );
        Self { row_ptr, col }
    }

    /// Creates an empty graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Self {
            row_ptr: vec![0; n + 1],
            col: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of directed edges (an undirected edge counts twice).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col.len()
    }

    /// Out-neighbors of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.col[self.row_ptr[v]..self.row_ptr[v + 1]]
    }

    /// The edge-index range of `v`'s out-edges: `neighbors(v)` is
    /// `col()[neighbor_range(v)]`, and any edge-aligned side array (edge
    /// weights, transition probabilities) slices with the same range.
    #[inline]
    pub fn neighbor_range(&self, v: VertexId) -> std::ops::Range<usize> {
        let v = v as usize;
        self.row_ptr[v]..self.row_ptr[v + 1]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.row_ptr[v + 1] - self.row_ptr[v]
    }

    /// The raw row-pointer array (length `num_vertices() + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw column-index array (length `num_edges()`).
    #[inline]
    pub fn col(&self) -> &[VertexId] {
        &self.col
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as VertexId).map(|v| v as VertexId)
    }

    /// Iterates over all directed edges `(src, dst)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |v| {
            self.neighbors(v as VertexId)
                .iter()
                .map(move |&u| (v as VertexId, u))
        })
    }

    /// Returns true if `u` is an out-neighbor of `v` (binary search).
    pub fn has_edge(&self, v: VertexId, u: VertexId) -> bool {
        self.neighbors(v).binary_search(&u).is_ok()
    }

    /// Returns the transpose (reverse all edges). For a symmetric graph this
    /// is equal to the graph itself.
    pub fn transpose(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut in_deg = vec![0usize; n];
        for &c in &self.col {
            in_deg[c as usize] += 1;
        }
        let mut row_ptr = vec![0usize; n + 1];
        for v in 0..n {
            row_ptr[v + 1] = row_ptr[v] + in_deg[v];
        }
        let mut cursor = row_ptr.clone();
        let mut col = vec![0 as VertexId; self.col.len()];
        for (src, dst) in self.edges() {
            let d = dst as usize;
            col[cursor[d]] = src;
            cursor[d] += 1;
        }
        // Neighbor lists constructed by a forward edge sweep are already
        // sorted by source, so each transposed list is sorted.
        CsrGraph { row_ptr, col }
    }

    /// Returns true if for every edge `(v, u)` the edge `(u, v)` also exists.
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(v, u)| self.has_edge(u, v))
    }

    /// Maximum out-degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Mean out-degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Memory footprint of the CSR arrays in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col.len() * std::mem::size_of::<VertexId>()
    }

    /// Breadth-first distances from `src`; `usize::MAX` for unreachable.
    pub fn bfs_distances(&self, src: VertexId) -> Vec<usize> {
        let n = self.num_vertices();
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[src as usize] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v as usize];
            for &u in self.neighbors(v) {
                if dist[u as usize] == usize::MAX {
                    dist[u as usize] = dv + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Number of connected components (treating edges as undirected).
    pub fn num_components(&self) -> usize {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        let mut comps = 0;
        let mut stack = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            comps += 1;
            seen[s] = true;
            stack.push(s as VertexId);
            while let Some(v) = stack.pop() {
                for &u in self.neighbors(v) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        stack.push(u);
                    }
                }
            }
        }
        comps
    }
}

impl std::fmt::Display for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CsrGraph {{ vertices: {}, edges: {} }}",
            self.num_vertices(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> CsrGraph {
        let mut b = GraphBuilder::new(3);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(1, 2);
        b.add_undirected_edge(2, 0);
        b.build()
    }

    #[test]
    fn raw_parts_roundtrip() {
        let g = triangle();
        let g2 = CsrGraph::from_raw_parts(g.row_ptr().to_vec(), g.col().to_vec());
        assert_eq!(g, g2);
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn raw_parts_rejects_bad_col() {
        CsrGraph::from_raw_parts(vec![0, 1], vec![5]);
    }

    #[test]
    #[should_panic(expected = "row_ptr must end at col.len()")]
    fn raw_parts_rejects_bad_rowptr() {
        CsrGraph::from_raw_parts(vec![0, 2], vec![0]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.num_components(), 5);
    }

    #[test]
    fn triangle_properties() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_symmetric());
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.num_components(), 1);
        assert_eq!(g.mean_degree(), 2.0);
    }

    #[test]
    fn transpose_of_directed_edge() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        let g = b.build();
        let t = g.transpose();
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[0]);
        assert_eq!(t.neighbors(0), &[] as &[VertexId]);
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn symmetric_graph_equals_transpose() {
        let g = triangle();
        assert_eq!(g.transpose(), g);
    }

    #[test]
    fn bfs_distances_path() {
        let mut b = GraphBuilder::new(4);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(1, 2);
        b.add_undirected_edge(2, 3);
        let g = b.build();
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected_edge(0, 1);
        let g = b.build();
        let d = g.bfs_distances(0);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn edges_iterator_counts() {
        let g = triangle();
        assert_eq!(g.edges().count(), 6);
        assert!(g.edges().all(|(v, u)| v != u));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", triangle()).is_empty());
    }
}
