//! Deterministic synthetic graph generators.
//!
//! These generators stand in for the OGB benchmark graphs used in the
//! paper (see DESIGN.md §2). All of them produce symmetric (undirected)
//! graphs by default — the paper makes every benchmark graph undirected
//! during preprocessing — and take an explicit seed.

use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which random-graph family to draw from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphFamily {
    /// Recursive-matrix (R-MAT) generator: power-law degrees, community-ish
    /// structure. Parameters are the standard `(a, b, c)` quadrant
    /// probabilities (with `d = 1 - a - b - c`).
    Rmat { a: f64, b: f64, c: f64 },
    /// Erdős–Rényi `G(n, m)`: uniform random edges, no skew. Useful as a
    /// structure-free control.
    ErdosRenyi,
    /// Planted-partition (stochastic block model) graph: `blocks` communities
    /// with intra-community edge probability boosted by `homophily` (0..1).
    /// Gives the partitioner real structure to find, like the citation
    /// graphs in the paper.
    PlantedPartition { blocks: usize, homophily: f64 },
    /// Chung–Lu power-law graph with the given exponent (`~2.1` for
    /// citation-like tails).
    ChungLu { exponent: f64 },
}

/// Configuration for synthetic graph generation.
///
/// # Example
///
/// ```
/// use spp_graph::generate::GeneratorConfig;
///
/// let g = GeneratorConfig::planted_partition(500, 3_000, 8, 0.9)
///     .seed(42)
///     .build();
/// assert_eq!(g.num_vertices(), 500);
/// assert!(g.is_symmetric());
/// ```
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    n: usize,
    target_edges: usize,
    family: GraphFamily,
    seed: u64,
}

impl GeneratorConfig {
    /// R-MAT with the classic `(0.57, 0.19, 0.19)` skew.
    pub fn rmat(n: usize, target_edges: usize) -> Self {
        Self {
            n,
            target_edges,
            family: GraphFamily::Rmat {
                a: 0.57,
                b: 0.19,
                c: 0.19,
            },
            seed: 0,
        }
    }

    /// Erdős–Rényi `G(n, m)`.
    pub fn erdos_renyi(n: usize, target_edges: usize) -> Self {
        Self {
            n,
            target_edges,
            family: GraphFamily::ErdosRenyi,
            seed: 0,
        }
    }

    /// Planted-partition graph with `blocks` communities.
    pub fn planted_partition(n: usize, target_edges: usize, blocks: usize, homophily: f64) -> Self {
        assert!(blocks > 0, "need at least one block");
        assert!(
            (0.0..=1.0).contains(&homophily),
            "homophily must be in [0,1]"
        );
        Self {
            n,
            target_edges,
            family: GraphFamily::PlantedPartition { blocks, homophily },
            seed: 0,
        }
    }

    /// Chung–Lu power-law graph.
    pub fn chung_lu(n: usize, target_edges: usize, exponent: f64) -> Self {
        assert!(exponent > 1.0, "power-law exponent must exceed 1");
        Self {
            n,
            target_edges,
            family: GraphFamily::ChungLu { exponent },
            seed: 0,
        }
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the family.
    pub fn family(mut self, family: GraphFamily) -> Self {
        self.family = family;
        self
    }

    /// Generates the graph. The result is symmetric; the number of
    /// undirected edges is close to (at most) `target_edges` after removing
    /// duplicates and self-loops.
    pub fn build(&self) -> CsrGraph {
        let mut b = GraphBuilder::with_capacity(self.n, self.target_edges * 2);
        for (src, dst) in self.edges() {
            b.add_edge(src, dst);
        }
        b.build()
    }

    /// Streams the generator's directed edges (both directions of each
    /// accepted undirected pair) without materializing an edge list.
    ///
    /// The stream performs exactly the RNG draws [`Self::build`] would —
    /// `build()` is now `GraphBuilder` fed from this iterator — so the
    /// out-of-core path (`spp-store`'s `StreamingCsrBuilder`) consumes
    /// the identical edge sequence and produces a bitwise-equal graph.
    pub fn edges(&self) -> EdgeStream {
        let rng = StdRng::seed_from_u64(self.seed);
        let kind = match self.family {
            GraphFamily::Rmat { a, b, c } => StreamKind::Rmat {
                levels: (self.n as f64).log2().ceil() as usize,
                a,
                b,
                c,
            },
            GraphFamily::ErdosRenyi => StreamKind::ErdosRenyi,
            GraphFamily::PlantedPartition { blocks, homophily } => {
                StreamKind::PlantedPartition { blocks, homophily }
            }
            GraphFamily::ChungLu { exponent } => {
                // Weight w_i ~ i^{-1/(exponent-1)}; endpoints drawn
                // proportional to weight via the inverse-CDF trick on a
                // precomputed prefix-sum table (no RNG consumed here).
                let gamma = 1.0 / (exponent - 1.0);
                let mut cdf = Vec::with_capacity(self.n);
                let mut acc = 0.0;
                for i in 0..self.n {
                    acc += ((i + 1) as f64).powf(-gamma);
                    cdf.push(acc);
                }
                StreamKind::ChungLu { cdf, total: acc }
            }
        };
        EdgeStream {
            rng,
            n: self.n,
            remaining: self.target_edges,
            kind,
            pending: None,
        }
    }
}

/// Which family an [`EdgeStream`] draws from, with the family's
/// precomputed tables.
enum StreamKind {
    Rmat {
        levels: usize,
        a: f64,
        b: f64,
        c: f64,
    },
    ErdosRenyi,
    PlantedPartition {
        blocks: usize,
        homophily: f64,
    },
    ChungLu {
        cdf: Vec<f64>,
        total: f64,
    },
}

/// Streaming edge source for [`GeneratorConfig`]: yields directed edges
/// in generation order, one `(src, dst)` then its reverse `(dst, src)`
/// per accepted pair, self-loops dropped at the draw.
pub struct EdgeStream {
    rng: StdRng,
    n: usize,
    remaining: usize,
    kind: StreamKind,
    pending: Option<(VertexId, VertexId)>,
}

impl EdgeStream {
    /// Number of vertices edges are drawn over.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    fn draw_pair(&mut self) -> (VertexId, VertexId) {
        match &self.kind {
            StreamKind::Rmat { levels, a, b, c } => {
                rmat_edge(&mut self.rng, self.n, *levels, *a, *b, *c)
            }
            StreamKind::ErdosRenyi => {
                let src = self.rng.gen_range(0..self.n) as VertexId;
                let dst = self.rng.gen_range(0..self.n) as VertexId;
                (src, dst)
            }
            StreamKind::PlantedPartition { blocks, homophily } => {
                // Blocks are contiguous id ranges so downstream code can
                // recover ground truth as `v * blocks / n`.
                let (blocks, homophily) = (*blocks, *homophily);
                let src = self.rng.gen_range(0..self.n);
                let dst = if self.rng.gen::<f64>() < homophily {
                    // Pick within src's block.
                    let blk = src * blocks / self.n;
                    let lo = (blk * self.n).div_ceil(blocks);
                    let hi = ((blk + 1) * self.n).div_ceil(blocks);
                    self.rng.gen_range(lo..hi.max(lo + 1)).min(self.n - 1)
                } else {
                    self.rng.gen_range(0..self.n)
                };
                (src as VertexId, dst as VertexId)
            }
            StreamKind::ChungLu { cdf, total } => {
                let n = self.n;
                let draw = |rng: &mut StdRng| -> VertexId {
                    let x = rng.gen::<f64>() * total;
                    cdf.partition_point(|&c| c < x).min(n - 1) as VertexId
                };
                let src = draw(&mut self.rng);
                let dst = draw(&mut self.rng);
                (src, dst)
            }
        }
    }
}

impl Iterator for EdgeStream {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<(VertexId, VertexId)> {
        if let Some(rev) = self.pending.take() {
            return Some(rev);
        }
        while self.remaining > 0 {
            self.remaining -= 1;
            let (src, dst) = self.draw_pair();
            if src != dst {
                self.pending = Some((dst, src));
                return Some((src, dst));
            }
        }
        None
    }
}

fn rmat_edge(
    rng: &mut StdRng,
    n: usize,
    levels: usize,
    a: f64,
    b: f64,
    c: f64,
) -> (VertexId, VertexId) {
    let (mut x, mut y) = (0usize, 0usize);
    let mut step = 1usize << levels.saturating_sub(1);
    for _ in 0..levels {
        let r: f64 = rng.gen();
        // Quadrant probabilities perturbed slightly per level, as in the
        // original R-MAT paper, to avoid exact self-similarity artifacts.
        if r < a {
            // top-left: nothing to add
        } else if r < a + b {
            y += step;
        } else if r < a + b + c {
            x += step;
        } else {
            x += step;
            y += step;
        }
        step /= 2;
    }
    ((x % n) as VertexId, (y % n) as VertexId)
}

/// Generates a citation-style benchmark graph in one shot: per-vertex
/// Pareto-distributed popularity weights (heavy-tailed degrees with a low
/// median, like real citation networks), community structure (blocks are
/// contiguous id ranges `v * blocks / n`), and popularity-weighted
/// endpoints everywhere:
///
/// - both endpoints are drawn proportionally to vertex weight;
/// - with probability `homophily` the destination is drawn within the
///   source's block (fields concentrate citations on their top papers),
///   otherwise globally (famous papers attract cross-field citations).
///
/// `tail` is the Pareto shape parameter: smaller = heavier popularity
/// tail (1.2–1.5 resembles citation graphs). The result is symmetric.
pub fn citation_graph(
    n: usize,
    target_edges: usize,
    blocks: usize,
    homophily: f64,
    tail: f64,
    seed: u64,
) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, target_edges * 2);
    for (src, dst) in citation_edges(n, target_edges, blocks, homophily, tail, seed) {
        b.add_edge(src, dst);
    }
    b.build()
}

/// Streams the directed edges of [`citation_graph`] without
/// materializing the edge list: the constructor draws the same n Pareto
/// popularity weights [`citation_graph`] would, then the iterator
/// performs the identical per-edge draws — `citation_graph()` is now
/// `GraphBuilder` fed from this stream, so consuming it through
/// `spp-store`'s `StreamingCsrBuilder` yields a bitwise-equal graph at
/// any scale.
///
/// # Panics
///
/// Panics on the same argument violations as [`citation_graph`].
pub fn citation_edges(
    n: usize,
    target_edges: usize,
    blocks: usize,
    homophily: f64,
    tail: f64,
    seed: u64,
) -> CitationEdges {
    assert!(blocks > 0, "need at least one block");
    assert!(
        (0.0..=1.0).contains(&homophily),
        "homophily must be in [0,1]"
    );
    assert!(tail > 1.0, "Pareto shape must exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);
    // Per-vertex Pareto(tail) popularity weights, capped so no vertex can
    // absorb more than ~a quarter of all edge endpoints.
    let cap = (target_edges as f64 / 2.0).max(4.0);
    // Global prefix sums; block draws restrict to [S[lo], S[hi]).
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0f64);
    let mut acc = 0.0f64;
    for _ in 0..n {
        let u: f64 = rng.gen::<f64>().max(1e-12);
        acc += u.powf(-1.0 / tail).min(cap);
        prefix.push(acc);
    }
    CitationEdges {
        rng,
        n,
        blocks,
        homophily,
        remaining: target_edges,
        prefix,
        pending: None,
    }
}

/// Streaming edge source for [`citation_graph`] (see [`citation_edges`]).
pub struct CitationEdges {
    rng: StdRng,
    n: usize,
    blocks: usize,
    homophily: f64,
    remaining: usize,
    prefix: Vec<f64>,
    pending: Option<(VertexId, VertexId)>,
}

impl CitationEdges {
    /// Number of vertices edges are drawn over.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    fn draw_range(&mut self, lo: usize, hi: usize) -> usize {
        let x = self.prefix[lo] + self.rng.gen::<f64>() * (self.prefix[hi] - self.prefix[lo]);
        (self.prefix.partition_point(|&c| c <= x) - 1).clamp(lo, hi - 1)
    }
}

impl Iterator for CitationEdges {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<(VertexId, VertexId)> {
        if let Some(rev) = self.pending.take() {
            return Some(rev);
        }
        while self.remaining > 0 {
            self.remaining -= 1;
            let src = self.draw_range(0, self.n);
            let dst = if self.rng.gen::<f64>() < self.homophily {
                let blk = src * self.blocks / self.n;
                let lo = (blk * self.n).div_ceil(self.blocks);
                let hi = ((blk + 1) * self.n).div_ceil(self.blocks).min(self.n);
                self.draw_range(lo, hi)
            } else {
                self.draw_range(0, self.n)
            };
            if src != dst {
                self.pending = Some((dst as VertexId, src as VertexId));
                return Some((src as VertexId, dst as VertexId));
            }
        }
        None
    }
}

/// Generates community-structured citation edges: each edge has a
/// uniformly random source; with probability `homophily` its destination
/// is drawn *within the source's block* with Zipf-like popularity weights
/// `rank^(-gamma)` (fields concentrate citations on their top papers),
/// otherwise the destination is uniform over the whole graph. Blocks are
/// contiguous id ranges `v * blocks / n`, matching
/// [`GeneratorConfig::planted_partition`]. The result is symmetric.
pub fn citation_community(
    n: usize,
    target_edges: usize,
    blocks: usize,
    homophily: f64,
    gamma: f64,
    seed: u64,
) -> CsrGraph {
    assert!(blocks > 0, "need at least one block");
    assert!(
        (0.0..=1.0).contains(&homophily),
        "homophily must be in [0,1]"
    );
    assert!(gamma >= 0.0, "gamma must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    // One CDF sized for the largest block; truncated per draw.
    let max_block = n.div_ceil(blocks) + 1;
    let mut cdf = Vec::with_capacity(max_block);
    let mut acc = 0.0f64;
    for j in 0..max_block {
        acc += ((j + 1) as f64).powf(-gamma);
        cdf.push(acc);
    }
    let mut b = GraphBuilder::with_capacity(n, target_edges * 2);
    for _ in 0..target_edges {
        let src = rng.gen_range(0..n);
        let dst = if rng.gen::<f64>() < homophily {
            let blk = src * blocks / n;
            let lo = (blk * n).div_ceil(blocks);
            let hi = ((blk + 1) * n).div_ceil(blocks).min(n);
            let m = hi - lo;
            let x = rng.gen::<f64>() * cdf[m - 1];
            lo + cdf[..m].partition_point(|&c| c < x).min(m - 1)
        } else {
            rng.gen_range(0..n)
        };
        if src != dst {
            b.add_undirected_edge(src as VertexId, dst as VertexId);
        }
    }
    b.build()
}

/// Generates a "citation-style" preferential overlay: edge endpoints are
/// drawn from power-law (Zipf-like) popularity distributions — sources
/// with exponent `src_exponent`, destinations with exponent
/// `dst_exponent`. Popularity ranks are shuffled onto vertex ids so
/// hub-ness does not correlate with id-contiguous communities, but the
/// *same* shuffle is used for both endpoints, giving the rich-club
/// structure of citation graphs: popular papers cite popular papers, and
/// long-range (cross-community) edges concentrate within the popular
/// core. The returned graph is symmetric.
pub fn preferential_overlay(
    n: usize,
    target_edges: usize,
    src_exponent: f64,
    dst_exponent: f64,
    seed: u64,
) -> CsrGraph {
    assert!(src_exponent > 1.0, "source exponent must exceed 1");
    assert!(dst_exponent > 1.0, "destination exponent must exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let make_cdf = |exponent: f64| -> Vec<f64> {
        let gamma = 1.0 / (exponent - 1.0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += ((i + 1) as f64).powf(-gamma);
            cdf.push(acc);
        }
        cdf
    };
    let src_cdf = make_cdf(src_exponent);
    let dst_cdf = make_cdf(dst_exponent);
    // Shuffle popularity ranks onto vertex ids (shared by both ends).
    let mut popular: Vec<VertexId> = (0..n as VertexId).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        popular.swap(i, j);
    }
    let draw = |rng: &mut StdRng, cdf: &[f64]| -> VertexId {
        let x = rng.gen::<f64>() * cdf[n - 1];
        popular[cdf.partition_point(|&c| c < x).min(n - 1)]
    };
    let mut b = GraphBuilder::with_capacity(n, target_edges * 2);
    for _ in 0..target_edges {
        let src = draw(&mut rng, &src_cdf);
        let dst = draw(&mut rng, &dst_cdf);
        if src != dst {
            b.add_undirected_edge(src, dst);
        }
    }
    b.build()
}

/// Convenience: a deterministic small-world test graph (ring + chords).
/// Handy for unit tests that need predictable structure.
pub fn ring_with_chords(n: usize, chord_stride: usize) -> CsrGraph {
    assert!(n >= 3, "ring needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_undirected_edge(v as VertexId, ((v + 1) % n) as VertexId);
        if chord_stride > 1 {
            b.add_undirected_edge(v as VertexId, ((v + chord_stride) % n) as VertexId);
        }
    }
    b.build()
}

/// Convenience: a complete graph on `n` vertices (for fanout edge cases).
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for u in (v + 1)..n {
            b.add_undirected_edge(v as VertexId, u as VertexId);
        }
    }
    b.build()
}

/// Convenience: a star graph with vertex 0 at the center.
pub fn star(n: usize) -> CsrGraph {
    assert!(n >= 2, "star needs at least 2 vertices");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_undirected_edge(0, v as VertexId);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_symmetric_and_deterministic() {
        let g1 = GeneratorConfig::rmat(256, 2_000).seed(1).build();
        let g2 = GeneratorConfig::rmat(256, 2_000).seed(1).build();
        assert_eq!(g1, g2);
        assert!(g1.is_symmetric());
        assert!(g1.num_edges() > 0);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = GeneratorConfig::rmat(256, 2_000).seed(1).build();
        let g2 = GeneratorConfig::rmat(256, 2_000).seed(2).build();
        assert_ne!(g1, g2);
    }

    #[test]
    fn rmat_has_skewed_degrees() {
        let g = GeneratorConfig::rmat(1024, 16_000).seed(3).build();
        // Power-law-ish: max degree far exceeds mean degree.
        assert!(g.max_degree() as f64 > 4.0 * g.mean_degree());
    }

    #[test]
    fn erdos_renyi_close_to_target() {
        let g = GeneratorConfig::erdos_renyi(1000, 5_000).seed(4).build();
        // Each accepted pair adds 2 directed edges; duplicates shave a few.
        assert!(g.num_edges() > 8_000 && g.num_edges() <= 10_000);
    }

    #[test]
    fn planted_partition_is_homophilous() {
        let n = 600;
        let blocks = 6;
        let g = GeneratorConfig::planted_partition(n, 6_000, blocks, 0.9)
            .seed(5)
            .build();
        let block_of = |v: VertexId| (v as usize) * blocks / n;
        let intra = g
            .edges()
            .filter(|&(v, u)| block_of(v) == block_of(u))
            .count();
        assert!(
            intra as f64 > 0.7 * g.num_edges() as f64,
            "expected >70% intra-block edges, got {}/{}",
            intra,
            g.num_edges()
        );
    }

    #[test]
    fn chung_lu_head_is_heavy() {
        let g = GeneratorConfig::chung_lu(1000, 10_000, 2.1).seed(6).build();
        // Vertex 0 has the largest weight, so it should be among the very
        // highest-degree vertices.
        let d0 = g.degree(0);
        let heavier = (0..1000).filter(|&v| g.degree(v) > d0).count();
        assert!(
            heavier < 10,
            "vertex 0 should be near the top, {heavier} heavier"
        );
    }

    #[test]
    fn citation_graph_structure() {
        let g = citation_graph(2000, 12_000, 8, 0.9, 1.3, 5);
        assert!(g.is_symmetric());
        // Heavy tail: max degree far above the median.
        let mut degs: Vec<usize> = (0..2000).map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        assert!(
            degs[1999] > 8 * degs[1000],
            "expected heavy tail: {:?}",
            &degs[1995..]
        );
        // Homophily: most edges stay within their block.
        let block_of = |v: VertexId| (v as usize) * 8 / 2000;
        let intra = g
            .edges()
            .filter(|&(v, u)| block_of(v) == block_of(u))
            .count();
        assert!(intra as f64 > 0.8 * g.num_edges() as f64);
    }

    #[test]
    fn citation_graph_deterministic() {
        let a = citation_graph(500, 2_000, 4, 0.9, 1.3, 7);
        let b = citation_graph(500, 2_000, 4, 0.9, 1.3, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "Pareto shape must exceed 1")]
    fn citation_graph_validates_tail() {
        citation_graph(10, 20, 2, 0.5, 1.0, 0);
    }

    #[test]
    fn citation_community_concentrates_on_block_heads() {
        let g = citation_community(1000, 8_000, 4, 1.0, 1.0, 3);
        // Within each block the first vertices (rank 1) should have much
        // higher degree than the middle of the block.
        let head = g.degree(0);
        let mid = g.degree(125);
        assert!(head > 3 * mid.max(1), "head {head} vs mid {mid}");
        assert!(g.is_symmetric());
    }

    #[test]
    fn preferential_overlay_has_hubs() {
        let g = preferential_overlay(5_000, 20_000, 1.6, 2.0, 9);
        assert!(g.is_symmetric());
        let max = (0..5_000).map(|v| g.degree(v)).max().unwrap();
        let mean = g.mean_degree();
        assert!(max as f64 > 20.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn ring_with_chords_structure() {
        let g = ring_with_chords(10, 3);
        assert!(g.is_symmetric());
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
        assert_eq!(g.num_components(), 1);
    }

    #[test]
    fn complete_graph_degrees() {
        let g = complete(5);
        for v in 0..5 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn star_graph_center() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        for v in 1..6 {
            assert_eq!(g.degree(v), 1);
        }
    }
}
