//! Graph substrate for the SALIENT++ reproduction.
//!
//! This crate provides the compressed-sparse-row (CSR) graph representation
//! used throughout the workspace, deterministic synthetic graph generators
//! that stand in for the Open Graph Benchmark data sets used in the paper,
//! and the [`Dataset`] bundle (graph + vertex features + labels + splits)
//! consumed by the sampler, the VIP analysis, and the training engine.
//!
//! # Example
//!
//! ```
//! use spp_graph::generate::GeneratorConfig;
//!
//! // A small power-law graph, deterministically seeded.
//! let g = GeneratorConfig::rmat(1_000, 8_000).seed(7).build();
//! assert!(g.num_vertices() <= 1_000);
//! assert!(g.is_symmetric());
//! ```

// Test modules assert by panicking; the workspace panic-family denies
// (see [workspace.lints] in Cargo.toml) apply to library code only.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp
    )
)]
// Index-based loops over multiple parallel arrays are used deliberately
// throughout (CSR sweeps, per-partition load vectors); iterator zips would
// obscure which array drives the bound.
#![allow(clippy::needless_range_loop)]

pub mod builder;
pub mod csr;
pub mod dataset;
pub mod generate;
pub mod io;
pub mod perm;
pub mod quant;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use dataset::{Dataset, FeatureMatrix, Split, SplitKind};
pub use io::{GraphIoError, LoadError};
pub use perm::{PagedPermutation, Permutation};
pub use quant::{QuantScheme, QuantizedFeatures};

/// Vertex identifier. `u32` suffices for the scaled-down benchmark graphs
/// while halving index memory relative to `usize`.
pub type VertexId = u32;
