//! Graph statistics: the structural properties that drive the paper's
//! results (degree skew, locality) summarized for datasets and harness
//! output.

use crate::CsrGraph;

/// Summary statistics of a graph's degree distribution and structure.
///
/// # Example
///
/// ```
/// use spp_graph::generate::star;
/// use spp_graph::stats::GraphStats;
///
/// let s = GraphStats::compute(&star(100));
/// assert_eq!(s.max_degree, 99);
/// assert_eq!(s.median_degree, 1);
/// assert!(s.degree_gini > 0.4); // maximally hub-centric
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub num_vertices: usize,
    /// Undirected edge count (directed / 2 for symmetric graphs).
    pub num_edges: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Median degree.
    pub median_degree: usize,
    /// 99th-percentile degree.
    pub p99_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Gini coefficient of the degree distribution (0 = uniform,
    /// → 1 = all edges on one vertex). Citation graphs sit around 0.5–0.7.
    pub degree_gini: f64,
    /// Share of all edge endpoints held by the top 1% of vertices.
    pub top1pct_degree_share: f64,
    /// Number of connected components.
    pub components: usize,
}

impl GraphStats {
    /// Computes statistics for a graph.
    pub fn compute(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        let mut degs: Vec<usize> = (0..n).map(|v| graph.degree(v as u32)).collect();
        degs.sort_unstable();
        let total: usize = degs.iter().sum();
        let median_degree = if n == 0 { 0 } else { degs[n / 2] };
        let p99_degree = if n == 0 {
            0
        } else {
            degs[(n * 99 / 100).min(n - 1)]
        };
        let max_degree = degs.last().copied().unwrap_or(0);

        // Gini via the sorted-degree formula:
        // G = (2·Σ i·d_i) / (n·Σ d_i) − (n+1)/n, with i 1-indexed ascending.
        let degree_gini = if n == 0 || total == 0 {
            0.0
        } else {
            let weighted: f64 = degs
                .iter()
                .enumerate()
                .map(|(i, &d)| (i + 1) as f64 * d as f64)
                .sum();
            (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
        };
        let top = (n / 100).max(1);
        let top_share: usize = degs.iter().rev().take(top).sum();
        Self {
            num_vertices: n,
            num_edges: graph.num_edges() / 2,
            mean_degree: graph.mean_degree(),
            median_degree,
            p99_degree,
            max_degree,
            degree_gini,
            top1pct_degree_share: if total == 0 {
                0.0
            } else {
                top_share as f64 / total as f64
            },
            components: graph.num_components(),
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} vertices, {} edges, degree mean {:.1} / median {} / p99 {} / max {}, \
             gini {:.2}, top-1% share {:.0}%, {} components",
            self.num_vertices,
            self.num_edges,
            self.mean_degree,
            self.median_degree,
            self.p99_degree,
            self.max_degree,
            self.degree_gini,
            100.0 * self.top1pct_degree_share,
            self.components
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{citation_graph, complete, star};

    #[test]
    fn uniform_graph_has_low_gini() {
        let s = GraphStats::compute(&complete(20));
        assert_eq!(s.median_degree, 19);
        assert_eq!(s.max_degree, 19);
        assert!(s.degree_gini.abs() < 1e-9, "gini {}", s.degree_gini);
        assert_eq!(s.components, 1);
    }

    #[test]
    fn star_graph_is_maximally_skewed() {
        let s = GraphStats::compute(&star(1000));
        assert_eq!(s.median_degree, 1);
        assert_eq!(s.max_degree, 999);
        assert!(s.degree_gini > 0.45, "gini {}", s.degree_gini);
        assert!(s.top1pct_degree_share > 0.45);
    }

    #[test]
    fn citation_graph_is_citation_like() {
        let g = citation_graph(5_000, 50_000, 16, 0.93, 1.2, 3);
        let s = GraphStats::compute(&g);
        assert!(s.median_degree < (s.mean_degree as usize).max(1));
        assert!(
            s.degree_gini > 0.4 && s.degree_gini < 0.95,
            "gini {}",
            s.degree_gini
        );
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn empty_graph_is_safe() {
        let s = GraphStats::compute(&CsrGraph::empty(0));
        assert_eq!(s.degree_gini, 0.0);
        assert_eq!(s.top1pct_degree_share, 0.0);
    }
}
