//! Node-classification datasets: graph + features + labels + splits.
//!
//! The constructors in this module generate synthetic stand-ins for the
//! OGB data sets the paper evaluates on (`ogbn-products`,
//! `ogbn-papers100M`, `lsc-mag240c`). They preserve the *ratios* that
//! drive the paper's results — average degree, feature dimensionality,
//! and train/val/test split skew — at a laptop-tractable scale
//! (see DESIGN.md §2 for the substitution rationale).

use crate::{CsrGraph, Permutation, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Row-major dense `f32` vertex-feature matrix.
///
/// # Example
///
/// ```
/// use spp_graph::FeatureMatrix;
///
/// let f = FeatureMatrix::zeros(3, 4);
/// assert_eq!(f.row(1).len(), 4);
/// assert_eq!(f.memory_bytes(), 3 * 4 * 4);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureMatrix {
    data: Vec<f32>,
    dim: usize,
}

impl FeatureMatrix {
    /// All-zero matrix with `rows` rows of dimension `dim`.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        Self {
            data: vec![0.0; rows * dim],
            dim,
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_flat(data: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        assert_eq!(data.len() % dim, 0, "flat buffer not a multiple of dim");
        Self { data, dim }
    }

    /// Number of rows (vertices).
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Feature dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow one row.
    #[inline]
    pub fn row(&self, v: VertexId) -> &[f32] {
        let v = v as usize;
        &self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// Mutably borrow one row.
    #[inline]
    pub fn row_mut(&mut self, v: VertexId) -> &mut [f32] {
        let v = v as usize;
        &mut self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// The flat row-major buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Copies the rows `ids` into a new contiguous matrix ("tensor slicing").
    pub fn gather(&self, ids: &[VertexId]) -> FeatureMatrix {
        let mut out = Vec::with_capacity(ids.len() * self.dim);
        for &v in ids {
            out.extend_from_slice(self.row(v));
        }
        FeatureMatrix {
            data: out,
            dim: self.dim,
        }
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// Which split a vertex belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SplitKind {
    /// Training vertices (minibatch seeds during training).
    Train,
    /// Validation vertices.
    Val,
    /// Test vertices.
    Test,
    /// Vertices with no label (the bulk of papers100M/mag240c).
    Unlabeled,
}

/// Train/validation/test vertex sets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Split {
    /// Training vertex ids (sorted).
    pub train: Vec<VertexId>,
    /// Validation vertex ids (sorted).
    pub val: Vec<VertexId>,
    /// Test vertex ids (sorted).
    pub test: Vec<VertexId>,
}

impl Split {
    /// Classifies `v`, given the total vertex count, as train/val/test or
    /// unlabeled. O(log n) binary searches over the sorted id lists.
    pub fn kind_of(&self, v: VertexId) -> SplitKind {
        if self.train.binary_search(&v).is_ok() {
            SplitKind::Train
        } else if self.val.binary_search(&v).is_ok() {
            SplitKind::Val
        } else if self.test.binary_search(&v).is_ok() {
            SplitKind::Test
        } else {
            SplitKind::Unlabeled
        }
    }

    /// Relabels all split ids through a permutation and re-sorts.
    pub fn permuted(&self, perm: &Permutation) -> Split {
        let map = |ids: &[VertexId]| {
            let mut out: Vec<VertexId> = ids.iter().map(|&v| perm.to_new(v)).collect();
            out.sort_unstable();
            out
        };
        Split {
            train: map(&self.train),
            val: map(&self.val),
            test: map(&self.test),
        }
    }
}

/// A complete node-classification dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable name (e.g. `products-mini`).
    pub name: String,
    /// The (symmetric) graph.
    pub graph: CsrGraph,
    /// Vertex features.
    pub features: FeatureMatrix,
    /// Vertex labels in `0..num_classes` (meaningless for unlabeled vertices).
    pub labels: Vec<u32>,
    /// Number of label classes.
    pub num_classes: usize,
    /// Train/val/test split.
    pub split: Split,
}

impl Dataset {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Applies a vertex permutation to every component consistently.
    pub fn permuted(&self, perm: &Permutation) -> Dataset {
        let n = self.num_vertices();
        let dim = self.features.dim();
        let mut feats = FeatureMatrix::zeros(n, dim);
        for old in 0..n as VertexId {
            feats
                .row_mut(perm.to_new(old))
                .copy_from_slice(self.features.row(old));
        }
        Dataset {
            name: self.name.clone(),
            graph: perm.apply_to_graph(&self.graph),
            features: feats,
            labels: perm.apply_to_values(&self.labels),
            num_classes: self.num_classes,
            split: self.split.permuted(perm),
        }
    }

    /// Total feature storage in bytes (the quantity Figure 5 plots multiples of).
    pub fn feature_bytes(&self) -> usize {
        self.features.memory_bytes()
    }
}

/// Specification for a synthetic dataset.
///
/// # Example
///
/// ```
/// use spp_graph::dataset::SyntheticSpec;
///
/// let ds = SyntheticSpec::new("tiny", 200, 8.0, 16, 4).seed(1).build();
/// assert_eq!(ds.num_vertices(), 200);
/// assert!(!ds.split.train.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct SyntheticSpec {
    name: String,
    n: usize,
    avg_degree: f64,
    feat_dim: usize,
    num_classes: usize,
    train_frac: f64,
    val_frac: f64,
    test_frac: f64,
    homophily: f64,
    degree_tail: f64,
    feature_signal: f32,
    seed: u64,
}

impl SyntheticSpec {
    /// Creates a spec with the given size, average (undirected) degree,
    /// feature dimension, and class count. Default split fractions follow
    /// ogbn-products (8% train / 1.6% val / rest test).
    pub fn new(name: &str, n: usize, avg_degree: f64, feat_dim: usize, num_classes: usize) -> Self {
        assert!(n >= num_classes, "need at least one vertex per class");
        Self {
            name: name.to_string(),
            n,
            avg_degree,
            feat_dim,
            num_classes,
            train_frac: 0.08,
            val_frac: 0.016,
            test_frac: 0.9,
            homophily: 0.93,
            degree_tail: 1.25,
            feature_signal: 1.0,
            seed: 0,
        }
    }

    /// Sets the train/val/test fractions (the rest is unlabeled).
    ///
    /// # Panics
    ///
    /// Panics if the fractions sum to more than 1.
    pub fn split_fractions(mut self, train: f64, val: f64, test: f64) -> Self {
        assert!(train + val + test <= 1.0 + 1e-9, "fractions exceed 1");
        self.train_frac = train;
        self.val_frac = val;
        self.test_frac = test;
        self
    }

    /// Sets the intra-community edge bias (0..1).
    pub fn homophily(mut self, h: f64) -> Self {
        self.homophily = h;
        self
    }

    /// Pareto shape of the per-vertex popularity weights (smaller =
    /// heavier degree tail; 1.2–1.5 resembles citation graphs). See
    /// [`crate::generate::citation_graph`].
    pub fn degree_tail(mut self, tail: f64) -> Self {
        self.degree_tail = tail;
        self
    }

    /// Signal-to-noise scale of class-correlated features.
    pub fn feature_signal(mut self, s: f32) -> Self {
        self.feature_signal = s;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset.
    pub fn build(&self) -> Dataset {
        let target_edges = (self.n as f64 * self.avg_degree / 2.0) as usize;

        // Citation-style graph: heavy-tailed popularity, community
        // structure (blocks = label classes), and popularity-weighted
        // endpoints both within and across communities — the structural
        // properties that drive the paper's access skew (DESIGN.md §2).
        let graph = crate::generate::citation_graph(
            self.n,
            target_edges,
            self.num_classes,
            self.homophily,
            self.degree_tail,
            self.seed,
        );

        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(2));

        // Ground-truth labels come from the planted blocks (contiguous
        // ranges, see `GeneratorConfig::planted_partition`).
        let labels: Vec<u32> = (0..self.n)
            .map(|v| (v * self.num_classes / self.n) as u32)
            .collect();

        // Class-correlated features: centroid + uniform noise.
        let mut centroids = vec![0.0f32; self.num_classes * self.feat_dim];
        for c in centroids.iter_mut() {
            *c = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        }
        let mut features = FeatureMatrix::zeros(self.n, self.feat_dim);
        for v in 0..self.n {
            let label = labels[v] as usize;
            let row = features.row_mut(v as VertexId);
            for (j, x) in row.iter_mut().enumerate() {
                let noise: f32 = rng.gen::<f32>() * 2.0 - 1.0;
                *x = self.feature_signal * centroids[label * self.feat_dim + j] + noise;
            }
        }

        // Split assignment: shuffle ids, take prefixes. Matches the paper's
        // setting where splits are distributed across the whole graph.
        let mut ids: Vec<VertexId> = (0..self.n as VertexId).collect();
        for i in (1..ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        let n_train = (self.n as f64 * self.train_frac).round() as usize;
        let n_val = (self.n as f64 * self.val_frac).round() as usize;
        let n_test = (self.n as f64 * self.test_frac).round() as usize;
        let mut train: Vec<VertexId> = ids[..n_train].to_vec();
        let mut val: Vec<VertexId> = ids[n_train..n_train + n_val].to_vec();
        let mut test: Vec<VertexId> =
            ids[n_train + n_val..(n_train + n_val + n_test).min(self.n)].to_vec();
        train.sort_unstable();
        val.sort_unstable();
        test.sort_unstable();

        Dataset {
            name: self.name.clone(),
            graph,
            features,
            labels,
            num_classes: self.num_classes,
            split: Split { train, val, test },
        }
    }
}

/// Scaled-down stand-in for `ogbn-products`
/// (paper: 2.4M vertices, 123M edges, 100 features, 197K/39K/2.2M split).
///
/// `scale = 1.0` gives 24k vertices at the paper's ~51 average degree with
/// a 50-dim feature vector; smaller scales shrink proportionally (useful in
/// tests). Split skew matches products: a small train set and a huge test set.
pub fn products_mini(scale: f64, seed: u64) -> Dataset {
    let n = ((24_000.0 * scale) as usize).max(64);
    SyntheticSpec::new("products-mini", n, 51.0, 50, 16)
        .split_fractions(0.082, 0.016, 0.9)
        .homophily(0.9)
        .seed(seed)
        .build()
}

/// Scaled-down stand-in for `ogbn-papers100M`
/// (paper: 111M vertices, 3.2B edges, 128 features, 1.2M/125K/214K split —
/// i.e. ~99% of vertices unlabeled).
pub fn papers_mini(scale: f64, seed: u64) -> Dataset {
    let n = ((110_000.0 * scale) as usize).max(64);
    SyntheticSpec::new("papers-mini", n, 29.0, 64, 32)
        .split_fractions(0.011, 0.0011, 0.0019)
        .homophily(0.93)
        .seed(seed)
        .build()
}

/// Scaled-down stand-in for the `mag240c` papers-to-papers citation graph
/// (paper: 121M vertices, 2.6B edges, 768 features — 6× papers' dimension —
/// 1.1M/134K/88K split).
pub fn mag240_mini(scale: f64, seed: u64) -> Dataset {
    let n = ((60_000.0 * scale) as usize).max(64);
    SyntheticSpec::new("mag240-mini", n, 21.5, 384, 32)
        .split_fractions(0.009, 0.0011, 0.0007)
        .homophily(0.93)
        .seed(seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_matrix_rows() {
        let mut f = FeatureMatrix::zeros(2, 3);
        f.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(f.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(f.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(f.num_rows(), 2);
    }

    #[test]
    fn gather_copies_rows() {
        let f = FeatureMatrix::from_flat(vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0], 2);
        let g = f.gather(&[2, 0]);
        assert_eq!(g.as_flat(), &[2.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple of dim")]
    fn from_flat_validates() {
        FeatureMatrix::from_flat(vec![1.0; 5], 2);
    }

    #[test]
    fn synthetic_dataset_consistency() {
        let ds = SyntheticSpec::new("t", 500, 10.0, 8, 5).seed(9).build();
        assert_eq!(ds.num_vertices(), 500);
        assert_eq!(ds.features.num_rows(), 500);
        assert_eq!(ds.labels.len(), 500);
        assert!(ds.labels.iter().all(|&l| (l as usize) < ds.num_classes));
        assert!(ds.graph.is_symmetric());
        // Split sets are disjoint.
        for &v in &ds.split.train {
            assert!(ds.split.val.binary_search(&v).is_err());
            assert!(ds.split.test.binary_search(&v).is_err());
        }
    }

    #[test]
    fn split_kind_classification() {
        let ds = SyntheticSpec::new("t", 300, 8.0, 4, 3)
            .split_fractions(0.1, 0.1, 0.1)
            .seed(2)
            .build();
        let mut counts = std::collections::HashMap::new();
        for v in 0..300 {
            *counts.entry(ds.split.kind_of(v)).or_insert(0usize) += 1;
        }
        assert_eq!(counts[&SplitKind::Train], ds.split.train.len());
        assert_eq!(counts[&SplitKind::Val], ds.split.val.len());
        assert_eq!(counts[&SplitKind::Test], ds.split.test.len());
        assert!(counts[&SplitKind::Unlabeled] > 0);
    }

    #[test]
    fn permuted_dataset_is_consistent() {
        let ds = SyntheticSpec::new("t", 100, 6.0, 4, 4).seed(3).build();
        // Reverse permutation.
        let perm = Permutation::from_forward((0..100).rev().collect());
        let pd = ds.permuted(&perm);
        for old in 0..100u32 {
            let new = perm.to_new(old);
            assert_eq!(ds.features.row(old), pd.features.row(new));
            assert_eq!(ds.labels[old as usize], pd.labels[new as usize]);
            assert_eq!(ds.graph.degree(old), pd.graph.degree(new));
            assert_eq!(ds.split.kind_of(old), pd.split.kind_of(new));
        }
    }

    #[test]
    fn named_datasets_have_expected_shape() {
        let p = products_mini(0.02, 1);
        assert_eq!(p.features.dim(), 50);
        assert!(p.split.test.len() > p.split.train.len());
        let q = papers_mini(0.005, 1);
        assert_eq!(q.features.dim(), 64);
        // papers is mostly unlabeled: train+val+test << n
        let labeled = q.split.train.len() + q.split.val.len() + q.split.test.len();
        assert!(labeled * 10 < q.num_vertices());
        let m = mag240_mini(0.005, 1);
        assert_eq!(m.features.dim(), 384);
    }

    #[test]
    fn feature_signal_separates_classes() {
        let ds = SyntheticSpec::new("t", 200, 6.0, 16, 2)
            .feature_signal(2.0)
            .seed(4)
            .build();
        // Mean feature of class 0 differs from class 1 substantially.
        let mean = |c: u32| -> Vec<f32> {
            let rows: Vec<_> = (0..200u32)
                .filter(|&v| ds.labels[v as usize] == c)
                .collect();
            let mut m = [0.0f32; 16];
            for &v in &rows {
                for (j, x) in ds.features.row(v).iter().enumerate() {
                    m[j] += x;
                }
            }
            m.iter().map(|x| x / rows.len() as f32).collect()
        };
        let (m0, m1) = (mean(0), mean(1));
        let dist: f32 = m0
            .iter()
            .zip(&m1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 4.0, "class centroids too close: {dist}");
    }
}
