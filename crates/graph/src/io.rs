//! Binary dataset serialization.
//!
//! The paper's artifact distributes *preprocessed* datasets (partitioned,
//! reordered) because preprocessing papers100M takes hours; this module
//! gives the reproduction the same workflow: [`Dataset::save`] /
//! [`Dataset::load`] on a small self-describing binary format
//! (little-endian, magic `SPPD`, versioned), so expensive generation and
//! partitioning can be amortized across experiments.

use crate::{CsrGraph, Dataset, FeatureMatrix, Split};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SPPD";
const VERSION: u32 = 1;

/// Errors from loading a dataset file.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a dataset file (bad magic).
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Structurally invalid contents (message explains).
    Corrupt(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::BadMagic => write!(f, "not a dataset file (bad magic)"),
            LoadError::BadVersion(v) => write!(f, "unsupported dataset version {v}"),
            LoadError::Corrupt(m) => write!(f, "corrupt dataset file: {m}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// A dataset load failure annotated with *where* it happened: the file
/// being read and the byte offset reached when the error was detected
/// (the count of bytes successfully consumed so far).
#[derive(Debug)]
pub struct GraphIoError {
    /// The file being loaded.
    pub path: std::path::PathBuf,
    /// Byte offset reached when the error was detected.
    pub offset: u64,
    /// The underlying failure.
    pub kind: LoadError,
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "loading {} (at byte {}): {}",
            self.path.display(),
            self.offset,
            self.kind
        )
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.kind)
    }
}

/// Wraps a reader, counting bytes consumed so load errors can report an
/// offset.
struct CountingReader<R> {
    inner: R,
    count: u64,
}

impl<R: Read> CountingReader<R> {
    fn new(inner: R) -> Self {
        Self { inner, count: 0 }
    }

    fn bytes_read(&self) -> u64 {
        self.count
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.count += n as u64;
        Ok(n)
    }
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_u32_slice<W: Write>(w: &mut W, xs: &[u32]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_u32_vec<R: Read>(r: &mut R, cap: u64) -> Result<Vec<u32>, LoadError> {
    let len = read_u64(r)?;
    if len > cap {
        return Err(LoadError::Corrupt(format!(
            "length {len} exceeds cap {cap}"
        )));
    }
    let mut buf = vec![0u8; len as usize * 4];
    r.read_exact(&mut buf)?;
    Ok(buf
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn write_f32_slice<W: Write>(w: &mut W, xs: &[f32]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32_vec<R: Read>(r: &mut R, cap: u64) -> Result<Vec<f32>, LoadError> {
    let len = read_u64(r)?;
    if len > cap {
        return Err(LoadError::Corrupt(format!(
            "length {len} exceeds cap {cap}"
        )));
    }
    let mut buf = vec![0u8; len as usize * 4];
    r.read_exact(&mut buf)?;
    Ok(buf
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

impl Dataset {
    /// Writes the dataset to `path` in the `SPPD` binary format.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        let name = self.name.as_bytes();
        write_u64(&mut w, name.len() as u64)?;
        w.write_all(name)?;
        write_u64(&mut w, self.num_classes as u64)?;
        // Graph.
        write_u64(&mut w, self.graph.num_vertices() as u64)?;
        write_u64(&mut w, self.graph.num_edges() as u64)?;
        for &p in self.graph.row_ptr() {
            write_u64(&mut w, p as u64)?;
        }
        write_u32_slice(&mut w, self.graph.col())?;
        // Features.
        write_u64(&mut w, self.features.dim() as u64)?;
        write_f32_slice(&mut w, self.features.as_flat())?;
        // Labels + splits.
        write_u32_slice(&mut w, &self.labels)?;
        write_u32_slice(&mut w, &self.split.train)?;
        write_u32_slice(&mut w, &self.split.val)?;
        write_u32_slice(&mut w, &self.split.test)?;
        w.flush()
    }

    /// Loads a dataset previously written by [`Dataset::save`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphIoError`] — the failing file plus the byte offset
    /// reached — wrapping a [`LoadError`] kind: I/O failure, wrong
    /// magic/version, or structurally invalid contents (every section is
    /// validated before use — a truncated or corrupted file never
    /// panics).
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Dataset, GraphIoError> {
        let path = path.as_ref();
        let at = |offset: u64, kind: LoadError| GraphIoError {
            path: path.to_path_buf(),
            offset,
            kind,
        };
        let file = std::fs::File::open(path).map_err(|e| at(0, LoadError::Io(e)))?;
        let mut r = CountingReader::new(BufReader::new(file));
        Self::load_impl(&mut r).map_err(|kind| at(r.bytes_read(), kind))
    }

    /// Format-level loading, independent of the file behind the reader.
    fn load_impl<R: Read>(mut r: &mut R) -> Result<Dataset, LoadError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(LoadError::BadMagic);
        }
        let mut vb = [0u8; 4];
        r.read_exact(&mut vb)?;
        let version = u32::from_le_bytes(vb);
        if version != VERSION {
            return Err(LoadError::BadVersion(version));
        }
        let name_len = read_u64(&mut r)?;
        if name_len > 4096 {
            return Err(LoadError::Corrupt("name too long".into()));
        }
        let mut name = vec![0u8; name_len as usize];
        r.read_exact(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|_| LoadError::Corrupt("name not UTF-8".into()))?;
        let num_classes = read_u64(&mut r)? as usize;
        if num_classes == 0 || num_classes > u32::MAX as usize {
            return Err(LoadError::Corrupt("bad class count".into()));
        }

        let n = read_u64(&mut r)? as usize;
        let m = read_u64(&mut r)? as usize;
        const MAX: u64 = 1 << 33;
        if (n as u64) > MAX || (m as u64) > MAX {
            return Err(LoadError::Corrupt("graph too large".into()));
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            row_ptr.push(read_u64(&mut r)? as usize);
        }
        let col = read_u32_vec(&mut r, m as u64)?;
        if row_ptr.first() != Some(&0)
            || row_ptr.last() != Some(&col.len())
            || row_ptr.windows(2).any(|w| w[0] > w[1])
            || col.iter().any(|&c| (c as usize) >= n)
        {
            return Err(LoadError::Corrupt("invalid CSR arrays".into()));
        }
        let graph = CsrGraph::from_raw_parts(row_ptr, col);

        let dim = read_u64(&mut r)? as usize;
        if dim == 0 || dim > 1 << 20 {
            return Err(LoadError::Corrupt("bad feature dim".into()));
        }
        let flat = read_f32_vec(&mut r, (n * dim) as u64)?;
        if flat.len() != n * dim {
            return Err(LoadError::Corrupt("feature matrix size mismatch".into()));
        }
        let features = FeatureMatrix::from_flat(flat, dim);

        let labels = read_u32_vec(&mut r, n as u64)?;
        if labels.len() != n || labels.iter().any(|&l| (l as usize) >= num_classes) {
            return Err(LoadError::Corrupt("invalid labels".into()));
        }
        let read_split = |r: &mut R| -> Result<Vec<u32>, LoadError> {
            let ids = read_u32_vec(r, n as u64)?;
            if ids.iter().any(|&v| (v as usize) >= n) || ids.windows(2).any(|w| w[0] >= w[1]) {
                return Err(LoadError::Corrupt("invalid split ids".into()));
            }
            Ok(ids)
        };
        let train = read_split(r)?;
        let val = read_split(r)?;
        let test = read_split(r)?;

        Ok(Dataset {
            name,
            graph,
            features,
            labels,
            num_classes,
            split: Split { train, val, test },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticSpec;

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("spp-io-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = SyntheticSpec::new("rt", 300, 8.0, 6, 4)
            .split_fractions(0.2, 0.1, 0.1)
            .seed(3)
            .build();
        let path = tmpfile("roundtrip");
        ds.save(&path).unwrap();
        let loaded = Dataset::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.name, ds.name);
        assert_eq!(loaded.graph, ds.graph);
        assert_eq!(loaded.features, ds.features);
        assert_eq!(loaded.labels, ds.labels);
        assert_eq!(loaded.num_classes, ds.num_classes);
        assert_eq!(loaded.split, ds.split);
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmpfile("magic");
        std::fs::write(&path, b"NOPE....").unwrap();
        let err = Dataset::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err.kind, LoadError::BadMagic));
        assert_eq!(err.path, path);
        assert_eq!(err.offset, 4, "magic is read first");
    }

    #[test]
    fn rejects_truncated_file() {
        let ds = SyntheticSpec::new("tr", 100, 6.0, 4, 2).seed(1).build();
        let path = tmpfile("trunc");
        ds.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = Dataset::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err.kind, LoadError::Io(_) | LoadError::Corrupt(_)));
        assert!(err.offset > 8, "offset points past the header: {err}");
    }

    #[test]
    fn rejects_corrupted_labels() {
        let ds = SyntheticSpec::new("cl", 100, 6.0, 4, 2).seed(1).build();
        let path = tmpfile("corrupt");
        ds.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the middle of the feature/label region.
        let idx = bytes.len() - 40;
        bytes[idx] = 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        // Must not panic; either loads (if the flipped byte was a feature)
        // or errors cleanly.
        let _ = Dataset::load(&path);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_version() {
        let ds = SyntheticSpec::new("v", 50, 4.0, 4, 2).seed(1).build();
        let path = tmpfile("version");
        ds.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 99;
        std::fs::write(&path, &bytes).unwrap();
        let err = Dataset::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err.kind, LoadError::BadVersion(_)));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Dataset::load("/definitely/not/a/real/path.sppd").unwrap_err();
        assert!(matches!(err.kind, LoadError::Io(_)));
        assert_eq!(err.offset, 0);
        let msg = format!("{err}");
        assert!(msg.contains("path.sppd"), "message names the file: {msg}");
    }
}
