//! Incremental construction of [`CsrGraph`]s from edge lists.

use crate::{CsrGraph, VertexId};

/// Accumulates edges and produces a clean [`CsrGraph`]:
/// self-loops removed, duplicate edges removed, neighbor lists sorted.
///
/// # Example
///
/// ```
/// use spp_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(0, 1); // duplicate, dropped
/// b.add_edge(1, 1); // self-loop, dropped
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with pre-allocated capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        Self {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed edge `src -> dst`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        assert!(
            (src as usize) < self.n && (dst as usize) < self.n,
            "edge ({src}, {dst}) out of range for {} vertices",
            self.n
        );
        self.edges.push((src, dst));
    }

    /// Adds both directions of an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_undirected_edge(&mut self, a: VertexId, b: VertexId) {
        self.add_edge(a, b);
        self.add_edge(b, a);
    }

    /// Adds the reverse of every edge added so far, making the final graph
    /// symmetric ("make undirected", the standard OGB preprocessing step).
    pub fn symmetrize(&mut self) {
        let rev: Vec<_> = self.edges.iter().map(|&(s, d)| (d, s)).collect();
        self.edges.extend(rev);
    }

    /// Builds the CSR graph, deduplicating edges, removing self-loops, and
    /// sorting neighbor lists.
    // spp-det(graph.csr_build)
    pub fn build(mut self) -> CsrGraph {
        self.edges.retain(|&(s, d)| s != d);
        // Counting sort by source for O(m) bucketing, then per-row sort+dedup.
        let n = self.n;
        let mut deg = vec![0usize; n];
        for &(s, _) in &self.edges {
            deg[s as usize] += 1;
        }
        let mut row_ptr = vec![0usize; n + 1];
        for v in 0..n {
            // spp-lint: allow(l2-csr-index): building this CSR's own offsets from the counting pass, not traversing a graph
            row_ptr[v + 1] = row_ptr[v] + deg[v];
        }
        let mut col = vec![0 as VertexId; self.edges.len()];
        let mut cursor = row_ptr.clone();
        for &(s, d) in &self.edges {
            col[cursor[s as usize]] = d;
            cursor[s as usize] += 1;
        }
        // Sort and dedup each row, compacting in place.
        let mut out_row_ptr = vec![0usize; n + 1];
        let mut write = 0usize;
        for v in 0..n {
            // spp-lint: allow(l2-csr-index): compaction over the offsets computed above, same construction pass
            let (lo, hi) = (row_ptr[v], row_ptr[v + 1]);
            let row = &mut col[lo..hi];
            row.sort_unstable();
            let mut prev: Option<VertexId> = None;
            let mut kept = Vec::with_capacity(row.len());
            for &u in row.iter() {
                if prev != Some(u) {
                    kept.push(u);
                    prev = Some(u);
                }
            }
            for (i, &u) in kept.iter().enumerate() {
                col[write + i] = u;
            }
            write += kept.len();
            out_row_ptr[v + 1] = write;
        }
        col.truncate(write);
        CsrGraph::from_raw_parts(out_row_ptr, col)
    }
}

impl Extend<(VertexId, VertexId)> for GraphBuilder {
    fn extend<T: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: T) {
        for (s, d) in iter {
            self.add_edge(s, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_sorts() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 3);
        b.add_edge(0, 1);
        b.add_edge(0, 3);
        b.add_edge(0, 2);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn removes_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(1, 1);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        b.add_edge(4, 0);
        b.symmetrize();
        let g = b.build();
        assert!(g.is_symmetric());
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn extend_adds_edges() {
        let mut b = GraphBuilder::new(3);
        b.extend(vec![(0, 1), (1, 2)]);
        assert_eq!(b.num_pending_edges(), 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }
}
