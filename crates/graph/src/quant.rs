//! Compressed feature storage: `f16` and `i8` quantized feature rows.
//!
//! The paper treats communicated bytes — not FLOPs — as the scarce
//! resource; quantized feature tiers attack both sides of that budget
//! (DESIGN.md §14): an `f16` tier holds 2× the rows of an `f32` tier at
//! equal RAM (an `i8` tier ~4×, minus two `f32` codebook words per row),
//! and a quantized wire halves/quarters remote-fetch bytes in the
//! DES-costed serving and training paths.
//!
//! Two codecs are provided:
//!
//! * [`QuantScheme::F16`] — IEEE 754 binary16 with round-to-nearest-even,
//!   implemented as pure bit manipulation (no hardware half support is
//!   assumed). Relative error for normal values is ≤ 2⁻¹¹.
//! * [`QuantScheme::I8`] — per-row affine quantization: each row stores
//!   `min` and `scale = (max − min)/255` as `f32` plus one `i8` code per
//!   element; absolute error is ≤ `scale/2`.
//!
//! Both decode paths are branch-free 8-lane chunked loops writing into a
//! caller-provided buffer ([`QuantizedFeatures::read_row_into`]), so
//! cache gathers stay allocation-free (the H1 hot-path rule).
//!
//! Determinism: encoding is a pure element-wise function of the input
//! bits, and decoding a pure function of the stored code — no
//! data-dependent control flow, so quantized tiers preserve the
//! bit-identity-across-worker-count contract everywhere they replace
//! `f32` storage.

use crate::dataset::FeatureMatrix;

/// Lane width of the chunked encode/decode loops.
const LANES: usize = 8;

/// Storage format for a feature tier or the remote-fetch wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QuantScheme {
    /// Uncompressed `f32` (4 bytes/element) — the seed behavior.
    #[default]
    F32,
    /// IEEE binary16 (2 bytes/element), round-to-nearest-even.
    F16,
    /// Per-row affine `i8` (1 byte/element + 8 codebook bytes/row).
    I8,
}

impl QuantScheme {
    /// Bytes one encoded row of `dim` elements occupies (storage and
    /// wire size; the `i8` codebook counts toward both).
    pub fn row_bytes(self, dim: usize) -> usize {
        match self {
            QuantScheme::F32 => dim * 4,
            QuantScheme::F16 => dim * 2,
            QuantScheme::I8 => dim + 2 * std::mem::size_of::<f32>(),
        }
    }

    /// Parses a scheme name (`f32`/`f16`/`i8`), for bench CLIs.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "f32" => Some(QuantScheme::F32),
            "f16" => Some(QuantScheme::F16),
            "i8" => Some(QuantScheme::I8),
            _ => None,
        }
    }

    /// Short lowercase name (`"f32"`, `"f16"`, `"i8"`).
    pub fn name(self) -> &'static str {
        match self {
            QuantScheme::F32 => "f32",
            QuantScheme::F16 => "f16",
            QuantScheme::I8 => "i8",
        }
    }
}

// ---------------------------------------------------------------------
// IEEE binary16 <-> binary32 bit conversion
// ---------------------------------------------------------------------

/// Converts an `f32` to IEEE binary16 bits with round-to-nearest-even
/// (the float-to-half algorithm of Giesen's `float_to_half_fast3_rtne`:
/// integer exponent rebias with a carry-propagating rounding bias for
/// normals, and a float-addition "denorm magic" trick that lets the FPU
/// perform the subnormal rounding).
#[inline]
pub fn f32_to_f16_bits(x: f32) -> u16 {
    const F32_INFTY: u32 = 255 << 23;
    // Smallest f32 exponent that still maps to an f16 Inf after rounding.
    const F16_MAX: u32 = (127 + 16) << 23;
    // 2^-14 * 2^13 alignment constant: adding it to a would-be-subnormal
    // magnitude makes the FPU round the value into the low mantissa bits.
    const DENORM_MAGIC_BITS: u32 = ((127 - 15) + (23 - 10) + 1) << 23;
    const LOWEST_NORMAL: u32 = 113 << 23;

    let bits = x.to_bits();
    let sign = (bits >> 16) as u16 & 0x8000;
    let mag = bits & 0x7fff_ffff;

    if mag >= F16_MAX {
        // Inf stays Inf; any NaN becomes a quiet NaN.
        return sign | if mag > F32_INFTY { 0x7e00 } else { 0x7c00 };
    }
    if mag < LOWEST_NORMAL {
        // Result is f16-subnormal or zero: let FP addition do the RNE.
        let magic = f32::from_bits(DENORM_MAGIC_BITS);
        let aligned = f32::from_bits(mag) + magic;
        return sign | (aligned.to_bits().wrapping_sub(DENORM_MAGIC_BITS)) as u16;
    }
    // Normal range: rebias the exponent and add the RNE bias (0xfff, plus
    // one when the resulting mantissa LSB is odd) before truncating.
    let mant_odd = (mag >> 13) & 1;
    let rebiased = mag
        .wrapping_add((15u32.wrapping_sub(127)) << 23)
        .wrapping_add(0xfff)
        .wrapping_add(mant_odd);
    sign | (rebiased >> 13) as u16
}

/// Converts IEEE binary16 bits back to `f32` (exact — every f16 value is
/// representable in f32).
#[inline]
pub fn f16_bits_to_f32(h: u16) -> f32 {
    const MAGIC_BITS: u32 = 113 << 23;
    const SHIFTED_EXP: u32 = 0x7c00 << 13;

    let mut bits = ((h as u32) & 0x7fff) << 13;
    let exp = bits & SHIFTED_EXP;
    bits = bits.wrapping_add((127 - 15) << 23);
    if exp == SHIFTED_EXP {
        // Inf / NaN: re-adjust to the f32 all-ones exponent.
        bits = bits.wrapping_add((128 - 16) << 23);
    } else if exp == 0 {
        // Zero / subnormal: renormalize through an FP subtract.
        bits = bits.wrapping_add(1 << 23);
        bits = (f32::from_bits(bits) - f32::from_bits(MAGIC_BITS)).to_bits();
    }
    f32::from_bits(bits | ((h as u32 & 0x8000) << 16))
}

// ---------------------------------------------------------------------
// QuantizedFeatures
// ---------------------------------------------------------------------

/// Row-major quantized feature storage: the compressed drop-in for a
/// [`FeatureMatrix`] inside cache tiers. Rows are written with
/// [`QuantizedFeatures::set_row`] (encode) and read back with
/// [`QuantizedFeatures::read_row_into`] (decode into a caller buffer,
/// allocation-free).
#[derive(Clone, Debug)]
pub struct QuantizedFeatures {
    dim: usize,
    rows: usize,
    storage: Storage,
}

#[derive(Clone, Debug)]
enum Storage {
    F32(Vec<f32>),
    F16(Vec<u16>),
    I8 {
        codes: Vec<i8>,
        /// Per-row `(min, scale)` codebook.
        min: Vec<f32>,
        scale: Vec<f32>,
    },
}

impl QuantizedFeatures {
    /// Zero-initialized storage for `rows × dim` features.
    pub fn with_rows(rows: usize, dim: usize, scheme: QuantScheme) -> Self {
        let storage = match scheme {
            QuantScheme::F32 => Storage::F32(vec![0.0; rows * dim]),
            QuantScheme::F16 => Storage::F16(vec![0; rows * dim]),
            QuantScheme::I8 => Storage::I8 {
                codes: vec![-128; rows * dim],
                min: vec![0.0; rows],
                scale: vec![0.0; rows],
            },
        };
        Self { dim, rows, storage }
    }

    /// Encodes every row of `features` under `scheme`.
    pub fn from_matrix(features: &FeatureMatrix, scheme: QuantScheme) -> Self {
        let mut q = Self::with_rows(features.num_rows(), features.dim(), scheme);
        for r in 0..features.num_rows() {
            q.set_row(r, features.row(r as crate::VertexId));
        }
        q
    }

    /// Storage scheme of this tier.
    pub fn scheme(&self) -> QuantScheme {
        match self.storage {
            Storage::F32(_) => QuantScheme::F32,
            Storage::F16(_) => QuantScheme::F16,
            Storage::I8 { .. } => QuantScheme::I8,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bytes one stored row occupies.
    pub fn row_bytes(&self) -> usize {
        self.scheme().row_bytes(self.dim)
    }

    /// Total storage bytes (codes plus codebook).
    pub fn memory_bytes(&self) -> usize {
        match &self.storage {
            Storage::F32(d) => d.len() * 4,
            Storage::F16(d) => d.len() * 2,
            Storage::I8 { codes, min, scale } => codes.len() + 4 * (min.len() + scale.len()),
        }
    }

    /// Encodes `row` into slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim` or `slot >= rows`.
    pub fn set_row(&mut self, slot: usize, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "row dimension mismatch");
        assert!(slot < self.rows, "row slot out of range");
        let dim = self.dim;
        match &mut self.storage {
            Storage::F32(d) => d[slot * dim..(slot + 1) * dim].copy_from_slice(row),
            Storage::F16(d) => {
                for (q, &v) in d[slot * dim..(slot + 1) * dim].iter_mut().zip(row) {
                    *q = f32_to_f16_bits(v);
                }
            }
            Storage::I8 { codes, min, scale } => {
                let (lo, hi) = row
                    .iter()
                    .fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &v| {
                        (l.min(v), h.max(v))
                    });
                let (lo, hi) = if lo > hi { (0.0, 0.0) } else { (lo, hi) };
                let s = (hi - lo) / 255.0;
                min[slot] = lo;
                scale[slot] = s;
                let inv = if s > 0.0 { 1.0 / s } else { 0.0 };
                for (q, &v) in codes[slot * dim..(slot + 1) * dim].iter_mut().zip(row) {
                    // Codes 0..=255 shifted to -128..=127; rounding to
                    // nearest keeps |error| <= scale/2.
                    let code = ((v - lo) * inv).round().clamp(0.0, 255.0) as i32 - 128;
                    *q = code as i8;
                }
            }
        }
    }

    /// Decodes slot `slot` into `out` (8-lane chunked, allocation-free).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != dim` or `slot >= rows`.
    // spp-hot(quant.read_row)
    pub fn read_row_into(&self, slot: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "output dimension mismatch");
        assert!(slot < self.rows, "row slot out of range");
        let dim = self.dim;
        match &self.storage {
            Storage::F32(d) => out.copy_from_slice(&d[slot * dim..(slot + 1) * dim]),
            Storage::F16(d) => {
                let src = &d[slot * dim..(slot + 1) * dim];
                let mut out_chunks = out.chunks_exact_mut(LANES);
                let mut src_chunks = src.chunks_exact(LANES);
                for (o8, s8) in (&mut out_chunks).zip(&mut src_chunks) {
                    for l in 0..LANES {
                        o8[l] = f16_bits_to_f32(s8[l]);
                    }
                }
                for (o, &s) in out_chunks
                    .into_remainder()
                    .iter_mut()
                    .zip(src_chunks.remainder())
                {
                    *o = f16_bits_to_f32(s);
                }
            }
            Storage::I8 { codes, min, scale } => {
                let src = &codes[slot * dim..(slot + 1) * dim];
                let (lo, s) = (min[slot], scale[slot]);
                let mut out_chunks = out.chunks_exact_mut(LANES);
                let mut src_chunks = src.chunks_exact(LANES);
                for (o8, s8) in (&mut out_chunks).zip(&mut src_chunks) {
                    for l in 0..LANES {
                        o8[l] = (s8[l] as i32 + 128) as f32 * s + lo;
                    }
                }
                for (o, &c) in out_chunks
                    .into_remainder()
                    .iter_mut()
                    .zip(src_chunks.remainder())
                {
                    *o = (c as i32 + 128) as f32 * s + lo;
                }
            }
        }
    }

    /// Decodes the whole tier back into a dense [`FeatureMatrix`].
    pub fn dequantize(&self) -> FeatureMatrix {
        let mut m = FeatureMatrix::zeros(self.rows, self.dim);
        for r in 0..self.rows {
            self.read_row_into(r, m.row_mut(r as crate::VertexId));
        }
        m
    }
}

/// Round-trips `row` through `scheme` in place: the lossy transform a
/// quantized wire applies to fetched feature rows (`f32` is the
/// identity). Encoding then decoding locally models
/// serialize → transmit → deserialize without buffers.
pub fn wire_roundtrip(row: &mut [f32], scheme: QuantScheme) {
    match scheme {
        QuantScheme::F32 => {}
        QuantScheme::F16 => {
            for v in row.iter_mut() {
                *v = f16_bits_to_f32(f32_to_f16_bits(*v));
            }
        }
        QuantScheme::I8 => {
            let (lo, hi) = row
                .iter()
                .fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &v| {
                    (l.min(v), h.max(v))
                });
            let (lo, hi) = if lo > hi { (0.0, 0.0) } else { (lo, hi) };
            let s = (hi - lo) / 255.0;
            let inv = if s > 0.0 { 1.0 / s } else { 0.0 };
            for v in row.iter_mut() {
                let code = ((*v - lo) * inv).round().clamp(0.0, 255.0);
                *v = code * s + lo;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trip_is_exact_for_all_half_values() {
        // Every finite f16 bit pattern must survive f16 -> f32 -> f16.
        for h in 0..=u16::MAX {
            let f = f16_bits_to_f32(h);
            let exp = h & 0x7c00;
            let mant = h & 0x03ff;
            if exp == 0x7c00 && mant != 0 {
                assert!(f.is_nan(), "h={h:#06x} should decode to NaN");
                continue;
            }
            assert_eq!(f32_to_f16_bits(f), h, "h={h:#06x} f={f}");
        }
    }

    #[test]
    fn f16_encode_matches_reference_cases() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // f16 max normal
        assert_eq!(f32_to_f16_bits(65536.0), 0x7c00); // overflows to Inf
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f32_to_f16_bits(f32::NAN) & 0x7c00, 0x7c00);
        assert_ne!(f32_to_f16_bits(f32::NAN) & 0x03ff, 0);
        assert_eq!(f32_to_f16_bits(5.96e-8), 0x0001); // min subnormal
        assert_eq!(f32_to_f16_bits(6.1035e-5), 0x0400); // min normal
                                                        // Round-to-nearest-even at a midpoint: 1 + 2^-11 is exactly
                                                        // between 1.0 and 1 + 2^-10; the even mantissa (1.0) wins.
        assert_eq!(f32_to_f16_bits(1.0 + 2.0_f32.powi(-11)), 0x3c00);
        // …but 1 + 3*2^-11 rounds up to the even 1 + 2^-10 neighbor's
        // successor parity: nearest is 1 + 2^-10 either way.
        assert_eq!(f32_to_f16_bits(1.0 + 3.0 * 2.0_f32.powi(-11)), 0x3c02);
    }

    #[test]
    fn f16_error_bound_on_normal_range() {
        // Relative error <= 2^-11 for values in the f16 normal range.
        let vals = [
            1.0f32,
            -1.5,
            std::f32::consts::PI,
            1e-3,
            123.456,
            -6.1e-5,
            6e4,
        ];
        for &v in &vals {
            let rt = f16_bits_to_f32(f32_to_f16_bits(v));
            assert!(((rt - v) / v).abs() <= 2.0_f32.powi(-11), "v={v} rt={rt}");
        }
    }

    #[test]
    fn i8_round_trip_error_within_half_scale() {
        let row: Vec<f32> = (0..64)
            .map(|i| (i as f32 * 0.37).sin() * 5.0 - 1.0)
            .collect();
        let mut q = QuantizedFeatures::with_rows(1, 64, QuantScheme::I8);
        q.set_row(0, &row);
        let mut back = vec![0.0f32; 64];
        q.read_row_into(0, &mut back);
        let (lo, hi) = row
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &v| {
                (l.min(v), h.max(v))
            });
        let tol = (hi - lo) / 255.0 / 2.0 * 1.0001;
        for (a, b) in row.iter().zip(&back) {
            assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
        }
    }

    #[test]
    fn constant_rows_quantize_exactly_under_i8() {
        let row = vec![2.5f32; 16];
        let mut q = QuantizedFeatures::with_rows(1, 16, QuantScheme::I8);
        q.set_row(0, &row);
        let mut back = vec![0.0f32; 16];
        q.read_row_into(0, &mut back);
        assert_eq!(back, row);
    }

    #[test]
    fn f32_scheme_is_lossless_passthrough() {
        let m = FeatureMatrix::from_flat((0..12).map(|i| i as f32 / 3.0).collect(), 4);
        let q = QuantizedFeatures::from_matrix(&m, QuantScheme::F32);
        assert_eq!(q.dequantize().as_flat(), m.as_flat());
        assert_eq!(q.memory_bytes(), 3 * 4 * 4);
    }

    #[test]
    fn row_bytes_accounting() {
        assert_eq!(QuantScheme::F32.row_bytes(128), 512);
        assert_eq!(QuantScheme::F16.row_bytes(128), 256);
        assert_eq!(QuantScheme::I8.row_bytes(128), 136);
        let q = QuantizedFeatures::with_rows(10, 128, QuantScheme::F16);
        assert_eq!(q.memory_bytes(), 10 * 256);
    }

    #[test]
    fn wire_roundtrip_f32_is_identity_and_f16_matches_codec() {
        let mut row: Vec<f32> = (0..31).map(|i| (i as f32 - 15.0) / 7.0).collect();
        let orig = row.clone();
        wire_roundtrip(&mut row, QuantScheme::F32);
        assert_eq!(row, orig);
        wire_roundtrip(&mut row, QuantScheme::F16);
        for (w, &o) in row.iter().zip(&orig) {
            assert_eq!(*w, f16_bits_to_f32(f32_to_f16_bits(o)));
        }
    }

    #[test]
    fn scheme_parse_and_names() {
        for s in [QuantScheme::F32, QuantScheme::F16, QuantScheme::I8] {
            assert_eq!(QuantScheme::parse(s.name()), Some(s));
        }
        assert_eq!(QuantScheme::parse("f64"), None);
    }
}
